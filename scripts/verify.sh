#!/usr/bin/env bash
# Tier-1 verification: everything must pass offline, with no registry
# access. Runs the format check, a release build, the full test suite
# (unit + property + integration + golden snapshot diffs) twice — once
# serial (GOPIM_THREADS=1) and once at the default pool size, so any
# thread-count-dependent result fails the run — and makes sure every
# bench target still compiles.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --release --offline =="
cargo build --release --offline --workspace

echo "== gopim lint (serial + default legs) =="
# The linter report must not depend on the pool size: run the ratchet
# check under both thread settings the test suite uses.
GOPIM_THREADS=1 scripts/lint.sh
scripts/lint.sh

echo "== cargo test --offline, GOPIM_THREADS=1 (serial reference) =="
GOPIM_THREADS=1 cargo test -q --offline --workspace

echo "== cargo test --offline, default GOPIM_THREADS (parallel) =="
cargo test -q --offline --workspace

echo "== cargo test --offline, GOPIM_NO_SIMD=1 (scalar kernels) =="
# The SIMD kill-switch must be a pure dispatch knob, never a numerics
# knob: the whole suite — bitwise goldens and the differential
# equivalence harness included — must pass with vector paths disabled.
GOPIM_NO_SIMD=1 cargo test -q --offline --workspace

echo "== bench targets compile =="
cargo build --offline --benches -p gopim-bench

echo "== traced smoke run (fig04 --quick) =="
# Telemetry must be output-invariant: a traced run's stdout must match
# a plain run byte-for-byte, and the emitted Chrome trace must be valid
# JSON carrying spans from every instrumented layer. The same run now
# exercises the whole observatory: profile report, folded stacks, and
# a schema-valid manifest with nonzero span aggregates.
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run --release --offline -p gopim-bench --bin fig04 -- --quick \
    > "$SMOKE_DIR/plain.out"
GOPIM_TRACE="$SMOKE_DIR/trace.json" GOPIM_METRICS=1 \
    GOPIM_PROFILE="$SMOKE_DIR/profile.txt" \
    GOPIM_PROFILE_FOLDED="$SMOKE_DIR/folded.txt" \
    GOPIM_MANIFEST="$SMOKE_DIR/manifest.json" \
    cargo run --release --offline -p gopim-bench --bin fig04 -- --quick \
    > "$SMOKE_DIR/traced.out" 2> "$SMOKE_DIR/traced.err"
diff -u "$SMOKE_DIR/plain.out" "$SMOKE_DIR/traced.out" \
    || { echo "verify: tracing changed fig04 stdout"; exit 1; }
grep -q "== gopim metrics ==" "$SMOKE_DIR/traced.err" \
    || { echo "verify: GOPIM_METRICS=1 printed no metrics report"; exit 1; }
cargo run --release --offline -p gopim-obs --example validate_trace -- \
    "$SMOKE_DIR/trace.json" \
    linalg.matmul par. pipeline.simulate runner.run_system sim.
cargo run --release --offline -p gopim-obs --example validate_manifest -- \
    "$SMOKE_DIR/manifest.json" --require-spans
grep -q "== gopim profile ==" "$SMOKE_DIR/profile.txt" \
    || { echo "verify: GOPIM_PROFILE wrote no profile report"; exit 1; }
grep -q "p95" "$SMOKE_DIR/profile.txt" \
    || { echo "verify: profile report carries no quantile columns"; exit 1; }
# Folded stacks: every line must be "path <integer-ns>" with a nested
# path (a ';') appearing somewhere — fig04 nests matmuls under the
# runner span.
awk 'NF < 2 || $NF !~ /^[0-9]+$/ { bad = 1 } /;/ { nested = 1 }
     END { exit (bad || !nested) }' "$SMOKE_DIR/folded.txt" \
    || { echo "verify: folded-stack export is malformed"; exit 1; }

echo "== bench-diff smoke (committed BENCH trajectories) =="
# The classified comparison table over real record files, plus the
# trajectory view — both must render without error.
cargo run --release --offline -p gopim -- bench-diff \
    BENCH_pr2.json BENCH_pr7.json > "$SMOKE_DIR/benchdiff.out"
grep -q "verdict" "$SMOKE_DIR/benchdiff.out" \
    || { echo "verify: bench-diff printed no classified table"; exit 1; }
cargo run --release --offline -p gopim -- bench-diff --trajectory \
    BENCH_pr2.json BENCH_pr3.json BENCH_pr6.json BENCH_pr7.json \
    > "$SMOKE_DIR/trajectory.out"
grep -q "BENCH_pr7" "$SMOKE_DIR/trajectory.out" \
    || { echo "verify: trajectory table missing a file column"; exit 1; }

if [ "${GOPIM_NO_PERF_RATCHET:-0}" != "1" ]; then
    echo "== perf ratchet (skip with GOPIM_NO_PERF_RATCHET=1) =="
    scripts/perf_ratchet.sh
else
    echo "== perf ratchet skipped (GOPIM_NO_PERF_RATCHET=1) =="
fi

echo "== run-cache smoke (fig04 --quick, cold vs warm disk tier) =="
# The run cache must be a pure speed knob: a warm rerun against a
# just-populated GOPIM_CACHE directory must print byte-identical stdout
# and actually be served from the disk tier (nonzero cache.disk_hits).
CACHE_DIR="$SMOKE_DIR/run_cache"
mkdir -p "$CACHE_DIR"
GOPIM_CACHE="$CACHE_DIR" GOPIM_METRICS=1 \
    cargo run --release --offline -p gopim-bench --bin fig04 -- --quick \
    > "$SMOKE_DIR/cache_cold.out" 2> "$SMOKE_DIR/cache_cold.err"
GOPIM_CACHE="$CACHE_DIR" GOPIM_METRICS=1 \
    cargo run --release --offline -p gopim-bench --bin fig04 -- --quick \
    > "$SMOKE_DIR/cache_warm.out" 2> "$SMOKE_DIR/cache_warm.err"
diff -u "$SMOKE_DIR/cache_cold.out" "$SMOKE_DIR/cache_warm.out" \
    || { echo "verify: warm cached fig04 stdout differs from cold run"; exit 1; }
diff -u "$SMOKE_DIR/plain.out" "$SMOKE_DIR/cache_warm.out" \
    || { echo "verify: cached fig04 stdout differs from uncached run"; exit 1; }
awk '$1 == "counter" && $2 == "cache.hits" && $3 > 0 { found = 1 }
     END { exit !found }' "$SMOKE_DIR/cache_warm.err" \
    || { echo "verify: warm fig04 run reported no cache hits"; exit 1; }
awk '$1 == "counter" && $2 == "cache.disk_hits" && $3 > 0 { found = 1 }
     END { exit !found }' "$SMOKE_DIR/cache_warm.err" \
    || { echo "verify: warm fig04 run never touched the disk tier"; exit 1; }

if [ "${GOPIM_NO_SERVE:-0}" != "1" ]; then
    echo "== serve smoke (loadgen --quick; skip with GOPIM_NO_SERVE=1) =="
    # The job server must survive a mixed burst over the wire protocol:
    # loadgen binds an ephemeral in-process server, drives a seeded
    # simulation/allocation/prediction mix from concurrent clients, and
    # exits nonzero unless every job completed and the server drained
    # cleanly. The metrics report must carry nonzero serve.* counters
    # and the manifest must validate with the serve fields recorded.
    GOPIM_METRICS=1 GOPIM_MANIFEST="$SMOKE_DIR/serve_manifest.json" \
        cargo run --release --offline -p gopim-bench --bin loadgen -- --quick \
        > "$SMOKE_DIR/serve.out" 2> "$SMOKE_DIR/serve.err"
    grep -q "jobs done" "$SMOKE_DIR/serve.out" \
        || { echo "verify: loadgen printed no completion line"; exit 1; }
    grep -q "p50" "$SMOKE_DIR/serve.out" \
        || { echo "verify: loadgen printed no latency quantiles"; exit 1; }
    awk '$1 == "counter" && $2 == "serve.jobs_submitted" && $3 > 0 { s = 1 }
         $1 == "counter" && $2 == "serve.jobs_completed" && $3 > 0 { c = 1 }
         $1 == "counter" && $2 == "serve.connections"    && $3 > 0 { n = 1 }
         END { exit !(s && c && n) }' "$SMOKE_DIR/serve.err" \
        || { echo "verify: serve smoke reported no serve.* counters"; exit 1; }
    cargo run --release --offline -p gopim-obs --example validate_manifest -- \
        "$SMOKE_DIR/serve_manifest.json"
    grep -q '"serve.workers"' "$SMOKE_DIR/serve_manifest.json" \
        || { echo "verify: serve manifest is missing the server config"; exit 1; }
else
    echo "== serve smoke skipped (GOPIM_NO_SERVE=1) =="
fi

if [ "${GOPIM_NO_LOCKDEP:-0}" != "1" ]; then
    echo "== lockdep leg (static lock graph × runtime witness; skip with GOPIM_NO_LOCKDEP=1) =="
    # The two halves of the concurrency analyzer must agree. First the
    # seeded ABBA fixture: the static pass must flag the inversion and
    # exit nonzero.
    if cargo run --release --offline -p gopim --bin gopim -- lint --locks \
        --root crates/lint/fixtures/locks > "$SMOKE_DIR/lockfix.out" 2>&1; then
        echo "verify: the seeded ABBA fixture was not flagged"
        exit 1
    fi
    grep -q "lock-order-inversion" "$SMOKE_DIR/lockfix.out" \
        || { echo "verify: fixture findings missing lock-order-inversion"; exit 1; }
    # The real workspace graph must render (JSON parse/round-trip is
    # covered by the gopim-lint unit suite) and stay cycle-free — a
    # cycle would have failed the lint legs above already.
    cargo run --release --offline -p gopim --bin gopim -- lint --locks --json \
        > "$SMOKE_DIR/lockgraph.json"
    grep -q '"edges"' "$SMOKE_DIR/lockgraph.json" \
        || { echo "verify: lock-graph JSON rendered without an edges array"; exit 1; }
    # A lockdep-instrumented fig04 must keep byte-identical stdout and
    # dump a witness whose order matrix is a subgraph of the static
    # graph.
    GOPIM_LOCKDEP=1 GOPIM_LOCKDEP_DUMP="$SMOKE_DIR/fig04_witness.json" \
        cargo run --release --offline -p gopim-bench --bin fig04 -- --quick \
        > "$SMOKE_DIR/lockdep_fig04.out"
    diff -u "$SMOKE_DIR/plain.out" "$SMOKE_DIR/lockdep_fig04.out" \
        || { echo "verify: lockdep changed fig04 stdout"; exit 1; }
    WITNESSES=("$SMOKE_DIR/fig04_witness.json")
    if [ "${GOPIM_NO_SERVE:-0}" != "1" ]; then
        # loadgen exercises the serve/par/cache lock stacks with the
        # metrics registry enabled — the densest witness we can record.
        # (Its stdout carries real ports and wall-clock quantiles, so
        # no byte-identity check here; fig04 above covers that.)
        GOPIM_LOCKDEP=1 GOPIM_LOCKDEP_DUMP="$SMOKE_DIR/loadgen_witness.json" \
            cargo run --release --offline -p gopim-bench --bin loadgen -- --quick \
            > /dev/null
        WITNESSES+=("$SMOKE_DIR/loadgen_witness.json")
    fi
    CHECK_ARGS=()
    for w in "${WITNESSES[@]}"; do CHECK_ARGS+=(--check-witness "$w"); done
    cargo run --release --offline -p gopim --bin gopim -- lint --locks \
        "${CHECK_ARGS[@]}" > "$SMOKE_DIR/lockdep_check.out" \
        || { cat "$SMOKE_DIR/lockdep_check.out"; echo "verify: a runtime witness escaped the static lock graph"; exit 1; }
else
    echo "== lockdep leg skipped (GOPIM_NO_LOCKDEP=1) =="
fi

echo "== seeded fault-campaign smoke (faults --quick) =="
# Two fault rates on a small graph; the JSON-lines output must pass the
# in-repo parser's schema check, and a second run under the same seed
# must replay byte-identically (stdout and JSON records).
GOPIM_FAULT_SEED=7 GOPIM_FAULT_RATES="0,0.2" \
    cargo run --release --offline -p gopim-bench --bin faults -- --quick cora \
    --json "$SMOKE_DIR/faults_a.jsonl" > "$SMOKE_DIR/faults_a.out"
GOPIM_FAULT_SEED=7 GOPIM_FAULT_RATES="0,0.2" \
    cargo run --release --offline -p gopim-bench --bin faults -- --quick cora \
    --json "$SMOKE_DIR/faults_b.jsonl" > "$SMOKE_DIR/faults_b.out"
# The trailing "appended ... to <path>" line names the per-run JSON
# file, so strip it from the stdout diff; the records themselves are
# compared verbatim just below.
diff -u <(grep -v '^appended ' "$SMOKE_DIR/faults_a.out") \
    <(grep -v '^appended ' "$SMOKE_DIR/faults_b.out") \
    || { echo "verify: fault campaign is not seed-deterministic"; exit 1; }
diff -u "$SMOKE_DIR/faults_a.jsonl" "$SMOKE_DIR/faults_b.jsonl" \
    || { echo "verify: fault campaign JSON records differ across replays"; exit 1; }
cargo run --release --offline -p gopim-bench --bin faults -- \
    --validate "$SMOKE_DIR/faults_a.jsonl"

echo "verify: all green"
