#!/usr/bin/env bash
# Tier-1 verification: everything must pass offline, with no registry
# access. Runs the format check, a release build, the full test suite
# (unit + property + integration + golden snapshot diffs), and makes
# sure every bench target still compiles.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --release --offline =="
cargo build --release --offline --workspace

echo "== cargo test --offline (includes tests/golden diffs) =="
cargo test -q --offline --workspace

echo "== bench targets compile =="
cargo build --offline --benches -p gopim-bench

echo "verify: all green"
