#!/usr/bin/env bash
# Tier-1 verification: everything must pass offline, with no registry
# access. Runs the format check, a release build, the full test suite
# (unit + property + integration + golden snapshot diffs) twice — once
# serial (GOPIM_THREADS=1) and once at the default pool size, so any
# thread-count-dependent result fails the run — and makes sure every
# bench target still compiles.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo build --release --offline =="
cargo build --release --offline --workspace

echo "== cargo test --offline, GOPIM_THREADS=1 (serial reference) =="
GOPIM_THREADS=1 cargo test -q --offline --workspace

echo "== cargo test --offline, default GOPIM_THREADS (parallel) =="
cargo test -q --offline --workspace

echo "== bench targets compile =="
cargo build --offline --benches -p gopim-bench

echo "verify: all green"
