#!/usr/bin/env bash
# Regenerates every paper table/figure plus the extensions and the
# acceptance check. Outputs land in results/. Takes ~40 minutes at full
# scale (fig09 trains eleven 800-epoch MLPs); add --quick for a fast
# smoke pass.
set -euo pipefail
cd "$(dirname "$0")/.."
EXTRA="${1:-}"

mkdir -p results
BINARIES=(table02 table03 fig04 fig05 fig06 fig09 fig10 fig13 fig14 \
          fig15 fig16 fig17 table05 table06 table07 \
          ablation endurance xbar_size shapecheck)
for bin in "${BINARIES[@]}"; do
    echo "== $bin =="
    cargo run --release -p gopim-bench --bin "$bin" -- $EXTRA \
        | tee "results/$bin.txt"
done

# Microbenchmarks: human summary to the console, JSON-lines trajectory
# appended under results/ for trend tracking across runs.
echo "== microbenchmarks =="
rm -f results/bench.jsonl
if [ "$EXTRA" = "--quick" ]; then
    GOPIM_BENCH_FAST=1 GOPIM_BENCH_JSON=results/bench.jsonl \
        cargo bench --offline -p gopim-bench
else
    GOPIM_BENCH_JSON=results/bench.jsonl cargo bench --offline -p gopim-bench
fi
echo "All outputs written to results/ (bench trajectories: results/bench.jsonl)."
