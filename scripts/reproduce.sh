#!/usr/bin/env bash
# Regenerates every paper table/figure plus the extensions and the
# acceptance check. Outputs land in results/. Takes ~40 minutes at full
# scale (fig09 trains eleven 800-epoch MLPs); add --quick for a fast
# smoke pass.
set -euo pipefail
cd "$(dirname "$0")/.."
EXTRA="${1:-}"

# Output directory override: set GOPIM_RESULTS_DIR to write somewhere
# other than ./results (e.g. a per-run scratch dir on CI). Resolved to
# an absolute path because cargo runs the bench binaries with the
# package directory as their cwd.
RESULTS_DIR="${GOPIM_RESULTS_DIR:-$PWD/results}"
mkdir -p "$RESULTS_DIR"
RESULTS_DIR="$(cd "$RESULTS_DIR" && pwd)"
METRICS_DIR=$(mktemp -d)
trap 'rm -rf "$METRICS_DIR"' EXIT
BINARIES=(table02 table03 fig04 fig05 fig06 fig09 fig10 fig13 fig14 \
          fig15 fig16 fig17 table05 table06 table07 \
          ablation endurance xbar_size shapecheck)
for bin in "${BINARIES[@]}"; do
    echo "== $bin =="
    # GOPIM_METRICS and GOPIM_MANIFEST are output-invariant (stdout stays
    # byte-identical); the stderr report feeds the per-experiment cache
    # summary below, and the manifest records what produced each result
    # (config hash, thread count, env, metrics, span aggregates).
    # Absolute manifest path: cargo runs these binaries with the package
    # directory as their cwd.
    GOPIM_METRICS=1 GOPIM_MANIFEST="$RESULTS_DIR/$bin.manifest.json" \
        cargo run --release -p gopim-bench --bin "$bin" -- $EXTRA \
        2> "$METRICS_DIR/$bin.err" | tee "$RESULTS_DIR/$bin.txt" \
        || { cat "$METRICS_DIR/$bin.err" >&2; exit 1; }
done

# Per-experiment run-cache traffic: with GOPIM_CACHE set, reruns of an
# unchanged tree are served from disk and the hit column fills up.
echo "== run-cache summary =="
printf '%-12s %10s %10s %10s\n' experiment hits misses disk_hits
for bin in "${BINARIES[@]}"; do
    awk -v bin="$bin" '
        $1 == "counter" && $2 == "cache.hits"      { hits = $3 }
        $1 == "counter" && $2 == "cache.misses"    { misses = $3 }
        $1 == "counter" && $2 == "cache.disk_hits" { disk = $3 }
        END { printf "%-12s %10d %10d %10d\n", bin, hits, misses, disk }
    ' "$METRICS_DIR/$bin.err"
done

# Microbenchmarks: human summary to the console, JSON-lines trajectory
# appended under results/ for trend tracking across runs.
echo "== microbenchmarks =="
rm -f "$RESULTS_DIR/bench.jsonl"
# Absolute path: cargo runs bench binaries with the *package* directory
# as their cwd, so a relative GOPIM_BENCH_JSON would land (or fail) in
# crates/bench/ instead of the repo root.
BENCH_JSON="$RESULTS_DIR/bench.jsonl"
if [ "$EXTRA" = "--quick" ]; then
    GOPIM_BENCH_FAST=1 GOPIM_BENCH_JSON="$BENCH_JSON" \
        cargo bench --offline -p gopim-bench
else
    GOPIM_BENCH_JSON="$BENCH_JSON" cargo bench --offline -p gopim-bench
fi
echo "All outputs written to $RESULTS_DIR (bench trajectories: bench.jsonl,"
echo "run manifests: <experiment>.manifest.json)."
