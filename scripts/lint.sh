#!/usr/bin/env bash
# Determinism & hermeticity linter: tokenizes every workspace source
# and enforces the repo contracts (no wall clock in simulation code,
# no unordered hash iteration, no external dependencies, no panics or
# prints in library crates) plus the concurrency pass (lock-order
# inversions, guards held across blocking calls, condvar waits without
# a loop), ratcheting against lint-baseline.json — any finding beyond
# the committed baseline fails the run.
#
# The JSON report lands in results/lint.json (override the directory
# with GOPIM_RESULTS_DIR) and is schema-checked with the same in-repo
# parser that validates the campaign/bench output.
#
# Flags (forwarded to `gopim lint`):
#   --prune-stale      drop baseline budget no finding still uses
#   --update-baseline  regrandfather every current finding
set -euo pipefail
cd "$(dirname "$0")/.."

RESULTS_DIR="${GOPIM_RESULTS_DIR:-results}"
mkdir -p "$RESULTS_DIR"

LINT_ARGS=()
for arg in "$@"; do
    case "$arg" in
    --prune-stale | --update-baseline) LINT_ARGS+=("$arg") ;;
    *)
        echo "lint.sh: unknown argument '$arg'" >&2
        exit 2
        ;;
    esac
done

GOPIM_LINT_JSON="$RESULTS_DIR/lint.json" \
    cargo run --release --offline -p gopim --bin gopim -- lint ${LINT_ARGS[@]+"${LINT_ARGS[@]}"}
cargo run --release --offline -p gopim-bench --bin faults -- \
    --validate "$RESULTS_DIR/lint.json"
