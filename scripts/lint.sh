#!/usr/bin/env bash
# Determinism & hermeticity linter: tokenizes every workspace source
# and enforces the repo contracts (no wall clock in simulation code,
# no unordered hash iteration, no external dependencies, no panics or
# prints in library crates), ratcheting against lint-baseline.json —
# any finding beyond the committed baseline fails the run.
#
# The JSON report written via GOPIM_LINT_JSON is schema-checked with
# the same in-repo parser that validates the campaign/bench output.
set -euo pipefail
cd "$(dirname "$0")/.."

LINT_DIR=$(mktemp -d)
trap 'rm -rf "$LINT_DIR"' EXIT

GOPIM_LINT_JSON="$LINT_DIR/lint.json" \
    cargo run --release --offline -p gopim --bin gopim -- lint
cargo run --release --offline -p gopim-bench --bin faults -- \
    --validate "$LINT_DIR/lint.json"
