#!/usr/bin/env bash
# Perf ratchet: run the curated smoke-bench suite (the linalg and
# sparse-aggregation kernels — fast, single-process, scheduler-light)
# and compare it against the committed baseline with `gopim
# bench-diff --ratchet`. Mirrors the lint ratchet: the baseline is a
# committed artifact, drift beyond the tolerance band fails the run,
# and an explicit update flow rewrites it.
#
#   scripts/perf_ratchet.sh                                # check
#   GOPIM_BENCH_BASELINE=update scripts/perf_ratchet.sh    # rewrite baseline
#
# Knobs:
#   GOPIM_BENCH_TOLERANCE  ratchet band as a fraction (default 0.5 —
#                          generous, because the committed baseline and
#                          the verifying machine rarely share hardware)
#   GOPIM_BENCH_SAMPLES    samples per benchmark (default 11)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="bench-baseline.jsonl"
# With GOPIM_RESULTS_DIR set, the freshly measured records are kept
# there (perf_ratchet_current.jsonl) instead of a throwaway tmpdir, so
# CI can archive what the ratchet actually compared.
if [ -n "${GOPIM_RESULTS_DIR:-}" ]; then
    mkdir -p "$GOPIM_RESULTS_DIR"
    RATCHET_DIR="$(cd "$GOPIM_RESULTS_DIR" && pwd)"
else
    RATCHET_DIR=$(mktemp -d)
    trap 'rm -rf "$RATCHET_DIR"' EXIT
fi
# Absolute path: cargo runs bench binaries with the package directory
# as their cwd (see scripts/reproduce.sh).
CURRENT="$RATCHET_DIR/perf_ratchet_current.jsonl"
rm -f "$CURRENT"

echo "== perf-ratchet: smoke-bench suite (linalg + aggregate) =="
GOPIM_BENCH_FAST=1 GOPIM_BENCH_SAMPLES="${GOPIM_BENCH_SAMPLES:-11}" \
GOPIM_BENCH_JSON="$CURRENT" \
    cargo bench --offline -p gopim-bench --bench linalg --bench aggregate

if [ "${GOPIM_BENCH_BASELINE:-}" = "update" ]; then
    cp "$CURRENT" "$BASELINE"
    echo "perf-ratchet: baseline rewritten at $BASELINE ($(wc -l < "$BASELINE") records)"
    exit 0
fi

if [ ! -f "$BASELINE" ]; then
    echo "perf-ratchet: no $BASELINE committed; seed it with:" >&2
    echo "  GOPIM_BENCH_BASELINE=update scripts/perf_ratchet.sh" >&2
    exit 1
fi

echo "== perf-ratchet: bench-diff against $BASELINE =="
cargo run --release --offline -p gopim -- bench-diff --ratchet \
    --tolerance "${GOPIM_BENCH_TOLERANCE:-0.5}" "$BASELINE" "$CURRENT"
