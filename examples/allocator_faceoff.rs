//! Allocator face-off: every replica-allocation policy on the same
//! workload — pipeline time (Eq. 6 objective), crossbars spent, and
//! decision latency. This is the §V-B story: the greedy matches the
//! expensive reference search at a fraction of the decision cost.
//!
//! ```text
//! cargo run --release --example allocator_faceoff -- collab
//! ```

use std::time::Instant;

use gopim::report;
use gopim_alloc::{fixed, greedy_allocate, reference_allocate, AllocInput, AllocPlan};
use gopim_graph::datasets::Dataset;
use gopim_pipeline::{GcnWorkload, WorkloadOptions};
use gopim_reram::spec::AcceleratorSpec;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ddi".into());
    let dataset = Dataset::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(&name))
        .unwrap_or(Dataset::Ddi);

    let workload = GcnWorkload::build(dataset, &WorkloadOptions::default());
    let spec = AcceleratorSpec::paper();
    let n_mb = workload.num_microbatches();
    let budget = spec.total_crossbars() - workload.base_crossbars();
    let input = AllocInput {
        compute_ns: workload.stages().iter().map(|s| s.compute_ns).collect(),
        write_ns: (0..workload.stages().len())
            .map(|i| {
                (0..n_mb).map(|j| workload.write_ns(i, j)).sum::<f64>() / n_mb as f64
                    + workload.overhead_ns()
            })
            .collect(),
        quantum_ns: vec![spec.mvm_latency_ns(); workload.stages().len()],
        crossbars_per_replica: workload
            .stages()
            .iter()
            .map(|s| s.crossbars_per_replica)
            .collect(),
        unused_crossbars: budget,
        num_microbatches: n_mb,
        max_replicas: None,
    };
    let feature_class: Vec<bool> = workload
        .stages()
        .iter()
        .map(|s| s.kind.maps_features())
        .collect();
    let co_class: Vec<bool> = feature_class.iter().map(|&f| !f).collect();

    println!(
        "dataset={dataset}: {} stages, {} unused crossbars, {} micro-batches",
        workload.stages().len(),
        budget,
        n_mb
    );
    println!();

    type Policy<'a> = Box<dyn Fn() -> AllocPlan + 'a>;
    let policies: Vec<(&str, Policy)> = vec![
        (
            "Serial (none)",
            Box::new(|| AllocPlan::serial(input.num_stages())),
        ),
        ("Uniform (Pipelayer)", Box::new(|| fixed::uniform(&input))),
        (
            "1:2 ratio (ReGraphX)",
            Box::new(|| fixed::regraphx_ratio(&input, &feature_class)),
        ),
        (
            "CO-only (ReFlip)",
            Box::new(|| fixed::combination_only(&input, &co_class)),
        ),
        (
            "Greedy (GoPIM Alg. 1)",
            Box::new(|| greedy_allocate(&input)),
        ),
        (
            "Reference (tau-sweep)",
            Box::new(|| reference_allocate(&input)),
        ),
    ];

    let mut rows = Vec::new();
    for (label, run) in &policies {
        let start = Instant::now();
        let plan = run();
        let elapsed = start.elapsed();
        rows.push(vec![
            label.to_string(),
            report::time_ns(input.pipeline_time(&plan.replicas)),
            plan.extra_crossbars(&input.crossbars_per_replica)
                .to_string(),
            format!("{:.2} ms", elapsed.as_secs_f64() * 1e3),
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "policy",
                "pipeline time (Eq. 6)",
                "extra crossbars",
                "decision time"
            ],
            &rows
        )
    );
}
