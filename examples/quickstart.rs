//! Quickstart: simulate GoPIM vs the Serial baseline on the ddi
//! dataset and print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gopim::report;
use gopim::runner::{run_system, RunConfig};
use gopim::system::System;
use gopim_graph::datasets::Dataset;

fn main() {
    // The full 16 GB chip of the paper's Table II. Shrink the budget to
    // see how GoPIM degrades gracefully with fewer spare crossbars.
    let config = RunConfig::default();
    let dataset = Dataset::Ddi;

    println!("dataset: {} ({:?})", dataset, dataset.stats());
    println!();

    let serial = run_system(dataset, System::Serial, &config);
    let gopim = run_system(dataset, System::Gopim, &config);

    println!(
        "Serial : {:>10}  energy {:.3} mJ",
        report::time_ns(serial.makespan_ns),
        serial.energy_nj() / 1e6,
    );
    println!(
        "GoPIM  : {:>10}  energy {:.3} mJ",
        report::time_ns(gopim.makespan_ns),
        gopim.energy_nj() / 1e6,
    );
    println!();
    println!(
        "speedup {}   energy saving {:.2}x",
        report::speedup(serial.makespan_ns / gopim.makespan_ns),
        serial.energy_nj() / gopim.energy_nj(),
    );
    println!();
    println!("GoPIM per-stage replica allocation (Algorithm 1):");
    for ((name, replicas), footprint) in gopim
        .stage_names
        .iter()
        .zip(&gopim.replicas)
        .zip(&gopim.footprints)
    {
        println!("  {name}: {replicas} replicas x {footprint} crossbars");
    }
}
