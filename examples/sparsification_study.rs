//! Sparsification study: how the selective-updating threshold θ trades
//! update time against model accuracy, and what interleaved mapping
//! adds (OSU vs ISU, the paper's §VI).
//!
//! ```text
//! cargo run --release --example sparsification_study
//! ```

use gopim::report;
use gopim_gcn::train::{train_gcn, TrainOptions};
use gopim_graph::datasets::Dataset;
use gopim_mapping::{index_based, interleaved, update_load, SelectivePolicy};
use gopim_reram::spec::AcceleratorSpec;

fn main() {
    let dataset = Dataset::Ddi;
    let spec = AcceleratorSpec::paper();
    let profile = dataset.profile(7);
    let capacity = spec.crossbar_rows;
    let index_map = index_based(profile.num_vertices(), capacity);
    let isu_map = interleaved(&profile, capacity);
    let row_ns = spec.row_write_latency_ns();

    println!("dataset: {dataset} (dense; the adaptive rule picks theta = 50%)");
    println!();
    println!("Update-time side (full-size profile, 64-row crossbars):");
    let mut rows = Vec::new();
    for theta in [1.0, 0.8, 0.5, 0.3] {
        let policy = SelectivePolicy::with_theta(theta, 20);
        let mask = policy.important_vertices(&profile);
        let osu = update_load(&index_map, &mask);
        let isu = update_load(&isu_map, &mask);
        rows.push(vec![
            format!("{:.0}%", theta * 100.0),
            format!("{:.1} us", osu.max_rows_per_group as f64 * row_ns / 1e3),
            format!("{:.1} us", isu.max_rows_per_group as f64 * row_ns / 1e3),
            osu.total_rows.to_string(),
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "theta",
                "OSU pacing (index map)",
                "ISU pacing (interleaved)",
                "rows/epoch"
            ],
            &rows
        )
    );
    println!("OSU keeps a fully-selected crossbar on the critical path (paper Fig. 7);");
    println!("interleaving spreads the selected rows evenly (Fig. 11/12).");
    println!();

    println!("Accuracy side (numeric stand-in graph, 80 training epochs):");
    let (graph, labels) = dataset.numeric_graph(800, 11);
    let mut rows = Vec::new();
    for theta in [1.0, 0.8, 0.5, 0.3] {
        let mut opts = TrainOptions::experiment();
        opts.selective = (theta < 1.0).then(|| SelectivePolicy::with_theta(theta, 20));
        let r = train_gcn(&graph, &labels, &opts);
        rows.push(vec![
            format!("{:.0}%", theta * 100.0),
            report::percent(r.test_accuracy),
            report::percent(r.train_accuracy),
        ]);
    }
    println!(
        "{}",
        report::table(&["theta", "test accuracy", "train accuracy"], &rows)
    );
}
