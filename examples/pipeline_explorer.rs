//! Pipeline explorer: inspect any (dataset, system, micro-batch)
//! combination — per-stage times, replica allocation, idle fractions
//! and the resulting schedule.
//!
//! ```text
//! cargo run --release --example pipeline_explorer -- proteins GoPIM 64
//! cargo run --release --example pipeline_explorer -- ddi ReGraphX 128
//! ```

use gopim::report;
use gopim::runner::{run_system, RunConfig};
use gopim::system::System;
use gopim_graph::datasets::Dataset;

fn parse_dataset(name: &str) -> Option<Dataset> {
    Dataset::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
}

fn parse_system(name: &str) -> Option<System> {
    System::ALL
        .into_iter()
        .find(|s| s.name().eq_ignore_ascii_case(name))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dataset = args
        .first()
        .and_then(|a| parse_dataset(a))
        .unwrap_or(Dataset::Ddi);
    let system = args
        .get(1)
        .and_then(|a| parse_system(a))
        .unwrap_or(System::Gopim);
    let micro_batch: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(64);

    let config = RunConfig {
        micro_batch,
        ..RunConfig::default()
    };
    println!("dataset={dataset}  system={system}  micro-batch={micro_batch}");
    let stats = dataset.stats();
    println!(
        "N={} vertices, E={} edges, avg degree {:.1}, {} feature dims, {}-layer GCN",
        stats.num_vertices,
        stats.num_edges,
        stats.avg_degree,
        stats.feature_dim,
        dataset.model().num_layers
    );
    println!();

    let run = run_system(dataset, system, &config);
    let rows: Vec<Vec<String>> = run
        .schedule
        .stages
        .iter()
        .enumerate()
        .map(|(i, st)| {
            vec![
                st.name.clone(),
                st.replicas.to_string(),
                (run.replicas[i] * run.footprints[i]).to_string(),
                report::time_ns(st.busy_compute_ns / run.schedule.stages[i].replicas as f64),
                report::time_ns(st.busy_write_ns),
                report::percent(st.idle_fraction),
                report::percent(st.stage_idle_fraction),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &[
                "stage",
                "replicas",
                "crossbars",
                "compute/replica",
                "writes",
                "crossbar idle",
                "stage idle"
            ],
            &rows
        )
    );
    println!(
        "makespan {}   total crossbars {}   energy {:.3} mJ",
        report::time_ns(run.makespan_ns),
        run.total_crossbars(),
        run.energy_nj() / 1e6
    );
    println!(
        "energy breakdown: compute {:.3} mJ, writes {:.3} mJ, leakage {:.3} mJ, chip overhead {:.3} mJ",
        run.energy.compute_nj / 1e6,
        run.energy.write_nj / 1e6,
        run.energy.leakage_nj / 1e6,
        run.energy.overhead_nj / 1e6
    );

    // Gantt view of the same schedule (# compute, w write, . dispatch).
    use gopim::runner::build_workload;
    use gopim_pipeline::schedule::simulate_traced;
    use gopim_pipeline::trace::render_gantt;
    use gopim_pipeline::PipelineOptions;
    let workload = build_workload(dataset, system, &config);
    let options = if system.pipelined() {
        PipelineOptions {
            intra_batch: true,
            inter_batch: system.inter_batch(),
            num_batches: 1,
        }
    } else {
        PipelineOptions::serial()
    };
    let (_, events) = simulate_traced(&workload, &run.replicas, &options);
    println!();
    println!("schedule ({} micro-batches):", workload.num_microbatches());
    print!("{}", render_gantt(&workload, &events, 100));
}
