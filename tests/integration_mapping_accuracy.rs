//! Mapping ↔ accuracy integration: ISU's interleaved mapping must
//! balance real generated graphs, and its staleness semantics must keep
//! numeric GCN accuracy close to full updating at the adaptive θ.

use gopim_gcn::train::{train_gcn, TrainOptions};
use gopim_graph::datasets::Dataset;
use gopim_mapping::{
    adaptive_theta, index_based, interleaved, update_load, SelectivePolicy, DENSE_THETA,
    SPARSE_THETA,
};
use gopim_testkit::prop::{check_with, Config, Draw};

#[test]
fn interleaving_beats_index_mapping_on_all_real_profiles() {
    for dataset in [Dataset::Ddi, Dataset::Collab, Dataset::Arxiv, Dataset::Cora] {
        let profile = dataset.profile(7);
        let policy = SelectivePolicy::with_theta(adaptive_theta(&profile), 20);
        let mask = policy.important_vertices(&profile);
        let osu = update_load(&index_based(profile.num_vertices(), 64), &mask);
        let isu = update_load(&interleaved(&profile, 64), &mask);
        assert!(
            isu.max_rows_per_group < osu.max_rows_per_group,
            "{dataset}: isu {} vs osu {}",
            isu.max_rows_per_group,
            osu.max_rows_per_group
        );
        // Same total work, different balance.
        assert_eq!(isu.total_rows, osu.total_rows, "{dataset}");
    }
}

#[test]
fn adaptive_theta_keeps_accuracy_on_dense_and_sparse_stand_ins() {
    for (dataset, n) in [(Dataset::Ddi, 300), (Dataset::Cora, 300)] {
        let (graph, labels) = dataset.numeric_graph(n, 9);
        let profile = graph.to_degree_profile();
        let policy = SelectivePolicy::adaptive(&profile);

        let mut opts = TrainOptions::quick_test();
        opts.epochs = 40;
        let vanilla = train_gcn(&graph, &labels, &opts);
        opts.selective = Some(policy);
        let isu = train_gcn(&graph, &labels, &opts);
        assert!(
            vanilla.test_accuracy - isu.test_accuracy < 0.12,
            "{dataset}: vanilla {} vs isu {}",
            vanilla.test_accuracy,
            isu.test_accuracy
        );
    }
}

#[test]
fn staleness_refresh_period_matters_more_on_sparse_graphs() {
    // Cora-like sparse graph, very low θ: the sparse rule (80 %) should
    // do no worse than an aggressive 20 % threshold.
    let (graph, labels) = Dataset::Cora.numeric_graph(300, 4);
    let mut opts = TrainOptions::quick_test();
    opts.epochs = 40;
    opts.selective = Some(SelectivePolicy::with_theta(0.8, 20));
    let safe = train_gcn(&graph, &labels, &opts);
    opts.selective = Some(SelectivePolicy::with_theta(0.2, 20));
    let aggressive = train_gcn(&graph, &labels, &opts);
    assert!(
        safe.test_accuracy >= aggressive.test_accuracy - 0.05,
        "safe {} vs aggressive {}",
        safe.test_accuracy,
        aggressive.test_accuracy
    );
}

#[test]
fn adaptive_theta_follows_the_papers_density_rule() {
    // §IV-B: dense graphs update a small important set every epoch
    // (θ = 50 %), sparse graphs must keep most rows fresh (θ = 80 %).
    // ddi (avg degree 500.5) is dense; Cora (3.9) is sparse.
    assert_eq!(adaptive_theta(&Dataset::Ddi.profile(7)), DENSE_THETA);
    assert_eq!(adaptive_theta(&Dataset::Cora.profile(7)), SPARSE_THETA);
    assert!(SPARSE_THETA > DENSE_THETA);
}

#[test]
fn interleaved_mapping_is_always_valid_and_balanced() {
    check_with(
        "interleaved_mapping_is_always_valid_and_balanced",
        Config::cases(16),
        |d: &mut Draw| {
            let n = d.draw("n", 65usize..2000);
            let avg = d.draw("avg", 2.0f64..60.0);
            let theta = d.draw("theta", 0.1f64..1.0);
            let profile = gopim_graph::generate::power_law_profile(n, avg, 0.8, 0.9, 3);
            let mapping = interleaved(&profile, 64);
            assert!(mapping.validate().is_ok());

            let policy = SelectivePolicy::with_theta(theta, 20);
            let mask = policy.important_vertices(&profile);
            let load = update_load(&mapping, &mask);
            let selected = mask.iter().filter(|&&m| m).count();
            let groups = mapping.num_groups();
            // Balance: the max-loaded group holds at most ⌈selected/groups⌉
            // + 1 selected rows.
            let fair = selected.div_ceil(groups) + 1;
            assert!(
                load.max_rows_per_group <= fair,
                "max {} vs fair {}",
                load.max_rows_per_group,
                fair
            );
        },
    );
}
