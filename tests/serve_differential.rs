//! Differential harness for the serve layer: a result served over the
//! socket must be **bitwise identical** to the same request computed
//! in-process — serving changes *where* a result is computed, never
//! *what* it is. Three fronts:
//!
//! 1. **cold** — a fresh server computes each sweep cell on demand;
//!    the bytes must match an uncached in-process [`run_systems`];
//! 2. **cache-warm** — resubmitting the same jobs must be served from
//!    the canonical-hash cache (`cache_served = true`) with the same
//!    bytes;
//! 3. **one namespace** — the socket and the in-process runner share
//!    one cache: results computed through the server satisfy later
//!    in-process calls, and vice versa.
//!
//! Comparison is on the [`CacheValue`] encodings — the exact byte
//! strings the wire carries and the store persists — so equality here
//! *is* the bitwise contract, f64 payloads included.

use std::sync::Arc;

use gopim::jobs::{CoreJobHandler, JobConfig, JobRequest};
use gopim::runner::{run_systems, RunConfig};
use gopim::system::System;
use gopim_cache::CacheValue;
use gopim_graph::datasets::Dataset;
use gopim_serve::{Client, Response, Server, ServerConfig};

fn sweep() -> Vec<(Dataset, System)> {
    vec![
        (Dataset::Ddi, System::Serial),
        (Dataset::Ddi, System::Gopim),
        (Dataset::Cora, System::Gopim),
    ]
}

fn test_server() -> (Server, String) {
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(CoreJobHandler),
        ServerConfig {
            workers: 2,
            max_queue: 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind differential server");
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// Submits one job and returns `(result_bytes, cache_served)`.
fn submit(client: &mut Client, id: u64, job: &JobRequest) -> (Vec<u8>, bool) {
    match client
        .submit_blocking(id, 0, job.to_bytes(), |_| {})
        .expect("submit job")
    {
        Response::Done {
            result,
            cache_served,
            ..
        } => (result, cache_served),
        other => panic!("expected Done for job {id}, got {other:?}"),
    }
}

#[test]
fn socket_served_simulations_are_bitwise_identical_cold_and_warm() {
    // A budget only this test uses, so the server's first pass is
    // genuinely cold even with other tests sharing the process cache.
    let config = RunConfig {
        crossbar_budget: Some(234_000),
        ..RunConfig::default()
    };
    let cells = sweep();

    // Reference: fresh in-process simulation, cache bypassed.
    let fresh: Vec<Vec<u8>> = gopim_cache::with_disabled(|| {
        run_systems(&cells, &config)
            .iter()
            .map(CacheValue::to_bytes)
            .collect()
    });

    let (server, addr) = test_server();
    let mut client = Client::connect(&addr, "differential").expect("connect");
    let job_config = JobConfig::from_run_config(&config);

    // Cold leg: every cell computed by the server on demand.
    for (i, &(dataset, system)) in cells.iter().enumerate() {
        let job = JobRequest::Simulate {
            dataset,
            system,
            config: job_config.clone(),
        };
        let (bytes, cache_served) = submit(&mut client, i as u64, &job);
        assert!(
            !cache_served,
            "cold leg for {dataset:?}/{system:?} must not be cache-served"
        );
        assert_eq!(
            bytes, fresh[i],
            "cold socket bytes differ from fresh in-process run for {dataset:?}/{system:?}"
        );
    }

    // Warm leg: the same requests come straight from the cache, byte
    // for byte.
    for (i, &(dataset, system)) in cells.iter().enumerate() {
        let job = JobRequest::Simulate {
            dataset,
            system,
            config: job_config.clone(),
        };
        let (bytes, cache_served) = submit(&mut client, 100 + i as u64, &job);
        assert!(
            cache_served,
            "warm leg for {dataset:?}/{system:?} must be cache-served"
        );
        assert_eq!(
            bytes, fresh[i],
            "warm socket bytes differ from fresh for {dataset:?}/{system:?}"
        );
    }

    let stats = client.stats(|_| {}).expect("stats");
    server.shutdown();
    assert_eq!(stats.completed, 2 * cells.len() as u64);
    assert!(
        stats.cache_served >= cells.len() as u64,
        "warm leg must hit the cache: {stats:?}"
    );

    // One namespace, socket → in-process: the runner's own cached
    // entry points now serve the bytes the server computed.
    let in_process: Vec<Vec<u8>> = run_systems(&cells, &config)
        .iter()
        .map(CacheValue::to_bytes)
        .collect();
    assert_eq!(
        in_process, fresh,
        "in-process run after socket warm-up changed bytes"
    );
}

#[test]
fn a_sweep_job_matches_run_systems_bitwise() {
    let config = RunConfig {
        crossbar_budget: Some(236_000),
        ..RunConfig::default()
    };
    let cells = sweep();
    let fresh = gopim_cache::with_disabled(|| run_systems(&cells, &config).to_bytes());

    let (server, addr) = test_server();
    let mut client = Client::connect(&addr, "sweep-diff").expect("connect");
    let job = JobRequest::Sweep {
        cells: cells.clone(),
        config: JobConfig::from_run_config(&config),
    };
    let (cold, cold_cached) = submit(&mut client, 1, &job);
    let (warm, warm_cached) = submit(&mut client, 2, &job);
    server.shutdown();

    assert_eq!(cold, fresh, "cold sweep bytes differ from run_systems");
    assert_eq!(warm, fresh, "warm sweep bytes differ from run_systems");
    assert!(!cold_cached, "first sweep cannot be cache-served");
    assert!(warm_cached, "second sweep must be cache-served");
}

#[test]
fn an_in_process_run_pre_warms_the_socket() {
    // One namespace, in-process → socket: results computed by the
    // plain runner satisfy the very first socket request.
    let config = RunConfig {
        crossbar_budget: Some(238_000),
        ..RunConfig::default()
    };
    let (dataset, system) = (Dataset::Ddi, System::Gopim);
    let local = run_systems(&[(dataset, system)], &config)[0].to_bytes();

    let (server, addr) = test_server();
    let mut client = Client::connect(&addr, "pre-warmed").expect("connect");
    let job = JobRequest::Simulate {
        dataset,
        system,
        config: JobConfig::from_run_config(&config),
    };
    let (bytes, cache_served) = submit(&mut client, 1, &job);
    server.shutdown();

    assert!(
        cache_served,
        "the socket's first request must reuse the in-process result"
    );
    assert_eq!(
        bytes, local,
        "socket-served bytes differ from the local run"
    );
}
