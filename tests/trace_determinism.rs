//! The trace event *set* must not depend on `GOPIM_THREADS`.
//!
//! Spans are recorded at parallel-primitive entry with input-shape-only
//! arguments (see `gopim-par`), and pool internals are metrics-only, so
//! the multiset of span identities (`cat|name|args`, excluding
//! pid/tid/timestamps) is pinned to be identical at 1 and 8 worker
//! threads. This is the contract that makes `GOPIM_TRACE` diffs
//! meaningful across machines with different core counts.

use gopim::runner::{run_system, RunConfig};
use gopim::system::System;
use gopim_gcn::aggregate::{NormalizedAdjacency, Propagation};
use gopim_graph::datasets::Dataset;
use gopim_graph::CsrGraph;
use gopim_linalg::Matrix;
use gopim_par::Pool;

/// Runs the mixed workload under `threads` workers and returns the
/// sorted span-identity multiset.
fn traced_identities(threads: usize) -> Vec<String> {
    let pool = Pool::new(threads);
    gopim_obs::set_trace_enabled(true);
    let _ = gopim_obs::span::drain();
    pool.install(|| {
        // Kernels: matmul + sparse aggregation.
        let a = Matrix::from_vec(48, 32, (0..48 * 32).map(|i| (i % 7) as f64).collect());
        let b = Matrix::from_vec(32, 24, (0..32 * 24).map(|i| (i % 5) as f64).collect());
        std::hint::black_box(a.matmul(&b));
        let n = 300u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let graph = CsrGraph::from_edges(n as usize, &edges);
        let adj = NormalizedAdjacency::new(&graph);
        let x = Matrix::from_vec(n as usize, 8, vec![0.5; n as usize * 8]);
        std::hint::black_box(adj.propagate(&graph, &x));
        // Full driver path: runner → pipeline DES → schedule.
        let config = RunConfig {
            micro_batch: 16,
            ..RunConfig::default()
        };
        std::hint::black_box(run_system(Dataset::Ddi, System::Gopim, &config));
    });
    let mut ids: Vec<String> = gopim_obs::span::drain()
        .iter()
        .map(|e| e.identity())
        .collect();
    gopim_obs::set_trace_enabled(false);
    ids.sort();
    ids
}

#[test]
fn span_identity_multiset_is_thread_count_invariant() {
    let serial = traced_identities(1);
    let parallel = traced_identities(8);
    assert!(
        !serial.is_empty(),
        "traced run must record spans (is span collection wired?)"
    );
    // The workload touches every instrumented layer.
    for prefix in [
        "linalg.matmul",
        "gcn.aggregate",
        "pipeline.simulate",
        "runner.run_system",
    ] {
        assert!(
            serial.iter().any(|id| id.contains(prefix)),
            "missing {prefix} span in {serial:?}"
        );
    }
    let only_serial: Vec<&String> = serial.iter().filter(|id| !parallel.contains(id)).collect();
    let only_parallel: Vec<&String> = parallel.iter().filter(|id| !serial.contains(id)).collect();
    assert_eq!(
        serial, parallel,
        "trace event set differs between 1 and 8 threads\n\
         only at 1 thread: {only_serial:?}\nonly at 8 threads: {only_parallel:?}"
    );
}
