//! Differential test layer for the fault subsystem: with faults
//! disabled, every pipeline, mapping and accuracy output must be
//! bit-identical to a build that never heard of faults — at
//! `GOPIM_THREADS=1` and at the default pool width — and a seeded
//! nonzero campaign must replay bit-identically while strictly
//! stretching the makespan.

use gopim::experiments::faults::{run, CampaignConfig};
use gopim_faults::{FaultConfig, FaultPlan, FaultSession, MitigationPolicy, SessionConfig};
use gopim_gcn::train::{train_gcn, TrainOptions};
use gopim_graph::datasets::Dataset;
use gopim_mapping::{interleaved, remap_to_spares};
use gopim_pipeline::des::{simulate_des, simulate_des_faulty, ReplicaModel};
use gopim_pipeline::{GcnWorkload, WorkloadOptions};

fn workload() -> GcnWorkload {
    GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default())
}

/// An inert session must leave the DES cross-check untouched down to
/// the last bit — every completion time, not just the makespan.
#[test]
fn inert_session_leaves_the_des_bit_identical() {
    let wl = workload();
    let replicas = vec![3; wl.stages().len()];
    let groups = vec![8; wl.stages().len()];
    for model in [ReplicaModel::DiscreteServers, ReplicaModel::InputSplit] {
        let clean = simulate_des(&wl, &replicas, model);
        let mut session = FaultSession::disabled(&groups);
        let faulty = simulate_des_faulty(&wl, &replicas, model, &mut session);
        assert_eq!(
            clean.makespan_ns.to_bits(),
            faulty.makespan_ns.to_bits(),
            "inert session changed the makespan under {model:?}"
        );
        assert_eq!(clean.completions_ns, faulty.completions_ns);
        assert_eq!(session.stats().injected, 0);
        assert_eq!(session.stats().extra_write_ns, 0.0);
    }
}

/// The same inert differential, forced through a single-thread pool
/// and through the default pool: both must agree with each other and
/// with the fault-free simulation.
#[test]
fn inert_campaign_is_thread_count_invariant() {
    let config = CampaignConfig {
        fault_rates: vec![0.0],
        train_vertices: 120,
        epochs: 8,
        ..CampaignConfig::default()
    };
    let single = gopim_par::Pool::new(1).install(|| run(Dataset::Ddi, &config));
    let pooled = run(Dataset::Ddi, &config);
    assert_eq!(single, pooled, "campaign varies with GOPIM_THREADS");
    for row in &single.rows {
        assert_eq!(
            row.makespan_ns.to_bits(),
            single.clean_makespan_ns.to_bits(),
            "rate-0 {} row differs from the fault-free reference",
            row.policy
        );
        assert_eq!(row.energy_nj.to_bits(), single.clean_energy_nj.to_bits());
        assert_eq!(row.accuracy.to_bits(), single.clean_accuracy.to_bits());
        assert_eq!(
            (row.injected, row.remapped, row.retries, row.dropped_rows),
            (0, 0, 0, 0)
        );
    }
}

/// Remapping around an all-alive mask is the identity on both the
/// logical mapping and the physical steering.
#[test]
fn remap_with_no_dead_groups_is_the_identity() {
    let profile = Dataset::Cora.profile(3);
    let mapping = interleaved(&profile, 64);
    let out = remap_to_spares(&mapping, &vec![false; mapping.num_groups()], 4);
    assert_eq!(out.mapping, mapping);
    assert_eq!(out.moved_vertices, 0);
    assert_eq!(out.spares_used, 0);
    assert!(!out.fallback);
    assert_eq!(
        out.physical,
        (0..mapping.num_groups() as u32).collect::<Vec<u32>>()
    );
}

/// Training with an empty frozen set must be indistinguishable from a
/// build without the fault layer's freeze hook.
#[test]
fn empty_frozen_set_trains_bit_identically() {
    let (graph, labels) = Dataset::Cora.numeric_graph(150, 11);
    let vanilla = TrainOptions {
        epochs: 10,
        seed: 11,
        ..TrainOptions::quick_test()
    };
    let frozen = TrainOptions {
        frozen_vertices: Vec::new(),
        freeze_epoch: 3,
        ..vanilla.clone()
    };
    let a = train_gcn(&graph, &labels, &vanilla);
    let b = train_gcn(&graph, &labels, &frozen);
    assert_eq!(a, b, "empty frozen set perturbed training");
}

/// A seeded nonzero campaign completes, replays bit-identically, and
/// mitigation strictly stretches the makespan past fault-free.
#[test]
fn nonzero_campaign_replays_and_degrades_gracefully() {
    let config = CampaignConfig {
        fault_rates: vec![0.0, 0.25],
        train_vertices: 120,
        epochs: 8,
        ..CampaignConfig::default()
    };
    let a = run(Dataset::Ddi, &config);
    let b = run(Dataset::Ddi, &config);
    assert_eq!(a, b, "seeded campaign failed to replay bit-identically");
    let faulted = &a.rows[MitigationPolicy::ALL.len()..];
    assert!(faulted.iter().all(|r| r.fault_rate == 0.25));
    assert!(
        faulted.iter().any(|r| r.injected > 0),
        "rate 0.25 must inject"
    );
    let remap = faulted.iter().find(|r| r.policy == "remap").unwrap();
    assert!(
        remap.makespan_ns > a.clean_makespan_ns,
        "remap mitigation must cost simulated time ({} vs {})",
        remap.makespan_ns,
        a.clean_makespan_ns
    );
    assert!(remap.energy_nj > a.clean_energy_nj);
    assert_eq!(remap.dropped_rows, 0, "spares must absorb every death");
}

/// Golden snapshot of the quick campaign's degradation table —
/// regenerate intentionally with `GOPIM_GOLDEN=update cargo test -q`
/// and review the diff like any other source change.
#[test]
fn golden_faults_campaign_table() {
    use gopim::experiments::faults::degradation_table;
    let report = run(Dataset::Ddi, &CampaignConfig::quick_test());
    gopim_testkit::golden::check("faults_campaign", &degradation_table(&report));
}

/// The raw session layer is thread-invariant too: the same plan
/// replayed through two sessions gives bitwise-equal write latencies
/// regardless of pool shape (sessions are single-threaded state, so
/// this locks the API against accidental global-RNG reliance).
#[test]
fn session_replay_is_bitwise_stable() {
    let wl = workload();
    let replicas = vec![2; wl.stages().len()];
    let groups: Vec<usize> = wl.stages().iter().map(|_| 16).collect();
    let plan = FaultPlan::generate(
        FaultConfig {
            seed: 23,
            stuck_rate: 0.4,
            transient_rate: 0.1,
            horizon_ns: 1e7,
        },
        &groups,
    );
    let mut cfg = SessionConfig::new(MitigationPolicy::Remap);
    cfg.spare_groups = 4;
    let run_once = || {
        let mut session = FaultSession::new(plan.clone(), cfg, &groups);
        let result =
            simulate_des_faulty(&wl, &replicas, ReplicaModel::DiscreteServers, &mut session);
        (result, *session.stats())
    };
    let (ra, sa) = run_once();
    let (rb, sb) = gopim_par::Pool::new(1).install(run_once);
    assert_eq!(ra.makespan_ns.to_bits(), rb.makespan_ns.to_bits());
    assert_eq!(ra.completions_ns, rb.completions_ns);
    assert_eq!(sa, sb);
}
