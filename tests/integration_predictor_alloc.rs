//! Predictor → allocator integration: the ML Time Predictor feeds
//! Algorithm 1 and must produce near-profiling allocations; the greedy
//! allocator is property-checked against the reference search.

use gopim::runner::{run_system, Estimator, RunConfig};
use gopim::system::System;
use gopim_alloc::{greedy_allocate, reference_allocate, AllocInput};
use gopim_graph::datasets::Dataset;
use gopim_predictor::dataset_gen::generate_samples;
use gopim_predictor::eval::{prediction_accuracy, split};
use gopim_predictor::TimePredictor;
use gopim_testkit::prop::{check_with, Config, Draw};

#[test]
fn ml_driven_allocation_matches_profiling_within_tolerance() {
    let config = RunConfig {
        crossbar_budget: Some(300_000),
        ..RunConfig::default()
    };
    let (n_samples, epochs) = if cfg!(debug_assertions) {
        (300, 40)
    } else {
        (500, 80)
    };
    let data = generate_samples(n_samples, 5);
    let serial = run_system(Dataset::Ddi, System::Serial, &config);
    let exact = run_system(Dataset::Ddi, System::Gopim, &config);
    let s_exact = serial.makespan_ns / exact.makespan_ns;
    // Training is noisy; average the achieved speedup over a few
    // training seeds rather than betting on one lucky initialization.
    let train_seeds = [3u64, 7, 9];
    let s_ml: f64 = train_seeds
        .iter()
        .map(|&seed| {
            let predictor = TimePredictor::train_paper(&data, epochs, seed);
            let ml_config = RunConfig {
                estimator: Estimator::Ml(predictor),
                ..config.clone()
            };
            let ml = run_system(Dataset::Ddi, System::Gopim, &ml_config);
            serial.makespan_ns / ml.makespan_ns
        })
        .sum::<f64>()
        / train_seeds.len() as f64;
    assert!(
        (s_ml - s_exact).abs() / s_exact < 0.3,
        "mean ml speedup {s_ml} vs exact {s_exact}"
    );
}

#[test]
fn predictor_generalizes_to_unseen_workloads() {
    // Train on one sample universe, evaluate time-space accuracy on a
    // disjoint one (the paper's §VII-G generalizability check, 93.4 %).
    let (n_train, epochs) = if cfg!(debug_assertions) {
        (250, 30)
    } else {
        (600, 120)
    };
    let train_data = generate_samples(n_train, 101);
    let test_data = generate_samples(100, 999);
    let (train, _) = split(&train_data, 0.9, 1);
    let predictor = TimePredictor::train_paper(&train, epochs, 5);
    let pred_norm = predictor.predict_normalized(&test_data.x);
    let to_ns = |t: &[f64]| -> Vec<f64> {
        t.iter()
            .map(|&v| gopim_predictor::dataset_gen::SampleSet::ns_of_target(v))
            .collect()
    };
    let acc = prediction_accuracy(&to_ns(&pred_norm), &to_ns(&test_data.y));
    assert!(acc > 0.55, "unseen-workload accuracy {acc}");
}

#[test]
fn replicas_flow_to_the_aggregation_stages_on_real_workloads() {
    // The paper's Table VI observation: since AG compute dwarfs CO
    // compute, Algorithm 1 spends (nearly) the whole crossbar budget on
    // Aggregation replicas. Odd stage indices are AG (CO/AG pairs).
    let config = RunConfig {
        crossbar_budget: Some(300_000),
        ..RunConfig::default()
    };
    let run = run_system(Dataset::Ddi, System::Gopim, &config);
    let ag_extra: usize = run
        .replicas
        .iter()
        .zip(&run.footprints)
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(_, (&r, &f))| (r - 1) * f)
        .sum();
    let co_extra: usize = run
        .replicas
        .iter()
        .zip(&run.footprints)
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, (&r, &f))| (r - 1) * f)
        .sum();
    assert!(
        ag_extra > co_extra,
        "AG replica crossbars {ag_extra} vs CO {co_extra}"
    );
    // And the plan stays within the chip budget.
    assert!(run.total_crossbars() <= 300_000);
}

fn arbitrary_input(d: &mut Draw) -> AllocInput {
    let stages = d.draw("stages", 2usize..6);
    let budget = d.draw("budget", 1usize..200);
    let n_mb = d.draw("n_mb", 2usize..64);
    let compute = d.vec("compute", stages..=stages, |d| d.draw("c", 1.0f64..500.0));
    let write = d.vec("write", stages..=stages, |d| d.draw("w", 0.0f64..20.0));
    let footprints = d.vec("footprints", stages..=stages, |d| d.draw("f", 1usize..8));
    AllocInput {
        quantum_ns: compute.iter().map(|c| c / 64.0).collect(),
        compute_ns: compute,
        write_ns: write,
        crossbars_per_replica: footprints,
        unused_crossbars: budget,
        num_microbatches: n_mb,
        max_replicas: Some(64),
    }
}

#[test]
fn greedy_stays_within_budget_and_near_reference() {
    check_with(
        "greedy_stays_within_budget_and_near_reference",
        Config::cases(48),
        |d: &mut Draw| {
            let input = arbitrary_input(d);
            let g = greedy_allocate(&input);
            assert!(g.extra_crossbars(&input.crossbars_per_replica) <= input.unused_crossbars);
            assert!(g.replicas.iter().all(|&r| r >= 1));

            let r = reference_allocate(&input);
            let tg = input.pipeline_time(&g.replicas);
            let tr = input.pipeline_time(&r.replicas);
            // The greedy never loses badly to the reference search.
            assert!(tg <= tr * 1.25 + 1e-9, "greedy {tg} vs reference {tr}");
            // And any allocation is at least as good as Serial.
            let serial = input.pipeline_time(&vec![1; input.num_stages()]);
            assert!(tg <= serial + 1e-9);
        },
    );
}

#[test]
fn allocation_is_monotone_in_budget() {
    check_with(
        "allocation_is_monotone_in_budget",
        Config::cases(48),
        |d: &mut Draw| {
            let input = arbitrary_input(d);
            let mut richer = input.clone();
            richer.unused_crossbars = input.unused_crossbars * 2 + 8;
            let poor = greedy_allocate(&input);
            let rich = greedy_allocate(&richer);
            let tp = input.pipeline_time(&poor.replicas);
            let tr = input.pipeline_time(&rich.replicas);
            assert!(tr <= tp + 1e-9, "richer budget must not hurt: {tr} vs {tp}");
        },
    );
}
