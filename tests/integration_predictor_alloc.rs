//! Predictor → allocator integration: the ML Time Predictor feeds
//! Algorithm 1 and must produce near-profiling allocations; the greedy
//! allocator is property-checked against the reference search.

use gopim::runner::{run_system, Estimator, RunConfig};
use gopim::system::System;
use gopim_alloc::{greedy_allocate, reference_allocate, AllocInput};
use gopim_graph::datasets::Dataset;
use gopim_predictor::dataset_gen::generate_samples;
use gopim_predictor::eval::{prediction_accuracy, split};
use gopim_predictor::TimePredictor;
use proptest::prelude::*;

#[test]
fn ml_driven_allocation_matches_profiling_within_tolerance() {
    let config = RunConfig {
        crossbar_budget: Some(300_000),
        ..RunConfig::default()
    };
    let (n_samples, epochs) = if cfg!(debug_assertions) { (200, 25) } else { (500, 80) };
    let data = generate_samples(n_samples, 3);
    let predictor = TimePredictor::train_paper(&data, epochs, 3);
    let serial = run_system(Dataset::Ddi, System::Serial, &config);
    let exact = run_system(Dataset::Ddi, System::Gopim, &config);
    let ml_config = RunConfig {
        estimator: Estimator::Ml(predictor),
        ..config
    };
    let ml = run_system(Dataset::Ddi, System::Gopim, &ml_config);
    let s_exact = serial.makespan_ns / exact.makespan_ns;
    let s_ml = serial.makespan_ns / ml.makespan_ns;
    assert!(
        (s_ml - s_exact).abs() / s_exact < 0.3,
        "ml {s_ml} vs exact {s_exact}"
    );
}

#[test]
fn predictor_generalizes_to_unseen_workloads() {
    // Train on one sample universe, evaluate time-space accuracy on a
    // disjoint one (the paper's §VII-G generalizability check, 93.4 %).
    let (n_train, epochs) = if cfg!(debug_assertions) { (250, 30) } else { (600, 120) };
    let train_data = generate_samples(n_train, 101);
    let test_data = generate_samples(100, 999);
    let (train, _) = split(&train_data, 0.9, 1);
    let predictor = TimePredictor::train_paper(&train, epochs, 5);
    let pred_norm = predictor.predict_normalized(&test_data.x);
    let to_ns = |t: &[f64]| -> Vec<f64> {
        t.iter()
            .map(|&v| gopim_predictor::dataset_gen::SampleSet::ns_of_target(v))
            .collect()
    };
    let acc = prediction_accuracy(&to_ns(&pred_norm), &to_ns(&test_data.y));
    assert!(acc > 0.55, "unseen-workload accuracy {acc}");
}

fn arbitrary_input() -> impl Strategy<Value = AllocInput> {
    (2usize..6, 1usize..200, 2usize..64).prop_flat_map(|(stages, budget, n_mb)| {
        (
            prop::collection::vec(1.0f64..500.0, stages),
            prop::collection::vec(0.0f64..20.0, stages),
            prop::collection::vec(1usize..8, stages),
        )
            .prop_map(move |(compute, write, footprints)| AllocInput {
                quantum_ns: compute.iter().map(|c| c / 64.0).collect(),
                compute_ns: compute,
                write_ns: write,
                crossbars_per_replica: footprints,
                unused_crossbars: budget,
                num_microbatches: n_mb,
                max_replicas: Some(64),
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn greedy_stays_within_budget_and_near_reference(input in arbitrary_input()) {
        let g = greedy_allocate(&input);
        prop_assert!(g.extra_crossbars(&input.crossbars_per_replica) <= input.unused_crossbars);
        prop_assert!(g.replicas.iter().all(|&r| r >= 1));

        let r = reference_allocate(&input);
        let tg = input.pipeline_time(&g.replicas);
        let tr = input.pipeline_time(&r.replicas);
        // The greedy never loses badly to the reference search.
        prop_assert!(tg <= tr * 1.25 + 1e-9, "greedy {} vs reference {}", tg, tr);
        // And any allocation is at least as good as Serial.
        let serial = input.pipeline_time(&vec![1; input.num_stages()]);
        prop_assert!(tg <= serial + 1e-9);
    }

    #[test]
    fn allocation_is_monotone_in_budget(input in arbitrary_input()) {
        let mut richer = input.clone();
        richer.unused_crossbars = input.unused_crossbars * 2 + 8;
        let poor = greedy_allocate(&input);
        let rich = greedy_allocate(&richer);
        let tp = input.pipeline_time(&poor.replicas);
        let tr = input.pipeline_time(&rich.replicas);
        prop_assert!(tr <= tp + 1e-9, "richer budget must not hurt: {} vs {}", tr, tp);
    }
}
