//! Property tests for the canonical request key (DESIGN.md §12):
//!
//! - equal requests hash equal (trivially, but pinned);
//! - perturbing any single `RunConfig` / `WorkloadOptions` field
//!   changes the key — the key really covers every field;
//! - keys are stable across processes and builds (fixture-pinned hex:
//!   the disk tier's addresses must survive a recompile, and any
//!   intentional schema change must bump
//!   [`gopim_cache::KEY_SCHEMA_VERSION`], which shows up here as a
//!   fixture update in the same diff);
//! - collision smoke over the full fig04/fig14/fig15 sweep grids —
//!   every distinct request in the shipped experiments gets a distinct
//!   key.

use std::collections::BTreeSet;

use gopim::runner::{ablation_key, run_key, Estimator, RunConfig};
use gopim::system::{Ablation, System};
use gopim_cache::key_of;
use gopim_graph::datasets::Dataset;
use gopim_mapping::SelectivePolicy;
use gopim_pipeline::workload::{MappingKind, UpdateAccounting, WorkloadOptions};

fn base_key(config: &RunConfig) -> u128 {
    run_key(Dataset::Ddi, System::Gopim, config)
        .expect("exact estimator is cacheable")
        .as_u128()
}

#[test]
fn equal_configs_hash_equal() {
    let a = RunConfig::default();
    let b = RunConfig::default();
    assert_eq!(base_key(&a), base_key(&b));
    assert_eq!(
        key_of("t", &WorkloadOptions::default()).as_u128(),
        key_of("t", &WorkloadOptions::default()).as_u128(),
    );
}

#[test]
fn every_run_config_field_perturbation_changes_the_key() {
    let base = RunConfig::default();
    let k0 = base_key(&base);
    let perturbed: Vec<(&str, RunConfig)> = vec![
        (
            "micro_batch",
            RunConfig {
                micro_batch: 65,
                ..base.clone()
            },
        ),
        (
            "crossbar_budget",
            RunConfig {
                crossbar_budget: Some(200_000),
                ..base.clone()
            },
        ),
        (
            "profile_seed",
            RunConfig {
                profile_seed: 8,
                ..base.clone()
            },
        ),
        (
            "num_batches",
            RunConfig {
                num_batches: 2,
                ..base.clone()
            },
        ),
        (
            "slimgnn_prune_retain",
            RunConfig {
                slimgnn_prune_retain: 0.76,
                ..base.clone()
            },
        ),
        (
            "reflip_reload_rows_per_edge",
            RunConfig {
                reflip_reload_rows_per_edge: 0.51,
                ..base.clone()
            },
        ),
    ];
    let mut seen = BTreeSet::from([k0]);
    for (field, config) in &perturbed {
        let k = base_key(config);
        assert!(
            seen.insert(k),
            "perturbing {field} collided with an earlier key"
        );
    }
    // The ML estimator is uncacheable by design, not just differently
    // keyed: a trained predictor has no canonical content hash.
    let samples = gopim_predictor::dataset_gen::generate_samples(12, 1);
    let ml = RunConfig {
        estimator: Estimator::Ml(gopim_predictor::TimePredictor::train(&samples, 2, 4, 1, 1)),
        ..base
    };
    assert!(run_key(Dataset::Ddi, System::Gopim, &ml).is_none());
}

#[test]
fn every_workload_options_field_perturbation_changes_the_key() {
    let base = WorkloadOptions::default();
    let k0 = key_of("t", &base).as_u128();
    let perturbed: Vec<(&str, WorkloadOptions)> = vec![
        (
            "micro_batch",
            WorkloadOptions {
                micro_batch: 32,
                ..base.clone()
            },
        ),
        (
            "mapping",
            WorkloadOptions {
                mapping: MappingKind::Interleaved,
                ..base.clone()
            },
        ),
        (
            "selective",
            WorkloadOptions {
                selective: Some(SelectivePolicy::with_theta(0.5, 20)),
                ..base.clone()
            },
        ),
        (
            "accounting",
            WorkloadOptions {
                accounting: UpdateAccounting::SteadyEpoch,
                ..base.clone()
            },
        ),
        (
            "repeated_load_rows_per_edge",
            WorkloadOptions {
                repeated_load_rows_per_edge: 1.0,
                ..base.clone()
            },
        ),
        (
            "profile_seed",
            WorkloadOptions {
                profile_seed: 8,
                ..base.clone()
            },
        ),
    ];
    let mut seen = BTreeSet::from([k0]);
    for (field, options) in &perturbed {
        assert!(
            seen.insert(key_of("t", options).as_u128()),
            "perturbing {field} collided with an earlier key"
        );
    }
}

/// Fixture-pinned key: this exact hex was produced by the current key
/// schema. If this test fails, the key layout changed — that is only
/// acceptable together with a `KEY_SCHEMA_VERSION` bump (which itself
/// changes this value), so update the fixture in the same commit.
#[test]
fn keys_are_stable_across_processes_and_builds() {
    let k = run_key(Dataset::Ddi, System::Gopim, &RunConfig::default())
        .expect("exact estimator is cacheable");
    assert_eq!(k.to_hex(), "044b537fb7036fc4a85146228b545f80");
    let w = key_of("fixture", &WorkloadOptions::default());
    assert_eq!(w.to_hex(), "4ba7e8c93359ea3ad4b55c99a89187d6");
}

/// Collision smoke over the shipped sweep grids: fig04's full
/// dataset × system cross product, fig14/fig15's ablation grids, and a
/// micro-batch/budget spread. Every cacheable cell must key uniquely.
#[test]
fn no_collisions_across_the_shipped_sweep_grids() {
    let mut keys = BTreeSet::new();
    let mut cells = 0usize;

    let config = RunConfig::default();
    for dataset in Dataset::ALL {
        for system in System::ALL {
            let k = run_key(dataset, system, &config).expect("cacheable");
            cells += 1;
            assert!(keys.insert(k.as_u128()), "{dataset:?}/{system:?} collided");
        }
        for variant in Ablation::ALL {
            if let Some(k) = ablation_key(dataset, variant, &config) {
                cells += 1;
                assert!(keys.insert(k.as_u128()), "{dataset:?}/{variant:?} collided");
            }
        }
    }
    for micro_batch in [16, 32, 64, 128, 256] {
        for budget in [Some(100_000), Some(200_000), Some(400_000), None] {
            if micro_batch == 64 && budget.is_none() {
                // Identical to the fig04 grid's default-config cell
                // above — same request, deliberately the same key.
                continue;
            }
            let c = RunConfig {
                micro_batch,
                crossbar_budget: budget,
                ..RunConfig::default()
            };
            for system in [System::Serial, System::Gopim] {
                let k = run_key(Dataset::Ddi, system, &c).expect("cacheable");
                cells += 1;
                assert!(
                    keys.insert(k.as_u128()),
                    "b={micro_batch} budget={budget:?} {system:?} collided"
                );
            }
        }
    }
    assert_eq!(keys.len(), cells, "every distinct request keys uniquely");
}
