//! End-to-end integration: full system runs across the accelerator
//! matrix, checking the paper's headline orderings hold through the
//! whole stack (graph generation → workload → allocation → schedule →
//! energy).

use gopim::runner::{run_system, RunConfig, SystemRun};
use gopim::system::System;
use gopim_graph::datasets::Dataset;

fn config() -> RunConfig {
    RunConfig {
        crossbar_budget: Some(300_000),
        ..RunConfig::default()
    }
}

fn run_all(dataset: Dataset) -> Vec<SystemRun> {
    System::ALL
        .iter()
        .map(|&s| run_system(dataset, s, &config()))
        .collect()
}

#[test]
fn gopim_is_fastest_on_dense_and_sparse_datasets() {
    for dataset in [Dataset::Ddi, Dataset::Cora] {
        let runs = run_all(dataset);
        let gopim = runs.last().unwrap();
        for other in &runs[..runs.len() - 1] {
            assert!(
                gopim.makespan_ns <= other.makespan_ns,
                "{dataset}: GoPIM {} vs {} {}",
                gopim.makespan_ns,
                other.system_name,
                other.makespan_ns
            );
        }
    }
}

#[test]
fn every_pipelined_system_beats_serial() {
    let runs = run_all(Dataset::Ddi);
    let serial = runs[0].makespan_ns;
    for run in &runs[1..] {
        assert!(
            run.makespan_ns < serial,
            "{} {} vs Serial {}",
            run.system_name,
            run.makespan_ns,
            serial
        );
    }
}

#[test]
fn gopim_saves_energy_and_reflip_saves_least_on_dense_graphs() {
    let runs = run_all(Dataset::Ddi);
    let serial = runs[0].energy_nj();
    let reflip = &runs[3];
    let gopim = runs.last().unwrap();
    assert!(gopim.energy_nj() < serial);
    // ReFlip's repeated loading makes it the least efficient system
    // (the paper measures it *above* Serial on dense graphs).
    for run in &runs[4..] {
        assert!(
            reflip.energy_nj() > run.energy_nj(),
            "ReFlip {} vs {} {}",
            reflip.energy_nj(),
            run.system_name,
            run.energy_nj()
        );
    }
}

#[test]
fn two_layer_model_pipelines_as_eight_named_stages() {
    // §IV-A: the training pipeline unrolls an L-layer GCN into 4L
    // stages — CO/AG per forward layer, then the loss/gradient backward
    // passes. ddi's 2-layer model must surface exactly these 8 names.
    let run = run_system(Dataset::Ddi, System::Gopim, &config());
    assert_eq!(run.replicas.len(), 8);
    assert_eq!(
        run.stage_names,
        vec!["CO1", "AG1", "CO2", "AG2", "LC2", "GC2", "LC1", "GC1"]
    );
}

#[test]
fn runs_are_deterministic() {
    let a = run_system(Dataset::Ddi, System::Gopim, &config());
    let b = run_system(Dataset::Ddi, System::Gopim, &config());
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.replicas, b.replicas);
    assert_eq!(a.energy_nj(), b.energy_nj());
}

#[test]
fn occupancy_never_exceeds_the_budget() {
    for &system in &System::ALL {
        let run = run_system(Dataset::Ddi, system, &config());
        assert!(
            run.total_crossbars() <= 300_000,
            "{}: {}",
            run.system_name,
            run.total_crossbars()
        );
    }
}

#[test]
fn smaller_chips_cannot_be_faster() {
    let small = RunConfig {
        crossbar_budget: Some(50_000),
        ..RunConfig::default()
    };
    let large = RunConfig {
        crossbar_budget: Some(500_000),
        ..RunConfig::default()
    };
    let a = run_system(Dataset::Ddi, System::Gopim, &small);
    let b = run_system(Dataset::Ddi, System::Gopim, &large);
    assert!(b.makespan_ns <= a.makespan_ns * 1.0001);
}

#[test]
fn micro_batch_sweep_runs_through_the_whole_stack() {
    for b in [32, 64, 128] {
        let cfg = RunConfig {
            micro_batch: b,
            ..config()
        };
        let run = run_system(Dataset::Cora, System::Gopim, &cfg);
        assert!(run.makespan_ns > 0.0);
        assert_eq!(run.stage_names.len(), 12); // 3-layer GCN
    }
}
