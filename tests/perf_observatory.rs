//! Integration coverage for the perf observatory (PR 8): bench-diff
//! against the repo's real BENCH_pr*.json trajectory files, the span
//! aggregation → manifest → validation pipeline, and the quantile
//! plumbing that feeds both.

use gopim::benchdiff::{
    diff, latest_by_id, parse_records, trajectory, BenchDiffArgs, DiffOptions, Verdict,
};
use gopim_obs::aggregate::aggregate;
use gopim_obs::export::{parse_json, Json};
use gopim_obs::manifest::{render_manifest, validate_manifest};
use gopim_obs::metrics::Registry;
use gopim_obs::span::{SpanEvent, WALL_PID};

fn bench_file(name: &str) -> String {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn committed_bench_trajectories_parse_and_diff() {
    let pr2 = parse_records(&bench_file("BENCH_pr2.json")).expect("BENCH_pr2 parses");
    let pr7 = parse_records(&bench_file("BENCH_pr7.json")).expect("BENCH_pr7 parses");
    assert!(!pr2.is_empty() && !pr7.is_empty());
    assert!(
        pr2.iter().all(|r| r.median_ns > 0.0 && r.samples >= 1),
        "sane records"
    );

    // The acceptance command: the id sets are disjoint, so every row
    // must still appear, classified as only-old / only-new.
    let report = diff(
        &latest_by_id(&pr2, None),
        &latest_by_id(&pr7, None),
        DiffOptions::default(),
    );
    assert!(!report.rows.is_empty());
    assert!(report
        .rows
        .iter()
        .all(|r| matches!(r.verdict, Verdict::OnlyOld | Verdict::OnlyNew)));
    let human = report.render_human();
    assert!(human.contains("| id") && human.contains("verdict"));
    assert!(human.contains("only-old") && human.contains("only-new"));

    // Phase filtering selects pr2's 'before' records only.
    let before = latest_by_id(&pr2, Some("before"));
    assert!(!before.is_empty());
    assert!(before.len() <= pr2.len());
}

#[test]
fn pr2_phases_diff_as_an_improvement() {
    // PR 2's own before → after-t1 phase change contained real kernel
    // speedups; the overlap test must find at least one improvement
    // and no regressions beyond a generous band.
    let pr2 = parse_records(&bench_file("BENCH_pr2.json")).expect("parse");
    let report = diff(
        &latest_by_id(&pr2, Some("before")),
        &latest_by_id(&pr2, Some("after-t1")),
        DiffOptions::default(),
    );
    let improvements = report
        .rows
        .iter()
        .filter(|r| r.verdict == Verdict::Improvement)
        .count();
    assert!(
        improvements >= 1,
        "PR2 recorded kernel wins:\n{}",
        report.render_human()
    );
}

#[test]
fn trajectory_mode_spans_the_pr_sequence() {
    let files: Vec<(String, String)> = ["BENCH_pr2.json", "BENCH_pr3.json", "BENCH_pr7.json"]
        .iter()
        .map(|name| (name.to_string(), bench_file(name)))
        .collect();
    let text = trajectory(&files).expect("trajectory renders");
    assert!(text.contains("BENCH_pr2.json") && text.contains("BENCH_pr7.json"));
    assert!(text.contains("file(s)"));
    // Disjoint ids show as '-' cells somewhere.
    assert!(text.contains(" - "));
}

#[test]
fn bench_diff_json_round_trips_through_the_parser() {
    let pr2 = parse_records(&bench_file("BENCH_pr2.json")).expect("parse");
    let report = diff(
        &latest_by_id(&pr2, Some("before")),
        &latest_by_id(&pr2, Some("after-t4")),
        DiffOptions {
            tolerance: Some(0.35),
            ..DiffOptions::default()
        },
    );
    let doc = parse_json(&report.render_json()).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("gopim.bench_diff/v1")
    );
    let rows = doc.get("rows").and_then(Json::as_arr).expect("rows array");
    assert_eq!(rows.len(), report.rows.len());
    for row in rows {
        let verdict = row.get("verdict").and_then(Json::as_str).expect("verdict");
        assert!(
            [
                "regression",
                "improvement",
                "neutral",
                "only-old",
                "only-new"
            ]
            .contains(&verdict),
            "unexpected verdict {verdict}"
        );
    }
}

#[test]
fn ratchet_args_fail_only_on_regression() {
    let argv: Vec<String> = ["--ratchet", "a", "b"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let args = BenchDiffArgs::parse(&argv).expect("parse");
    assert!(args.options().tolerance.is_some(), "ratchet implies a band");
}

/// Synthetic spans → aggregate → manifest → validator, with no global
/// collector state (everything flows through explicit values).
#[test]
fn span_aggregation_flows_into_a_schema_valid_manifest() {
    let ev = |name: &str, tid: u64, start: u64, dur: u64| SpanEvent {
        pid: WALL_PID,
        tid,
        name: name.into(),
        cat: "span",
        start_ns: start,
        dur_ns: dur,
        args: Vec::new(),
    };
    // A two-level tree on one lane plus repeated leaf spans on another,
    // shaped like runner.run_system wrapping linalg.matmul calls.
    let mut events = vec![
        ev("runner.run_system/ddi", 1, 0, 10_000),
        ev("linalg.matmul", 1, 1_000, 3_000),
        ev("linalg.matmul", 1, 5_000, 2_000),
    ];
    for i in 0..40u64 {
        events.push(ev("linalg.matmul", 2, i * 100, 60 + i));
    }
    let agg = aggregate(&events, 3);

    assert_eq!(agg.spans, events.len());
    let runner = &agg.labels["runner.run_system/ddi"];
    assert_eq!(runner.total_ns, 10_000);
    assert_eq!(runner.self_ns, 5_000, "two matmul children subtracted");
    let matmul = &agg.labels["linalg.matmul"];
    assert_eq!(matmul.count, 42);
    let (p50, p95, p99) = (
        matmul.durations.quantile(0.50),
        matmul.durations.quantile(0.95),
        matmul.durations.quantile(0.99),
    );
    assert!(
        p50 > 0.0 && p50 <= p95 && p95 <= p99,
        "({p50}, {p95}, {p99})"
    );
    assert_eq!(
        agg.folded["runner.run_system/ddi;linalg.matmul"], 5_000,
        "nested matmul self time folds under the runner frame"
    );

    let registry = Registry::new();
    registry.counter("cache.hits").add(11);
    let manifest = render_manifest("gopim compare ddi", &agg, &registry.snapshot());
    let labels = validate_manifest(&manifest).expect("schema-valid manifest");
    assert_eq!(labels, 2);
    let doc = parse_json(&manifest).expect("parses");
    assert_eq!(
        doc.get("spans")
            .and_then(|s| s.get("dropped"))
            .and_then(Json::as_num),
        Some(3.0)
    );
    let matmul_doc = doc
        .get("spans")
        .and_then(|s| s.get("labels"))
        .and_then(|l| l.get("linalg.matmul"))
        .expect("matmul label");
    let p50_doc = matmul_doc
        .get("p50_ns")
        .and_then(Json::as_num)
        .expect("p50");
    let p99_doc = matmul_doc
        .get("p99_ns")
        .and_then(Json::as_num)
        .expect("p99");
    assert!(
        p50_doc > 0.0 && p50_doc <= p99_doc,
        "nonzero ordered quantiles in the artifact"
    );
}

#[test]
fn old_bench_records_without_group_stay_parseable() {
    // The pre-PR8 compact record shape (no "group" key) must keep
    // parsing, with the group recovered from the id prefix.
    let line = "{\"id\":\"linalg/matmul/64x64\",\"median_ns\":62396.968,\"mad_ns\":2019.054,\
                \"min_ns\":59201.903,\"max_ns\":69440.752,\"samples\":15,\"iters_per_sample\":777}";
    let records = parse_records(line).expect("old shape parses");
    assert_eq!(records[0].group, "linalg");
    assert_eq!(records[0].samples, 15);

    // And the new runner emits group + samples explicitly.
    let s = gopim_testkit::bench::Summary {
        id: "linalg/matmul/64x64".into(),
        group: "linalg".into(),
        median_ns: 100.0,
        mad_ns: 1.0,
        min_ns: 99.0,
        max_ns: 102.0,
        samples: 15,
        iters_per_sample: 10,
        metrics: Vec::new(),
    };
    let records = parse_records(&s.to_json()).expect("new shape parses");
    assert_eq!(records[0].group, "linalg");
    assert_eq!(records[0].samples, 15);
}
