//! Regression test for the `HashMap` → `BTreeMap` determinism fix:
//! the id compaction in `gopim_graph::io::read_edge_list` and the
//! per-group pacing in `gopim_pipeline::workload` must produce
//! bit-identical outputs in two *separate OS processes*. `HashMap`'s
//! `RandomState` draws fresh entropy per instance, so any unordered
//! iteration on these paths shows up here as a digest mismatch even
//! when a single-process rerun happens to agree.

use gopim_graph::datasets::ModelConfig;
use gopim_graph::io::read_edge_list;
use gopim_pipeline::{GcnWorkload, WorkloadOptions};

const CHILD_ENV: &str = "GOPIM_DET_DIGEST_OUT";
const TEST_NAME: &str = "io_and_workload_outputs_are_bit_identical_across_processes";

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Parses a fixed synthetic edge list with sparse shuffled u64 ids
/// (exercising the id-compaction map), builds the pacing workload on
/// top of it, and folds every structural field and f64 bit pattern
/// into one hex digest.
fn digest() -> String {
    let mut text = String::new();
    let mut x = 0x243f_6a88_85a3_08d3u64;
    let mut prev: Option<u64> = None;
    for _ in 0..600 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let id = x >> 24;
        if let Some(p) = prev {
            if p != id {
                text.push_str(&format!("{p} {id}\n"));
            }
        }
        prev = Some(id);
    }
    let graph = read_edge_list(text.as_bytes()).expect("generated edge list is well-formed");

    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv(&mut h, &(graph.num_vertices() as u64).to_le_bytes());
    fnv(&mut h, &(graph.num_edges() as u64).to_le_bytes());
    for v in 0..graph.num_vertices() {
        for &n in graph.neighbors(v) {
            fnv(&mut h, &n.to_le_bytes());
        }
    }

    let model = ModelConfig {
        num_layers: 2,
        learning_rate: 0.01,
        dropout: 0.0,
        input_channels: 32,
        hidden_channels: 64,
        output_channels: 16,
    };
    let options = WorkloadOptions {
        micro_batch: 32,
        ..WorkloadOptions::default()
    };
    let wl = GcnWorkload::build_custom("determinism", &graph.to_degree_profile(), &model, &options);
    for (i, stage) in wl.stages().iter().enumerate() {
        fnv(&mut h, &stage.compute_ns.to_bits().to_le_bytes());
        for j in 0..wl.num_microbatches() {
            fnv(&mut h, &wl.write_ns(i, j).to_bits().to_le_bytes());
        }
    }
    format!("{h:016x}")
}

#[test]
fn io_and_workload_outputs_are_bit_identical_across_processes() {
    let mine = digest();
    if let Ok(path) = std::env::var(CHILD_ENV) {
        // Child mode: report the digest and stop before re-spawning.
        std::fs::write(path, &mine).expect("write child digest");
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let pid = std::process::id();
    for run in 0..2 {
        let out = std::env::temp_dir().join(format!("gopim_det_{pid}_{run}.txt"));
        let status = std::process::Command::new(&exe)
            .arg("--exact")
            .arg(TEST_NAME)
            .env(CHILD_ENV, &out)
            .status()
            .expect("spawn child test process");
        assert!(status.success(), "child process run {run} failed");
        let theirs = std::fs::read_to_string(&out).expect("read child digest");
        let _ = std::fs::remove_file(&out);
        assert_eq!(
            theirs, mine,
            "graph::io / pipeline::workload digest differs across processes (run {run})"
        );
    }
}
