//! Hardware-numerics integration: a GCN layer executed on the
//! functional (bit-accurate) crossbar model must match the
//! floating-point reference within quantization error — demonstrating
//! that the accelerator the performance model describes actually
//! computes GCN kernels.

use gopim_gcn::aggregate::NormalizedAdjacency;
use gopim_graph::generate::planted_partition;
use gopim_linalg::init::xavier_uniform;
use gopim_linalg::Matrix;
use gopim_reram::spec::AcceleratorSpec;
use gopim_reram::tiled::TiledMatrix;

/// Runs the Combination stage (`C = X · W`) through tiled crossbars:
/// the weight matrix is programmed, each vertex's feature row streams
/// through as an input vector. Quantization full-scales are set to the
/// data's actual ranges, as a real compiler would.
fn combination_on_hardware(spec: &AcceleratorSpec, x: &Matrix, w: &Matrix) -> Matrix {
    let weights: Vec<Vec<f64>> = (0..w.rows()).map(|r| w.row(r).to_vec()).collect();
    let w_range = w
        .as_slice()
        .iter()
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1e-9);
    let x_range = x
        .as_slice()
        .iter()
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1e-9);
    let tiled = TiledMatrix::program(spec, &weights, w_range);
    let mut out = Matrix::zeros(x.rows(), w.cols());
    for v in 0..x.rows() {
        let y = tiled.mvm(x.row(v), x_range);
        out.row_mut(v).copy_from_slice(&y);
    }
    out
}

#[test]
fn paper_latencies_derive_from_published_cycle_counts() {
    // Table II anchors: 16-bit values through 2-bit DACs take 8 input
    // cycles of 29.31 ns (= 234.48 ns per MVM issue); programming a row
    // of 2-bit cells takes 8 write cycles of 50.88 ns (= 407.04 ns).
    let spec = AcceleratorSpec::paper();
    assert_eq!(spec.read_latency_ns, 29.31);
    assert_eq!(spec.write_latency_ns, 50.88);
    assert_eq!(spec.input_cycles(), 8);
    assert_eq!(spec.write_cycles(), 8);
    assert!((spec.mvm_latency_ns() - 234.48).abs() < 1e-9);
    assert!((spec.row_write_latency_ns() - 407.04).abs() < 1e-9);
    // 16 M crossbars of 64×64 2-bit cells ⇒ the paper's 16 GiB chip.
    assert_eq!(spec.total_crossbars(), 16_777_216);
    assert_eq!(spec.total_bytes(), 16 * (1u64 << 30));
}

#[test]
fn combination_stage_matches_float_within_quantization() {
    let spec = AcceleratorSpec::paper();
    let x = xavier_uniform(40, 96, 1); // 40 vertices, 96-dim features
    let w = xavier_uniform(96, 80, 2); // spans 2×2 crossbar tiles
    let hw = combination_on_hardware(&spec, &x, &w);
    let float = x.matmul(&w);
    let mut max_err: f64 = 0.0;
    for (a, b) in hw.as_slice().iter().zip(float.as_slice()) {
        max_err = max_err.max((a - b).abs());
    }
    let scale = float.frobenius_norm() / (float.as_slice().len() as f64).sqrt();
    assert!(
        max_err < 0.05 * scale.max(0.01),
        "max error {max_err} vs rms magnitude {scale}"
    );
}

#[test]
fn full_layer_on_hardware_preserves_gcn_semantics() {
    // Combination on crossbars, then the (digital) aggregation: the
    // result must stay close to the all-float layer output.
    let spec = AcceleratorSpec::paper();
    let (graph, _) = planted_partition(60, 3, 8.0, 6.0, 3);
    let norm = NormalizedAdjacency::new(&graph);
    let x = xavier_uniform(60, 64, 4);
    let w = xavier_uniform(64, 32, 5);

    let hw_combined = combination_on_hardware(&spec, &x, &w);
    let hw_layer = norm.apply(&graph, &hw_combined);
    let float_layer = norm.apply(&graph, &x.matmul(&w));

    let diff: f64 = hw_layer
        .as_slice()
        .iter()
        .zip(float_layer.as_slice())
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    let reference = float_layer.frobenius_norm().max(1e-9);
    assert!(
        diff / reference < 0.01,
        "relative layer error {}",
        diff / reference
    );
}

#[test]
fn quantized_inference_preserves_trained_accuracy() {
    // Train a small GCN in floating point, then run inference with the
    // Combination stages executed on bit-accurate crossbars: the 16-bit
    // fixed-point analog path must not cost meaningful accuracy
    // (the assumption behind running GCNs on ReRAM at all).
    use gopim_gcn::train::{synthetic_features, train_gcn, TrainOptions};
    use gopim_linalg::loss::accuracy as acc_of;

    let (graph, labels) = planted_partition(200, 3, 10.0, 8.0, 7);
    let mut opts = TrainOptions::quick_test();
    opts.epochs = 40;
    let report = train_gcn(&graph, &labels, &opts);
    assert!(report.test_accuracy > 0.6, "{report:?}");

    // Re-derive the same features and retrain a standalone model whose
    // weights we can extract through forward passes: emulate by
    // comparing float vs crossbar MVM on the trained feature transform.
    let num_classes = 3;
    let x = synthetic_features(&labels, num_classes, 8, opts.seed ^ 0xfea7);
    let spec = AcceleratorSpec::paper();
    let norm = NormalizedAdjacency::new(&graph);

    // A single-layer GCN trained quickly, then evaluated both ways.
    let mut model = gopim_gcn::GcnModel::new(&[x.cols(), num_classes], 0.05, 3);
    let mask = vec![true; graph.num_vertices()];
    for e in 0..40 {
        model.train_epoch(&graph, &norm, &x, &labels, &mask, None, e);
    }
    let float_logits = model.forward(&graph, &norm, &x);
    let float_acc = acc_of(&float_logits, &labels);
    assert!(float_acc > 0.6, "float accuracy {float_acc}");

    // Hardware path: the Combination (X·W) through tiled crossbars.
    // Recover W by probing the model with unit vectors.
    let dim = x.cols();
    let eye = Matrix::identity(dim);
    let single = gopim_graph::CsrGraph::empty(dim);
    let norm_eye = NormalizedAdjacency::new(&single);
    let w_probe = model.forward(&single, &norm_eye, &eye); // Â = I ⇒ W
    let hw_combined = combination_on_hardware(&spec, &x, &w_probe);
    let hw_logits = norm.apply(&graph, &hw_combined);
    let hw_acc = acc_of(&hw_logits, &labels);
    assert!(
        (float_acc - hw_acc).abs() < 0.02,
        "float {float_acc} vs hardware {hw_acc}"
    );
}

#[test]
fn feature_matrix_mapping_matches_aggregation_footprint() {
    // Mapping a feature matrix for Aggregation occupies exactly the
    // crossbars the allocator budgets for it.
    let spec = AcceleratorSpec::paper();
    let features: Vec<Vec<f64>> = (0..100)
        .map(|v| {
            (0..96)
                .map(|d| ((v * 96 + d) as f64 * 0.01).sin() * 0.5)
                .collect()
        })
        .collect();
    let tiled = TiledMatrix::program(&spec, &features, 1.0);
    assert_eq!(
        tiled.num_crossbars(),
        gopim_reram::tiling::crossbars_for_matrix(&spec, 100, 96)
    );
}
