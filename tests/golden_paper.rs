//! Golden regression tests pinning the paper-derived numbers that the
//! figure/table binaries print, so a refactor that silently shifts a
//! published quantity fails `cargo test` instead of shipping.
//!
//! Snapshots live in `tests/golden/`; regenerate intentionally with
//! `GOPIM_GOLDEN=update cargo test -q` and review the diff.

use gopim::experiments::fig04;
use gopim::runner::RunConfig;
use gopim_alloc::{greedy_allocate, AllocInput};
use gopim_graph::datasets::Dataset;
use gopim_reram::spec::AcceleratorSpec;
use gopim_testkit::golden::{self, Report};

/// Table II: the published accelerator configuration and the
/// quantities derived from it. The hard asserts pin the four numbers
/// the paper states verbatim; the snapshot pins everything else.
#[test]
fn golden_table02_accelerator_spec() {
    let spec = AcceleratorSpec::paper();

    // Published verbatim in Table II.
    assert_eq!(spec.crossbar_rows, 64);
    assert_eq!(spec.crossbar_cols, 64);
    assert_eq!(spec.bits_per_cell, 2);
    assert_eq!(spec.value_bits, 16);
    assert_eq!(spec.read_latency_ns, 29.31);
    assert_eq!(spec.write_latency_ns, 50.88);

    let mut r = Report::new();
    r.section("published")
        .scalar("crossbar_rows", spec.crossbar_rows)
        .scalar("crossbar_cols", spec.crossbar_cols)
        .scalar("bits_per_cell", spec.bits_per_cell)
        .scalar("value_bits", spec.value_bits)
        .scalar("dac_bits", spec.dac_bits)
        .scalar("adc_bits", spec.adc_bits)
        .scalar("crossbars_per_pe", spec.crossbars_per_pe)
        .scalar("pes_per_tile", spec.pes_per_tile)
        .scalar("tiles_per_chip", spec.tiles_per_chip)
        .scalar("read_latency_ns", spec.read_latency_ns)
        .scalar("write_latency_ns", spec.write_latency_ns)
        .blank()
        .section("derived")
        .scalar("total_crossbars", spec.total_crossbars())
        .scalar("total_gib", spec.total_bytes() / (1 << 30))
        .scalar("input_cycles_per_mvm", spec.input_cycles())
        .scalar("write_cycles_per_row", spec.write_cycles())
        .scalar("mvm_latency_ns", format!("{:.2}", spec.mvm_latency_ns()))
        .scalar(
            "row_write_latency_ns",
            format!("{:.2}", spec.row_write_latency_ns()),
        );
    golden::check("table02_accelerator_spec", &r.render());
}

/// Table III: the dataset catalog (published stats) plus the degree
/// statistics our seeded synthetic stand-ins realize.
#[test]
fn golden_table03_dataset_catalog() {
    let mut r = Report::new();
    r.section("table03_datasets");
    let rows: Vec<Vec<String>> = Dataset::ALL
        .iter()
        .map(|&d| {
            let s = d.stats();
            let p = d.profile(7);
            vec![
                s.name.to_string(),
                format!("{:?}", s.task),
                s.num_vertices.to_string(),
                s.num_edges.to_string(),
                format!("{:.1}", s.avg_degree),
                s.feature_dim.to_string(),
                p.num_edges().to_string(),
                format!("{:.2}", p.avg_degree()),
            ]
        })
        .collect();
    r.table(
        &[
            "dataset",
            "task",
            "vertices",
            "edges_paper",
            "avg_deg_paper",
            "feat_dim",
            "edges_ours",
            "avg_deg_ours",
        ],
        &rows,
    );
    // The realized degree must track the published one to within a few
    // percent — that's the DESIGN.md §2 substitution contract.
    for d in Dataset::ALL {
        let s = d.stats();
        let realized = d.profile(7).avg_degree();
        let rel = (realized - s.avg_degree).abs() / s.avg_degree;
        assert!(
            rel < 0.10,
            "{}: realized avg degree {realized:.2} vs published {:.1}",
            s.name,
            s.avg_degree
        );
    }
    golden::check("table03_dataset_catalog", &r.render());
}

/// Fig. 4: per-stage idle fractions of the forward pass under a
/// SlimGNN-style pipeline. The paper's observation — Combination
/// crossbars idle >97 % — plus the exact fractions as a snapshot.
#[test]
fn golden_fig04_idle_fractions() {
    let config = RunConfig {
        crossbar_budget: Some(200_000),
        ..RunConfig::default()
    };
    let rows = fig04::run(&config, &[Dataset::Ddi, Dataset::Cora]);
    let mut r = Report::new();
    r.section("fig04_idle_fractions");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.dataset.clone(),
                row.stage.clone(),
                row.kind.clone(),
                format!("{:.6}", row.idle_fraction),
            ]
        })
        .collect();
    r.table(&["dataset", "stage", "kind", "idle_fraction"], &table);
    for row in rows.iter().filter(|row| row.kind.starts_with("CO")) {
        assert!(
            row.idle_fraction > 0.9,
            "Combination stage not idle-dominated: {row:?}"
        );
    }
    golden::check("fig04_idle_fractions", &r.render());
}

/// Fig. 5: the worked two-stage allocation example (times 1:6, three
/// spare crossbars). The paper reports ~65.4 % improvement for the
/// fixed 1:2 split and ~69.2 % for putting every replica on the long
/// stage; the greedy allocator must find the latter.
#[test]
fn golden_fig05_allocation_example() {
    let input = AllocInput {
        compute_ns: vec![1.0, 6.0],
        write_ns: vec![0.0, 0.0],
        quantum_ns: vec![0.01, 0.01],
        crossbars_per_replica: vec![1, 1],
        unused_crossbars: 3,
        num_microbatches: 4,
        max_replicas: None,
    };
    let greedy = greedy_allocate(&input).replicas;
    assert_eq!(
        greedy,
        vec![1, 4],
        "greedy must put all replicas on stage 2"
    );

    let base = input.pipeline_time(&[1, 1]);
    let cases: Vec<(&str, Vec<usize>)> = vec![
        ("no_replicas", vec![1, 1]),
        ("fixed_1to2_split", vec![2, 3]),
        ("all_to_long_stage", vec![1, 4]),
        ("greedy_alg1", greedy.clone()),
    ];
    let mut r = Report::new();
    r.section("fig05_two_stage_example");
    let table: Vec<Vec<String>> = cases
        .iter()
        .map(|(name, replicas)| {
            let t = input.pipeline_time(replicas);
            vec![
                name.to_string(),
                format!("{replicas:?}").replace(' ', ""),
                format!("{t:.4}"),
                format!("{:.4}", 1.0 - t / base),
            ]
        })
        .collect();
    r.table(
        &["case", "replicas", "pipeline_time", "improvement"],
        &table,
    );

    let improvement = |replicas: &[usize]| 1.0 - input.pipeline_time(replicas) / base;
    let fixed = improvement(&[2, 3]);
    let all_long = improvement(&[1, 4]);
    assert!(
        (fixed - 0.654).abs() < 0.05,
        "fixed-split improvement {fixed:.3} drifted from the paper's ~65.4 %"
    );
    assert!(
        (all_long - 0.692).abs() < 0.05,
        "all-to-long improvement {all_long:.3} drifted from the paper's ~69.2 %"
    );
    assert!(all_long > fixed);
    golden::check("fig05_allocation_example", &r.render());
}
