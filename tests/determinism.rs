//! Determinism guarantees: the whole simulator is a pure function of
//! its inputs and seeds. Two runs with the same configuration must
//! agree bit-for-bit — this is what makes golden snapshots and seed
//! replay (GOPIM_PT_SEED) meaningful at all.

use gopim_graph::datasets::Dataset;
use gopim_pipeline::{simulate, GcnWorkload, PipelineOptions, WorkloadOptions};
use gopim_testkit::{mix_seed, SeedableRng, SmallRng};

/// `simulate` twice on the same workload: the `PipelineResult`s must
/// be identical, including every f64 bit pattern.
#[test]
fn simulate_is_bit_identical_across_runs() {
    let wl = GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default());
    let replicas = vec![3; wl.stages().len()];
    for opts in [
        PipelineOptions::serial(),
        PipelineOptions::intra_only(),
        PipelineOptions::default(),
    ] {
        let a = simulate(&wl, &replicas, &opts);
        let b = simulate(&wl, &replicas, &opts);
        assert_eq!(a, b, "non-deterministic simulate under {opts:?}");
        assert_eq!(
            a.makespan_ns.to_bits(),
            b.makespan_ns.to_bits(),
            "makespan differs at the bit level under {opts:?}"
        );
    }
}

/// Building the workload twice from the same (dataset, options) pair
/// — including the seeded synthetic profile — must produce the same
/// stage timings down to the last bit, and simulating each copy must
/// agree.
#[test]
fn workload_build_is_deterministic_for_a_fixed_seed() {
    let opts = WorkloadOptions {
        profile_seed: 1234,
        ..WorkloadOptions::default()
    };
    let a = GcnWorkload::build(Dataset::Ddi, &opts);
    let b = GcnWorkload::build(Dataset::Ddi, &opts);

    assert_eq!(a.stages().len(), b.stages().len());
    assert_eq!(a.num_microbatches(), b.num_microbatches());
    for (i, (sa, sb)) in a.stages().iter().zip(b.stages().iter()).enumerate() {
        assert_eq!(
            sa.compute_ns.to_bits(),
            sb.compute_ns.to_bits(),
            "stage {i} compute_ns differs between identical builds"
        );
        assert_eq!(
            sa.write_ns.to_bits(),
            sb.write_ns.to_bits(),
            "stage {i} write_ns differs between identical builds"
        );
        assert_eq!(sa.crossbars_per_replica, sb.crossbars_per_replica);
    }
    for j in 0..a.num_microbatches() {
        for i in 0..a.stages().len() {
            assert_eq!(a.write_ns(i, j).to_bits(), b.write_ns(i, j).to_bits());
        }
    }

    let replicas = vec![2; a.stages().len()];
    let ra = simulate(&a, &replicas, &PipelineOptions::default());
    let rb = simulate(&b, &replicas, &PipelineOptions::default());
    assert_eq!(ra, rb, "simulate of identical builds diverged");
}

/// Different profile seeds actually change the synthetic profile —
/// determinism is seeding, not a constant function.
#[test]
fn different_seeds_produce_different_workloads() {
    let a = GcnWorkload::build(
        Dataset::Ddi,
        &WorkloadOptions {
            profile_seed: 1,
            ..WorkloadOptions::default()
        },
    );
    let b = GcnWorkload::build(
        Dataset::Ddi,
        &WorkloadOptions {
            profile_seed: 2,
            ..WorkloadOptions::default()
        },
    );
    let differs = a
        .stages()
        .iter()
        .zip(b.stages().iter())
        .any(|(sa, sb)| sa.compute_ns.to_bits() != sb.compute_ns.to_bits());
    assert!(differs, "profile_seed has no effect on stage timings");
}

/// The parallel runtime's contract: the pool size must not change a
/// single bit anywhere. One snapshot covers all three hot paths —
/// dense matmul, sparse propagation, and a fanned-out DES sweep —
/// computed under a 1-thread pool and an 8-thread pool.
///
/// (`scripts/verify.sh` covers the environment side by running the
/// whole suite under `GOPIM_THREADS=1` and again at the default.)
#[test]
fn thread_count_never_changes_any_bits() {
    use gopim::runner::{run_systems, RunConfig};
    use gopim::system::System;
    use gopim_gcn::aggregate::{MeanAggregator, NormalizedAdjacency, Propagation};
    use gopim_graph::CsrGraph;
    use gopim_linalg::Matrix;
    use gopim_par::Pool;

    let snapshot = || {
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        // Dense matmul, both kernel paths (wide and narrow output).
        let a = Matrix::from_vec(
            37,
            29,
            (0..37 * 29).map(|i| ((i as f64) * 0.61).sin()).collect(),
        );
        let wide = Matrix::from_vec(
            29,
            23,
            (0..29 * 23).map(|i| ((i as f64) * 0.27).cos()).collect(),
        );
        let narrow = Matrix::from_vec(29, 2, (0..58).map(|i| ((i as f64) * 0.19).sin()).collect());
        let mut mm = bits(&a.matmul(&wide));
        mm.extend(bits(&a.matmul(&narrow)));
        // Sparse propagation (both operators).
        let g = CsrGraph::from_edges(40, &(0..39).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let x = Matrix::from_vec(40, 6, (0..240).map(|i| ((i as f64) * 0.43).sin()).collect());
        let mut prop = bits(&NormalizedAdjacency::new(&g).propagate(&g, &x));
        prop.extend(bits(&MeanAggregator::new().propagate(&g, &x)));
        // A fanned-out DES sweep.
        let config = RunConfig {
            crossbar_budget: Some(200_000),
            ..RunConfig::default()
        };
        let sweep = [
            (Dataset::Ddi, System::Serial),
            (Dataset::Ddi, System::Gopim),
            (Dataset::Cora, System::Gopim),
        ];
        // Bypass the run cache: this test exists to observe real
        // simulations at both thread counts, not one simulation and a
        // cache hit (tests/cache_differential.rs covers the cached
        // path).
        let des: Vec<u64> = gopim_cache::with_disabled(|| run_systems(&sweep, &config))
            .iter()
            .map(|r| r.makespan_ns.to_bits())
            .collect();
        (mm, prop, des)
    };
    let serial = Pool::new(1).install(snapshot);
    let par = Pool::new(8).install(snapshot);
    assert_eq!(serial.0, par.0, "matmul bits changed with thread count");
    assert_eq!(
        serial.1, par.1,
        "propagation bits changed with thread count"
    );
    assert_eq!(serial.2, par.2, "DES sweep bits changed with thread count");
}

/// The testkit's own PRNG: same seed ⇒ same stream, `mix_seed` keeps
/// per-case streams decorrelated but reproducible.
#[test]
fn testkit_rng_streams_replay_exactly() {
    let mut a = SmallRng::seed_from_u64(0xD5EED);
    let mut b = SmallRng::seed_from_u64(0xD5EED);
    for _ in 0..1000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    assert_eq!(mix_seed(42, 7), mix_seed(42, 7));
    assert_ne!(mix_seed(42, 7), mix_seed(42, 8));
}
