//! Determinism guarantees: the whole simulator is a pure function of
//! its inputs and seeds. Two runs with the same configuration must
//! agree bit-for-bit — this is what makes golden snapshots and seed
//! replay (GOPIM_PT_SEED) meaningful at all.

use gopim_graph::datasets::Dataset;
use gopim_pipeline::{simulate, GcnWorkload, PipelineOptions, WorkloadOptions};
use gopim_testkit::{mix_seed, SeedableRng, SmallRng};

/// `simulate` twice on the same workload: the `PipelineResult`s must
/// be identical, including every f64 bit pattern.
#[test]
fn simulate_is_bit_identical_across_runs() {
    let wl = GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default());
    let replicas = vec![3; wl.stages().len()];
    for opts in [
        PipelineOptions::serial(),
        PipelineOptions::intra_only(),
        PipelineOptions::default(),
    ] {
        let a = simulate(&wl, &replicas, &opts);
        let b = simulate(&wl, &replicas, &opts);
        assert_eq!(a, b, "non-deterministic simulate under {opts:?}");
        assert_eq!(
            a.makespan_ns.to_bits(),
            b.makespan_ns.to_bits(),
            "makespan differs at the bit level under {opts:?}"
        );
    }
}

/// Building the workload twice from the same (dataset, options) pair
/// — including the seeded synthetic profile — must produce the same
/// stage timings down to the last bit, and simulating each copy must
/// agree.
#[test]
fn workload_build_is_deterministic_for_a_fixed_seed() {
    let opts = WorkloadOptions {
        profile_seed: 1234,
        ..WorkloadOptions::default()
    };
    let a = GcnWorkload::build(Dataset::Ddi, &opts);
    let b = GcnWorkload::build(Dataset::Ddi, &opts);

    assert_eq!(a.stages().len(), b.stages().len());
    assert_eq!(a.num_microbatches(), b.num_microbatches());
    for (i, (sa, sb)) in a.stages().iter().zip(b.stages().iter()).enumerate() {
        assert_eq!(
            sa.compute_ns.to_bits(),
            sb.compute_ns.to_bits(),
            "stage {i} compute_ns differs between identical builds"
        );
        assert_eq!(
            sa.write_ns.to_bits(),
            sb.write_ns.to_bits(),
            "stage {i} write_ns differs between identical builds"
        );
        assert_eq!(sa.crossbars_per_replica, sb.crossbars_per_replica);
    }
    for j in 0..a.num_microbatches() {
        for i in 0..a.stages().len() {
            assert_eq!(a.write_ns(i, j).to_bits(), b.write_ns(i, j).to_bits());
        }
    }

    let replicas = vec![2; a.stages().len()];
    let ra = simulate(&a, &replicas, &PipelineOptions::default());
    let rb = simulate(&b, &replicas, &PipelineOptions::default());
    assert_eq!(ra, rb, "simulate of identical builds diverged");
}

/// Different profile seeds actually change the synthetic profile —
/// determinism is seeding, not a constant function.
#[test]
fn different_seeds_produce_different_workloads() {
    let a = GcnWorkload::build(
        Dataset::Ddi,
        &WorkloadOptions {
            profile_seed: 1,
            ..WorkloadOptions::default()
        },
    );
    let b = GcnWorkload::build(
        Dataset::Ddi,
        &WorkloadOptions {
            profile_seed: 2,
            ..WorkloadOptions::default()
        },
    );
    let differs = a
        .stages()
        .iter()
        .zip(b.stages().iter())
        .any(|(sa, sb)| sa.compute_ns.to_bits() != sb.compute_ns.to_bits());
    assert!(differs, "profile_seed has no effect on stage timings");
}

/// The testkit's own PRNG: same seed ⇒ same stream, `mix_seed` keeps
/// per-case streams decorrelated but reproducible.
#[test]
fn testkit_rng_streams_replay_exactly() {
    let mut a = SmallRng::seed_from_u64(0xD5EED);
    let mut b = SmallRng::seed_from_u64(0xD5EED);
    for _ in 0..1000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    assert_eq!(mix_seed(42, 7), mix_seed(42, 7));
    assert_ne!(mix_seed(42, 7), mix_seed(42, 8));
}
