//! Cross-crate pipeline integration: workload construction, Eq. 6
//! conformance, and property-based invariants of the schedule
//! simulator over randomized workloads.

use gopim_graph::datasets::{Dataset, ModelConfig};
use gopim_graph::generate::power_law_profile;
use gopim_pipeline::schedule::{simulate, PipelineOptions};
use gopim_pipeline::workload::{GcnWorkload, WorkloadOptions};
use gopim_testkit::prop::{check_with, Config, Draw};

fn custom_workload(n: usize, avg_deg: f64, micro_batch: usize, seed: u64) -> GcnWorkload {
    let profile = power_law_profile(n, avg_deg, 0.7, 0.9, seed);
    let model = ModelConfig {
        num_layers: 2,
        learning_rate: 0.01,
        dropout: 0.0,
        input_channels: 64,
        hidden_channels: 64,
        output_channels: 16,
    };
    let options = WorkloadOptions {
        micro_batch,
        ..WorkloadOptions::default()
    };
    GcnWorkload::build_custom("prop", &profile, &model, &options)
}

#[test]
fn aggregation_dominates_on_every_dataset() {
    // The AG:CO compute gap grows with density (the paper measures up
    // to 888× on products, averaging 247×; sparse graphs sit lower).
    for (dataset, min_ratio) in [
        (Dataset::Ddi, 40.0),
        (Dataset::Collab, 3.0),
        (Dataset::Arxiv, 4.0),
        (Dataset::Cora, 2.0),
    ] {
        let wl = GcnWorkload::build(dataset, &WorkloadOptions::default());
        for pair in wl.stages().chunks(2).take(dataset.model().num_layers) {
            let (co, ag) = (&pair[0], &pair[1]);
            assert!(
                ag.compute_ns > min_ratio * co.compute_ns,
                "{dataset}: {} {} vs {} {}",
                ag.name(),
                ag.compute_ns,
                co.name(),
                co.compute_ns
            );
        }
    }
}

#[test]
fn two_layer_gcn_unrolls_to_eight_stages() {
    // §IV-A: an L-layer GCN pipelines as 4L stages (CO/AG forward per
    // layer plus the two backward passes) — 8 for ddi's 2-layer model.
    let wl = GcnWorkload::build(Dataset::Ddi, &WorkloadOptions::default());
    assert_eq!(Dataset::Ddi.model().num_layers, 2);
    assert_eq!(wl.stages().len(), 8);
    // And 12 for Cora's 3-layer model.
    let cora = GcnWorkload::build(Dataset::Cora, &WorkloadOptions::default());
    assert_eq!(cora.stages().len(), 4 * Dataset::Cora.model().num_layers);
}

#[test]
fn pipelining_never_exceeds_serial_on_real_datasets() {
    // The defining inequality of §IV: overlapping micro-batches can
    // only remove idle time, never add it.
    for dataset in [Dataset::Ddi, Dataset::Cora] {
        let wl = GcnWorkload::build(dataset, &WorkloadOptions::default());
        let replicas = vec![1; wl.stages().len()];
        let piped = simulate(&wl, &replicas, &PipelineOptions::intra_only());
        let serial = simulate(&wl, &replicas, &PipelineOptions::serial());
        assert!(
            piped.makespan_ns <= serial.makespan_ns * 1.0001,
            "{dataset}: pipelined {} vs serial {}",
            piped.makespan_ns,
            serial.makespan_ns
        );
    }
}

#[test]
fn pipeline_never_beats_the_bottleneck_bound() {
    // Lower bound: n_mb × the slowest per-stage inter-departure (the
    // write channel and the compute replica are separate resources, so
    // the bound is the max of the two, not their sum). Upper bound:
    // strictly sequential execution.
    let wl = custom_workload(3000, 40.0, 64, 1);
    let s = wl.stages().len();
    let res = simulate(&wl, &vec![1; s], &PipelineOptions::intra_only());
    let n_mb = wl.num_microbatches();
    let bottleneck: f64 = (0..s)
        .map(|i| {
            let mean_w: f64 = (0..n_mb).map(|j| wl.write_ns(i, j)).sum::<f64>() / n_mb as f64;
            wl.stages()[i].compute_ns.max(mean_w)
        })
        .fold(0.0, f64::max);
    assert!(res.makespan_ns >= bottleneck * n_mb as f64 * 0.99);
    let serial = simulate(&wl, &vec![1; s], &PipelineOptions::serial());
    assert!(res.makespan_ns <= serial.makespan_ns * 1.0001);
}

#[test]
fn more_replicas_never_slow_the_pipeline() {
    check_with(
        "more_replicas_never_slow_the_pipeline",
        Config::cases(12),
        |d: &mut Draw| {
            let n = d.draw("n", 500usize..3000);
            let avg = d.draw("avg", 4.0f64..80.0);
            let boost = d.draw("boost", 2usize..12);
            let wl = custom_workload(n, avg, 64, 42);
            let s = wl.stages().len();
            let base = simulate(&wl, &vec![1; s], &PipelineOptions::default());
            let boosted = simulate(&wl, &vec![boost; s], &PipelineOptions::default());
            assert!(boosted.makespan_ns <= base.makespan_ns * 1.0001);
        },
    );
}

#[test]
fn makespan_is_positive_and_service_conserved() {
    check_with(
        "makespan_is_positive_and_service_conserved",
        Config::cases(12),
        |d: &mut Draw| {
            let n = d.draw("n", 200usize..2000);
            let avg = d.draw("avg", 2.0f64..50.0);
            let b = d.pick("micro_batch", &[16usize, 32, 64, 128]);
            let wl = custom_workload(n, avg, b, 7);
            let s = wl.stages().len();
            let piped = simulate(&wl, &vec![4; s], &PipelineOptions::default());
            let serial = simulate(&wl, &vec![4; s], &PipelineOptions::serial());
            // Total work is schedule-independent.
            assert!((piped.total_service_ns - serial.total_service_ns).abs() < 1.0);
            assert!(piped.makespan_ns > 0.0);
            assert!(piped.makespan_ns <= serial.makespan_ns * 1.0001);
        },
    );
}

#[test]
fn idle_fractions_are_valid_probabilities() {
    check_with(
        "idle_fractions_are_valid_probabilities",
        Config::cases(12),
        |d: &mut Draw| {
            let n = d.draw("n", 200usize..2000);
            let avg = d.draw("avg", 2.0f64..50.0);
            let wl = custom_workload(n, avg, 64, 11);
            let s = wl.stages().len();
            let res = simulate(&wl, &vec![3; s], &PipelineOptions::default());
            for st in &res.stages {
                assert!((0.0..=1.0).contains(&st.idle_fraction));
                assert!((0.0..=1.0).contains(&st.stage_idle_fraction));
            }
        },
    );
}
