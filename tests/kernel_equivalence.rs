//! Differential-equivalence harness for the fast paths.
//!
//! Two families of optimized code ship with this repo, both under the
//! bit-determinism contract:
//!
//! - the SIMD matmul/aggregation kernels (`gopim_linalg::simd`), which
//!   must produce the same `f64` bits as the scalar fallback for every
//!   shape, tail width, and thread count;
//! - the calendar event queue (`gopim_pipeline::queue::CalendarQueue`),
//!   which must drive the DES to the same makespans, completion
//!   tables, and `gopim-obs` span multisets as the reference
//!   `HeapQueue`.
//!
//! Each property test draws randomized shapes and inputs through
//! `gopim-testkit` (replay a failure with `GOPIM_PT_SEED=<seed>`), and
//! every comparison is exact — `to_bits` equality, never tolerances.
//! The SIMD comparisons run via the `set_simd_enabled` runtime toggle,
//! so a single process exercises both dispatch paths even though the
//! build flags never change.

use gopim_gcn::aggregate::{MeanAggregator, NormalizedAdjacency, Propagation};
use gopim_graph::datasets::ModelConfig;
use gopim_graph::generate::power_law_profile;
use gopim_graph::CsrGraph;
use gopim_linalg::simd::{set_simd_enabled, simd_enabled};
use gopim_linalg::Matrix;
use gopim_par::Pool;
use gopim_pipeline::des::{simulate_des_with_queue, DesResult, ReplicaModel};
use gopim_pipeline::queue::{CalendarQueue, HeapQueue};
use gopim_pipeline::{GcnWorkload, WorkloadOptions};
use gopim_testkit::prop::{check_with, Config};

/// Deterministic value stream for filling matrices (xorshift64*), so a
/// single drawn seed reproduces the whole input.
struct Values(u64);

impl Values {
    fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        // Map to a modest range with both signs and uneven mantissas.
        (self.0 % 2_000_003) as f64 / 997.0 - 1000.0
    }

    fn matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| self.next()).collect())
    }
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Runs `f` with the SIMD path forced on, then forced off, restoring
/// the previous dispatch state afterwards.
fn with_both_paths<R>(mut f: impl FnMut() -> R) -> (R, R) {
    let was = simd_enabled();
    set_simd_enabled(true);
    let on = f();
    set_simd_enabled(false);
    let off = f();
    set_simd_enabled(was);
    (on, off)
}

#[test]
fn matmul_is_bit_identical_across_simd_paths_and_thread_counts() {
    check_with(
        "matmul_is_bit_identical_across_simd_paths_and_thread_counts",
        Config::cases(48),
        |d| {
            // Shapes hug the SIMD lane width (4) and register block
            // (4 rows): draws land on exact multiples, 1-off tails,
            // and degenerate single rows/columns alike.
            let m = d.draw("m", 1usize..40);
            let k = d.draw("k", 1usize..40);
            let n = d.draw("n", 1usize..70);
            let seed = d.draw("seed", 1u64..u64::MAX);
            let threads = d.pick("threads", &[1usize, 4]);
            let mut vals = Values(seed);
            let a = vals.matrix(m, k);
            let b = vals.matrix(k, n);
            let pool = Pool::new(threads);
            let (on, off) = with_both_paths(|| pool.install(|| a.matmul(&b)));
            assert_eq!(
                bits(&on),
                bits(&off),
                "matmul bits diverged at {m}x{k}x{n}, {threads} threads"
            );
            // matmul_into over a dirty (non-zero) output buffer must
            // fully overwrite and agree with the allocating form.
            let mut out = vals.matrix(m, n);
            let (into_on, into_off) = with_both_paths(|| {
                pool.install(|| {
                    a.matmul_into(&b, &mut out);
                    out.clone()
                })
            });
            assert_eq!(
                bits(&into_on),
                bits(&on),
                "matmul_into diverged from matmul"
            );
            assert_eq!(bits(&into_on), bits(&into_off), "matmul_into SIMD diverged");
        },
    );
}

#[test]
fn aggregation_is_bit_identical_across_simd_paths_and_thread_counts() {
    check_with(
        "aggregation_is_bit_identical_across_simd_paths_and_thread_counts",
        Config::cases(32),
        |d| {
            let n = d.draw("n", 2usize..200);
            let d_feat = d.draw("d", 1usize..20);
            let num_edges = d.draw("edges", 0usize..400);
            let seed = d.draw("seed", 1u64..u64::MAX);
            let threads = d.pick("threads", &[1usize, 4]);
            let mut vals = Values(seed);
            let edges: Vec<(u32, u32)> = (0..num_edges)
                .map(|_| {
                    let u = (vals.0 % n as u64) as u32;
                    vals.next();
                    let v = (vals.0 % n as u64) as u32;
                    vals.next();
                    (u, v)
                })
                .filter(|&(u, v)| u != v)
                .collect();
            let graph = CsrGraph::from_edges(n, &edges);
            let x = vals.matrix(n, d_feat);
            let norm = NormalizedAdjacency::new(&graph);
            let mean = MeanAggregator::new();
            let pool = Pool::new(threads);
            let run = |p: &dyn Propagation| {
                with_both_paths(|| {
                    pool.install(|| (p.propagate(&graph, &x), p.propagate_transpose(&graph, &x)))
                })
            };
            for (name, p) in [
                ("normalized", &norm as &dyn Propagation),
                ("mean", &mean as &dyn Propagation),
            ] {
                let (on, off) = run(p);
                assert_eq!(
                    bits(&on.0),
                    bits(&off.0),
                    "{name} propagate bits diverged (n={n}, d={d_feat})"
                );
                assert_eq!(
                    bits(&on.1),
                    bits(&off.1),
                    "{name} propagate_transpose bits diverged (n={n}, d={d_feat})"
                );
            }
        },
    );
}

fn model(layers: usize) -> ModelConfig {
    ModelConfig {
        num_layers: layers,
        learning_rate: 0.01,
        dropout: 0.0,
        input_channels: 32,
        hidden_channels: 64,
        output_channels: 16,
    }
}

fn assert_des_bits_equal(a: &DesResult, b: &DesResult, what: &str) {
    assert_eq!(
        a.makespan_ns.to_bits(),
        b.makespan_ns.to_bits(),
        "{what}: makespan diverged"
    );
    assert_eq!(
        a.completions_ns.len(),
        b.completions_ns.len(),
        "{what}: stage count diverged"
    );
    for (i, (ca, cb)) in a.completions_ns.iter().zip(&b.completions_ns).enumerate() {
        let ba: Vec<u64> = ca.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u64> = cb.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ba, bb, "{what}: stage {i} completions diverged");
    }
}

#[test]
fn des_is_bit_identical_under_calendar_and_heap_queues() {
    check_with(
        "des_is_bit_identical_under_calendar_and_heap_queues",
        Config::cases(24),
        |d| {
            let n = d.draw("n", 128usize..3000);
            let avg = d.draw("avg", 2.0f64..50.0);
            let b = d.pick("b", &[16usize, 32, 64]);
            let r = d.pick("r", &[1usize, 3, 8, 64, 256]);
            let profile = power_law_profile(n, avg, 0.8, 0.9, d.draw("pseed", 0u64..1000));
            let options = WorkloadOptions {
                micro_batch: b,
                ..WorkloadOptions::default()
            };
            let layers = d.draw("layers", 2usize..4);
            let wl = GcnWorkload::build_custom("equiv", &profile, &model(layers), &options);
            let reps = vec![r; wl.stages().len()];
            for m in [ReplicaModel::DiscreteServers, ReplicaModel::InputSplit] {
                let heap = simulate_des_with_queue(&wl, &reps, m, HeapQueue::<()>::new);
                let cal = simulate_des_with_queue(&wl, &reps, m, CalendarQueue::<()>::new);
                assert_des_bits_equal(&heap, &cal, &format!("{m:?} R={r} b={b}"));
            }
        },
    );
}

/// Runs a DES-heavy workload under `threads` workers with the given
/// queue and returns the result plus the sorted span-identity
/// multiset it traced.
fn traced_des<Q: gopim_pipeline::queue::EventQueue<()>>(
    threads: usize,
    make_queue: impl FnMut() -> Q,
) -> (DesResult, Vec<String>) {
    let wl = GcnWorkload::build(
        gopim_graph::datasets::Dataset::Ddi,
        &WorkloadOptions::default(),
    );
    let reps = vec![8; wl.stages().len()];
    let pool = Pool::new(threads);
    gopim_obs::set_trace_enabled(true);
    let _ = gopim_obs::span::drain();
    let result = pool
        .install(|| simulate_des_with_queue(&wl, &reps, ReplicaModel::DiscreteServers, make_queue));
    let mut ids: Vec<String> = gopim_obs::span::drain()
        .iter()
        .map(|e| e.identity())
        .collect();
    gopim_obs::set_trace_enabled(false);
    ids.sort();
    (result, ids)
}

#[test]
fn des_span_multiset_is_queue_and_thread_count_invariant() {
    // The observable behaviour of a DES run — results AND the trace
    // it emits — must not depend on the queue implementation or on
    // GOPIM_THREADS. Serial (1 thread) vs the default-sized pool,
    // heap vs calendar: all four runs must agree bit for bit.
    let (heap_1, spans_heap_1) = traced_des(1, HeapQueue::<()>::new);
    let (cal_1, spans_cal_1) = traced_des(1, CalendarQueue::<()>::new);
    let default_threads = gopim_par::num_threads().max(2);
    let (heap_n, spans_heap_n) = traced_des(default_threads, HeapQueue::<()>::new);
    let (cal_n, spans_cal_n) = traced_des(default_threads, CalendarQueue::<()>::new);
    assert!(
        !spans_heap_1.is_empty(),
        "DES runs must record spans (is span collection wired?)"
    );
    assert_des_bits_equal(&heap_1, &cal_1, "heap vs calendar at 1 thread");
    assert_des_bits_equal(&heap_1, &heap_n, "heap at 1 vs default threads");
    assert_des_bits_equal(&heap_1, &cal_n, "heap at 1 vs calendar at default");
    assert_eq!(
        spans_heap_1, spans_cal_1,
        "span multiset differs between queues at 1 thread"
    );
    assert_eq!(
        spans_heap_1, spans_heap_n,
        "span multiset differs across thread counts"
    );
    assert_eq!(
        spans_heap_1, spans_cal_n,
        "span multiset differs between queues at default threads"
    );
}

#[test]
fn training_trajectory_is_bit_identical_under_simd_toggle() {
    // End to end: a short GCN training run (forward, backward, Adam)
    // must land on byte-identical weights whichever kernel path the
    // dispatcher picks. This is the contract that lets GOPIM_NO_SIMD
    // be a pure kill-switch rather than a numerics knob.
    use gopim_gcn::model::GcnModel;
    use gopim_graph::generate::planted_partition;
    let run = || {
        let (g, labels) = planted_partition(120, 3, 8.0, 6.0, 11);
        let norm = NormalizedAdjacency::new(&g);
        let mut x = gopim_linalg::init::uniform(120, 5, 0.3, 17);
        for (v, &l) in labels.iter().enumerate() {
            x[(v, l as usize)] += 1.0;
        }
        let mut m = GcnModel::new(&[5, 16, 3], 0.02, 23);
        let mask = vec![true; 120];
        let mut losses = Vec::new();
        for e in 0..6 {
            losses.push(m.train_epoch(&g, &norm, &x, &labels, &mask, None, e));
        }
        let out = m.forward(&g, &norm, &x);
        (losses, bits(&out))
    };
    let (on, off) = with_both_paths(run);
    let loss_bits = |l: &[f64]| l.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        loss_bits(&on.0),
        loss_bits(&off.0),
        "per-epoch losses diverged between SIMD and scalar paths"
    );
    assert_eq!(
        on.1, off.1,
        "final logits diverged between SIMD and scalar paths"
    );
}
