//! Differential harness for the run cache: a cache hit must hand back
//! bytes *bitwise identical* to a fresh simulation. Three fronts:
//!
//! 1. in-process — warm [`run_systems`]/[`run_ablation_cached`] results
//!    vs the same requests computed under
//!    [`gopim_cache::with_disabled`];
//! 2. cross-process — a child process populates an on-disk tier
//!    (`GOPIM_CACHE`), a second child serves the same sweep from disk,
//!    and both digests must match the parent's fresh computation;
//! 3. thread counts — a cache populated under a 1-thread pool must
//!    serve byte-identical results under an 8-thread pool (and the
//!    fresh leg agrees with both).
//!
//! Comparison is on the [`CacheValue`] encodings — the exact byte
//! strings the store persists — so equality here *is* the bitwise
//! contract, f64 payloads included.

use gopim::runner::{run_ablation_cached, run_system_cached, run_systems, RunConfig};
use gopim::system::{Ablation, System};
use gopim::SystemRun;
use gopim_cache::CacheValue;
use gopim_graph::datasets::Dataset;
use gopim_par::Pool;

const CHILD_ENV: &str = "GOPIM_CACHE_DIFF_OUT";
const TEST_NAME: &str = "disk_tier_serves_bitwise_identical_results_across_processes";

fn test_config() -> RunConfig {
    RunConfig {
        crossbar_budget: Some(200_000),
        ..RunConfig::default()
    }
}

fn sweep() -> Vec<(Dataset, System)> {
    vec![
        (Dataset::Ddi, System::Serial),
        (Dataset::Ddi, System::Gopim),
        (Dataset::Cora, System::Gopim),
        (Dataset::Collab, System::Serial),
    ]
}

/// The store's own byte encoding of a result list: bit-exact identity.
fn encode(runs: &[SystemRun]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in runs {
        out.extend_from_slice(&r.to_bytes());
    }
    out
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn cached_sweep_is_bitwise_identical_to_fresh() {
    let config = test_config();
    let cells = sweep();
    let warmup = encode(&run_systems(&cells, &config));
    let before = gopim_cache::global().stats();
    let cached = encode(&run_systems(&cells, &config));
    let after = gopim_cache::global().stats();
    let fresh = gopim_cache::with_disabled(|| encode(&run_systems(&cells, &config)));
    assert_eq!(warmup, cached, "warm rerun changed bytes");
    assert_eq!(cached, fresh, "cache hit differs from fresh simulation");
    // The second sweep must have been served by the store (other tests
    // running in parallel can only add hits, so >= is exact enough).
    assert!(
        after.hits - before.hits >= 3,
        "expected cache hits on the warm sweep: {before:?} -> {after:?}"
    );
}

#[test]
fn cached_ablation_is_bitwise_identical_to_fresh() {
    let config = test_config();
    for variant in Ablation::ALL {
        let warm = run_ablation_cached(Dataset::Ddi, variant, &config);
        let cached = run_ablation_cached(Dataset::Ddi, variant, &config);
        let fresh =
            gopim_cache::with_disabled(|| run_ablation_cached(Dataset::Ddi, variant, &config));
        assert_eq!(
            warm.to_bytes(),
            cached.to_bytes(),
            "{variant:?} warm rerun changed bytes"
        );
        assert_eq!(
            cached.to_bytes(),
            fresh.to_bytes(),
            "{variant:?} cache hit differs from fresh"
        );
    }
}

/// A cache populated at one thread count must serve the same bytes at
/// another, and both must match a fresh run — the cache cannot be
/// allowed to launder a thread-count dependence into "deterministic"
/// results.
#[test]
fn cache_populated_serial_serves_identical_bytes_parallel() {
    // A budget this test alone uses, so the cold leg is really cold.
    let config = RunConfig {
        crossbar_budget: Some(222_000),
        ..RunConfig::default()
    };
    let cells = sweep();
    let cold = Pool::new(1).install(|| encode(&run_systems(&cells, &config)));
    let warm = Pool::new(8).install(|| encode(&run_systems(&cells, &config)));
    let fresh = Pool::new(8)
        .install(|| gopim_cache::with_disabled(|| encode(&run_systems(&cells, &config))));
    assert_eq!(cold, warm, "1-thread-populated cache differs at 8 threads");
    assert_eq!(warm, fresh, "cached bytes differ from fresh at 8 threads");
}

#[test]
fn disk_tier_serves_bitwise_identical_results_across_processes() {
    let config = test_config();
    if std::env::var(CHILD_ENV).is_ok() {
        // Child mode: simulate the sweep (consulting whatever
        // GOPIM_CACHE the parent pointed us at), report a digest plus
        // the disk-tier hit count, and stop before re-spawning.
        let out = std::env::var(CHILD_ENV).expect("checked above");
        let mut runs = Vec::new();
        for (d, s) in sweep() {
            runs.push(run_system_cached(d, s, &config));
        }
        let stats = gopim_cache::global().stats();
        let line = format!("{:016x} {}", fnv(&encode(&runs)), stats.disk_hits);
        std::fs::write(out, line).expect("write child digest");
        return;
    }

    // Parent: the reference digest comes from a fully uncached run.
    let fresh_digest = gopim_cache::with_disabled(|| {
        let runs: Vec<SystemRun> = sweep()
            .into_iter()
            .map(|(d, s)| run_system_cached(d, s, &config))
            .collect();
        format!("{:016x}", fnv(&encode(&runs)))
    });

    let exe = std::env::current_exe().expect("test binary path");
    let pid = std::process::id();
    let cache_dir = std::env::temp_dir().join(format!("gopim_cache_diff_{pid}"));
    std::fs::create_dir_all(&cache_dir).expect("create cache dir");

    let mut disk_hits = Vec::new();
    for run in 0..2 {
        let out = std::env::temp_dir().join(format!("gopim_cache_diff_{pid}_{run}.txt"));
        let status = std::process::Command::new(&exe)
            .arg("--exact")
            .arg(TEST_NAME)
            .env(CHILD_ENV, &out)
            .env("GOPIM_CACHE", &cache_dir)
            .status()
            .expect("spawn child test process");
        assert!(status.success(), "child process run {run} failed");
        let report = std::fs::read_to_string(&out).expect("read child digest");
        let _ = std::fs::remove_file(&out);
        let (digest, hits) = report.split_once(' ').expect("digest + disk_hits");
        assert_eq!(
            digest, fresh_digest,
            "child run {run} digest differs from fresh simulation"
        );
        disk_hits.push(hits.trim().parse::<u64>().expect("disk hit count"));
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    // First child starts from an empty directory; the second must have
    // been served (at least partly) by the records the first wrote.
    assert_eq!(disk_hits[0], 0, "cold child run cannot have disk hits");
    assert!(
        disk_hits[1] > 0,
        "warm child run never touched the disk tier"
    );
}
