//! A deliberate ABBA lock-order inversion — the seeded deadlock both
//! halves of the concurrency analyzer must flag with the same cycle:
//! the static pass (`gopim lint --locks --root
//! crates/lint/fixtures/locks`) and the runtime lockdep witness
//! (`crates/lint/tests/lockdep_differential.rs` replays the same two
//! orders on named `DepMutex`es). Never compiled, only parsed.

use std::sync::{Mutex, MutexGuard};

/// First lock of the seeded pair.
pub static LOCK_A: Mutex<u32> = Mutex::new(0);
/// Second lock of the seeded pair.
pub static LOCK_B: Mutex<u32> = Mutex::new(0);

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Takes `LOCK_A`, then `LOCK_B` while A's guard is live.
pub fn ab() -> u32 {
    let a = lock_recover(&LOCK_A);
    let b = lock_recover(&LOCK_B);
    *a + *b
}

/// Takes `LOCK_B`, then `LOCK_A` — the inversion closing the cycle.
pub fn ba() -> u32 {
    let b = lock_recover(&LOCK_B);
    let a = lock_recover(&LOCK_A);
    *a + *b
}
