//! Fixture binary: printing and unwrapping are fine in a bin target,
//! but spawning subprocesses still is not.

fn main() {
    let out = std::process::Command::new("echo").output().unwrap();
    println!("{}", out.status);
}
