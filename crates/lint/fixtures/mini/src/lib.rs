//! Fixture library exercising every linter rule for the golden
//! report test. Nothing here is ever compiled — the linter only
//! tokenizes it.

use std::collections::HashMap;
use std::time::Instant;

/// Iterates a `HashMap` (nondeterministic order) and reads the clock.
pub fn hot_loop(m: &HashMap<u32, u32>) -> u128 {
    let t = Instant::now();
    let mut sum = 0u64;
    for (k, v) in m {
        sum += u64::from(k + v);
    }
    println!("sum = {sum}");
    t.elapsed().as_nanos()
}

/// Unwraps in library code.
pub fn panics(x: Option<u32>) -> u32 {
    x.unwrap()
}

/// A suppression with a reason silences its finding.
pub fn excused(x: Option<u32>) -> u32 {
    // lint:allow(no-panic-in-lib): fixture — the caller guarantees Some
    x.unwrap()
}

// lint:allow(no-panic-in-lib)
/// A reasonless suppression is a finding of its own, and silences
/// nothing: the `expect` below still fires.
pub fn reasonless(x: Option<u32>) -> u32 {
    x.expect("boom")
}

/// Strings and comments must never trip a rule: the words below are
/// "HashMap", "Instant::now()" and "panic!()" as *text*, not tokens.
pub fn text_not_tokens() -> &'static str {
    /* A HashMap mentioned in a comment is fine. */
    "HashMap Instant::now() panic!() .unwrap()"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_regions_are_exempt() {
        let v: Vec<u32> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
