//! Fixture test target: panicking is the harness idiom here, so the
//! lines below must produce no findings.

#[test]
fn panics_are_fine_in_tests() {
    let v: Option<u32> = Some(3);
    assert_eq!(v.unwrap(), 3);
    println!("tests may print too");
}
