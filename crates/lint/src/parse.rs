//! A lightweight item/expression parse layer over the lossless lexer.
//!
//! The token rules in [`crate::rules`] need no structure, but the
//! concurrency pass ([`crate::lockgraph`]) must know *which function*
//! a lock is acquired in, *which struct field* a `Mutex` lives behind,
//! and *how statements nest* — guard liveness is lexical. This module
//! recovers exactly that much syntax and no more:
//!
//! - **items**: `fn` signatures + bodies, `struct` fields, `static`
//!   declarations, recursing through `impl`/`mod`/`trait` blocks;
//! - **expressions**: a flat event stream per function body — scope
//!   open/close (tagged with the opening keyword), statement ends,
//!   `let` bindings, method/free calls with receiver and
//!   first-argument ident paths, and closure boundaries.
//!
//! It is *not* a Rust parser: no precedence, no types, no patterns.
//! Anything it cannot classify it skips, so analyses built on it are
//! conservative (they may miss, they do not invent structure). Like
//! the lexer it is total: any byte string produces *some* event
//! stream, never a panic — the adversarial property suite in
//! `crates/lint/tests/parser_prop.rs` holds it to that.

use crate::lexer::{Token, TokenKind};

/// Everything the parse layer recovered from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Function items, in source order (nested through impl/mod).
    pub fns: Vec<FnItem>,
    /// Struct items with named fields.
    pub structs: Vec<StructItem>,
    /// `static` items (including those inside `thread_local!`-style
    /// macro bodies, which tokenize identically).
    pub statics: Vec<StaticItem>,
}

/// One `fn` item: signature facts plus the body's event stream.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// `Some(Type)` when declared inside `impl Type { .. }` (the last
    /// path segment of the self type); `None` for free functions.
    pub self_ty: Option<String>,
    /// Significant token texts of the parameter list (between parens).
    pub params: Vec<String>,
    /// Significant token texts of the return type (after `->`, before
    /// the body or `where`). Empty when the fn returns `()`.
    pub ret: Vec<String>,
    /// Byte offset of the `fn` keyword (for line attribution).
    pub offset: usize,
    /// The body's event stream; empty for bodyless declarations.
    pub events: Vec<Event>,
}

/// A struct with named fields.
#[derive(Debug)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// Named fields in declaration order.
    pub fields: Vec<FieldDecl>,
}

/// One named struct field.
#[derive(Debug)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Significant token texts of the field type.
    pub ty: Vec<String>,
    /// Byte offset of the field name.
    pub offset: usize,
}

/// One `static` item.
#[derive(Debug)]
pub struct StaticItem {
    /// The static's name.
    pub name: String,
    /// Significant token texts of the declared type.
    pub ty: Vec<String>,
    /// Byte offset of the name.
    pub offset: usize,
}

/// What keyword opened a scope (drives the `condvar-wait-without-loop`
/// rule and closure barriers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opener {
    /// `loop { .. }`
    Loop,
    /// `while .. { .. }` (including `while let`)
    While,
    /// `for .. in .. { .. }`
    For,
    /// A closure body (`|..| { .. }`) — a liveness barrier: guards
    /// outside it are not visibly held inside (the closure may run on
    /// another thread, later, or never).
    Closure,
    /// Anything else: plain blocks, `if`/`else`, `match`, `unsafe`.
    Plain,
}

/// One step of a function body, in source order.
#[derive(Debug)]
pub enum Event {
    /// A `{` opened a scope.
    Open {
        /// The keyword (if any) that introduced it.
        opener: Opener,
        /// Byte offset of the `{`.
        offset: usize,
    },
    /// The matching `}`.
    Close {
        /// Byte offset of the `}`.
        offset: usize,
    },
    /// A `;` at parenthesis depth zero — statement-temporary guards
    /// die here.
    StmtEnd {
        /// Byte offset of the `;`.
        offset: usize,
    },
    /// A `let` binding. `binding` is the bound name for the simple
    /// `let [mut] name = ..` shape, `None` for patterns.
    Let {
        /// The bound identifier, when the pattern is a plain name.
        binding: Option<String>,
        /// Byte offset of the `let`.
        offset: usize,
    },
    /// A call expression, `recv.name(args)` or `name(args)`.
    Call(CallEvent),
    /// An expression-bodied closure began (`|x| expr` with no braces);
    /// a liveness barrier until the matching [`Event::ClosureEnd`].
    ClosureStart {
        /// Byte offset of the opening `|`.
        offset: usize,
    },
    /// The expression-bodied closure ended.
    ClosureEnd {
        /// Byte offset just past the closure expression.
        offset: usize,
    },
}

/// One call site.
#[derive(Debug)]
pub struct CallEvent {
    /// The called identifier (`lock`, `recv`, `lock_recover`, ..).
    pub name: String,
    /// True for `recv.name(..)`, false for `name(..)` / `a::name(..)`.
    pub method: bool,
    /// For method calls: the trailing ident path of the receiver
    /// (`self.inner.shared.queue` → `["self","inner","shared","queue"]`).
    /// Empty when the receiver is not a plain ident path (chained
    /// calls, indexing).
    pub recv: Vec<String>,
    /// For free calls: the leading ident path of the first argument
    /// with `&`/`mut` stripped (`lock_recover(&core.state)` →
    /// `["core","state"]`). Empty when absent or not a plain path.
    pub arg_path: Vec<String>,
    /// True when the argument list is empty (`.read()` vs `.read(buf)`).
    pub args_empty: bool,
    /// True when the call's closing `)` is immediately followed by
    /// `;` — the whole-statement shape under which a `let` binds the
    /// returned guard itself.
    pub terminal: bool,
    /// Byte offset of the called identifier.
    pub offset: usize,
}

/// Keywords that can precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "move", "let", "in", "fn", "unsafe",
    "ref", "mut", "as", "use", "pub", "where", "impl", "dyn", "box", "await", "break", "continue",
    "static", "const", "struct", "enum", "trait", "mod", "type", "union", "extern", "crate",
    "super", "yield",
];

/// Parses one file's significant tokens. `sig` must contain no
/// whitespace or comment tokens (the engine's significant stream).
pub fn parse(src: &str, sig: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    scan_items(&mut out, src, sig, 0, sig.len(), None);
    out
}

fn text<'a>(src: &'a str, sig: &[Token], i: usize) -> &'a str {
    sig.get(i).map_or("", |t| t.text(src))
}

fn kind(sig: &[Token], i: usize) -> Option<TokenKind> {
    sig.get(i).map(|t| t.kind)
}

fn offset(sig: &[Token], i: usize) -> usize {
    sig.get(i).map_or(0, |t| t.start)
}

/// Index of the token matching the opener at `open` (`{`/`}`, `(`/`)`
/// or `[`/`]`), or `hi` when unbalanced.
fn matching(src: &str, sig: &[Token], open: usize, hi: usize) -> usize {
    let (o, c) = match text(src, sig, open) {
        "{" => ("{", "}"),
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => return open,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < hi {
        if kind(sig, i) == Some(TokenKind::Punct) {
            let t = text(src, sig, i);
            if t == o {
                depth += 1;
            } else if t == c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        i += 1;
    }
    hi
}

/// Skips a `<..>` generics list starting at `i` (which must be `<`).
/// `>` tokens that belong to `->` arrows do not close the list.
fn skip_generics(src: &str, sig: &[Token], i: usize, hi: usize) -> usize {
    if text(src, sig, i) != "<" {
        return i;
    }
    let mut depth = 0isize;
    let mut j = i;
    while j < hi {
        let t = text(src, sig, j);
        if t == "<" {
            depth += 1;
        } else if t == ">" && (j == 0 || text(src, sig, j - 1) != "-") {
            depth -= 1;
            if depth <= 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    hi
}

fn scan_items(
    out: &mut ParsedFile,
    src: &str,
    sig: &[Token],
    lo: usize,
    hi: usize,
    self_ty: Option<&str>,
) {
    let mut i = lo;
    while i < hi {
        if kind(sig, i) != Some(TokenKind::Ident) {
            i += 1;
            continue;
        }
        match text(src, sig, i) {
            "fn" => i = parse_fn(out, src, sig, i, hi, self_ty),
            "struct" => i = parse_struct(out, src, sig, i, hi),
            "static" => i = parse_static(out, src, sig, i, hi),
            "impl" => i = parse_impl(out, src, sig, i, hi),
            "mod" | "trait" => {
                // Recurse into the block (trait default methods count
                // as free functions — no self type resolution).
                let mut j = i + 1;
                while j < hi && !matches!(text(src, sig, j), "{" | ";") {
                    j += 1;
                }
                if text(src, sig, j) == "{" {
                    let end = matching(src, sig, j, hi);
                    scan_items(out, src, sig, j + 1, end, None);
                    i = end + 1;
                } else {
                    i = j + 1;
                }
            }
            "enum" | "union" => {
                // Skip the body so variant fields are not misread.
                let mut j = i + 1;
                while j < hi && !matches!(text(src, sig, j), "{" | ";") {
                    j += 1;
                }
                i = if text(src, sig, j) == "{" {
                    matching(src, sig, j, hi) + 1
                } else {
                    j + 1
                };
            }
            _ => i += 1,
        }
    }
}

fn parse_fn(
    out: &mut ParsedFile,
    src: &str,
    sig: &[Token],
    at: usize,
    hi: usize,
    self_ty: Option<&str>,
) -> usize {
    // `fn` must be followed by a name; `fn` as a type (`const F: fn()`)
    // is not an item.
    if kind(sig, at + 1) != Some(TokenKind::Ident) {
        return at + 1;
    }
    let name = text(src, sig, at + 1).to_string();
    let mut j = skip_generics(src, sig, at + 2, hi);
    if text(src, sig, j) != "(" {
        return at + 2;
    }
    let params_end = matching(src, sig, j, hi);
    let params: Vec<String> = (j + 1..params_end.min(hi))
        .map(|k| text(src, sig, k).to_string())
        .collect();
    j = params_end + 1;
    // Return type: after `->`, up to the body, `;`, or `where`.
    let mut ret = Vec::new();
    if text(src, sig, j) == "-" && text(src, sig, j + 1) == ">" {
        j += 2;
        while j < hi && !matches!(text(src, sig, j), "{" | ";") && text(src, sig, j) != "where" {
            ret.push(text(src, sig, j).to_string());
            j += 1;
        }
    }
    while j < hi && !matches!(text(src, sig, j), "{" | ";") {
        j += 1;
    }
    let mut events = Vec::new();
    let end = if text(src, sig, j) == "{" {
        let close = matching(src, sig, j, hi);
        events = parse_body(src, sig, j, close);
        close + 1
    } else {
        j + 1
    };
    out.fns.push(FnItem {
        name,
        self_ty: self_ty.map(str::to_string),
        params,
        ret,
        offset: offset(sig, at),
        events,
    });
    end
}

fn parse_struct(out: &mut ParsedFile, src: &str, sig: &[Token], at: usize, hi: usize) -> usize {
    if kind(sig, at + 1) != Some(TokenKind::Ident) {
        return at + 1;
    }
    let name = text(src, sig, at + 1).to_string();
    let mut j = skip_generics(src, sig, at + 2, hi);
    // Skip a `where` clause.
    while j < hi && !matches!(text(src, sig, j), "{" | "(" | ";") {
        j += 1;
    }
    match text(src, sig, j) {
        "(" => matching(src, sig, j, hi) + 1, // tuple struct: no named fields
        "{" => {
            let end = matching(src, sig, j, hi);
            let fields = parse_fields(src, sig, j + 1, end);
            out.structs.push(StructItem { name, fields });
            end + 1
        }
        _ => j + 1,
    }
}

fn parse_fields(src: &str, sig: &[Token], lo: usize, hi: usize) -> Vec<FieldDecl> {
    let mut fields = Vec::new();
    let mut i = lo;
    while i < hi {
        // Skip attributes and visibility.
        if text(src, sig, i) == "#" && text(src, sig, i + 1) == "[" {
            i = matching(src, sig, i + 1, hi) + 1;
            continue;
        }
        if text(src, sig, i) == "pub" {
            i += 1;
            if text(src, sig, i) == "(" {
                i = matching(src, sig, i, hi) + 1;
            }
            continue;
        }
        if kind(sig, i) == Some(TokenKind::Ident) && text(src, sig, i + 1) == ":" {
            let name = text(src, sig, i).to_string();
            let field_offset = offset(sig, i);
            let mut j = i + 2;
            let mut ty = Vec::new();
            let mut angle = 0isize;
            let mut paren = 0isize;
            while j < hi {
                let t = text(src, sig, j);
                match t {
                    "<" => angle += 1,
                    ">" if text(src, sig, j.wrapping_sub(1)) != "-" => angle -= 1,
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    "," if angle <= 0 && paren <= 0 => break,
                    _ => {}
                }
                ty.push(t.to_string());
                j += 1;
            }
            fields.push(FieldDecl {
                name,
                ty,
                offset: field_offset,
            });
            i = j + 1;
        } else {
            i += 1;
        }
    }
    fields
}

fn parse_static(out: &mut ParsedFile, src: &str, sig: &[Token], at: usize, hi: usize) -> usize {
    let mut j = at + 1;
    if text(src, sig, j) == "mut" {
        j += 1;
    }
    if kind(sig, j) != Some(TokenKind::Ident) || text(src, sig, j + 1) != ":" {
        return at + 1;
    }
    let name = text(src, sig, j).to_string();
    let name_offset = offset(sig, j);
    let mut k = j + 2;
    let mut ty = Vec::new();
    while k < hi && !matches!(text(src, sig, k), "=" | ";") {
        ty.push(text(src, sig, k).to_string());
        k += 1;
    }
    out.statics.push(StaticItem {
        name,
        ty,
        offset: name_offset,
    });
    // Skip the initializer (brace-aware: block initializers exist).
    let mut depth = 0isize;
    while k < hi {
        match text(src, sig, k) {
            "{" => depth += 1,
            "}" => depth -= 1,
            ";" if depth <= 0 => return k + 1,
            _ => {}
        }
        k += 1;
    }
    hi
}

fn parse_impl(out: &mut ParsedFile, src: &str, sig: &[Token], at: usize, hi: usize) -> usize {
    let mut j = skip_generics(src, sig, at + 1, hi);
    // Collect the type tokens up to the body; `impl Trait for Type`
    // resolves to the tokens after `for`.
    let mut ty_start = j;
    let mut angle = 0isize;
    while j < hi {
        let t = text(src, sig, j);
        match t {
            "{" if angle <= 0 => break,
            ";" => return j + 1,
            "<" => angle += 1,
            ">" if text(src, sig, j.wrapping_sub(1)) != "-" => angle -= 1,
            "for" if angle <= 0 => ty_start = j + 1,
            "where" if angle <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    // Self type = last ident at angle depth zero in [ty_start, j).
    let mut self_ty = None;
    let mut depth = 0isize;
    for k in ty_start..j {
        let t = text(src, sig, k);
        match t {
            "<" => depth += 1,
            ">" if text(src, sig, k.wrapping_sub(1)) != "-" => depth -= 1,
            _ => {
                if depth <= 0 && kind(sig, k) == Some(TokenKind::Ident) && t != "dyn" && t != "mut"
                {
                    self_ty = Some(t.to_string());
                }
            }
        }
    }
    while j < hi && text(src, sig, j) != "{" {
        j += 1;
    }
    if text(src, sig, j) != "{" {
        return j;
    }
    let end = matching(src, sig, j, hi);
    scan_items(out, src, sig, j + 1, end, self_ty.as_deref());
    end + 1
}

/// Tokens that may directly precede a closure's opening `|`.
fn closure_position(src: &str, sig: &[Token], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = text(src, sig, i - 1);
    match prev {
        "(" | "," | "=" | "{" | ";" | "[" | ":" => true,
        ">" => i >= 2 && text(src, sig, i - 2) == "=", // `=>` arrow
        "move" | "return" | "else" | "in" | "break" => true,
        _ => false,
    }
}

/// Parses one function body (tokens `open..=close`, both braces) into
/// an event stream. Total: malformed input produces a partial stream,
/// never a panic.
fn parse_body(src: &str, sig: &[Token], open: usize, close: usize) -> Vec<Event> {
    let mut events = Vec::new();
    let mut pending: Opener = Opener::Plain;
    let mut next_brace_closure = false;
    let mut paren = 0isize;
    let mut bracket = 0isize;
    let mut brace = 0isize;
    // Expression-bodied closures still open: (paren, bracket, brace)
    // depths at their start.
    let mut expr_closures: Vec<(isize, isize, isize)> = Vec::new();
    let mut i = open;
    while i <= close && i < sig.len() {
        let Some(tok) = sig.get(i) else { break };
        let t = tok.text(src);
        match tok.kind {
            TokenKind::Ident => match t {
                "loop" => pending = Opener::Loop,
                "while" => pending = Opener::While,
                "for" => pending = Opener::For,
                "let" => {
                    let mut j = i + 1;
                    if text(src, sig, j) == "mut" {
                        j += 1;
                    }
                    let binding = (kind(sig, j) == Some(TokenKind::Ident)
                        && matches!(text(src, sig, j + 1), "=" | ":"))
                    .then(|| text(src, sig, j).to_string());
                    events.push(Event::Let {
                        binding,
                        offset: tok.start,
                    });
                }
                _ => {
                    // `name(..)` — macros never reach here (their `!`
                    // sits between the ident and the parenthesis).
                    if text(src, sig, i + 1) == "(" && !KEYWORDS.contains(&t) {
                        let method = i > 0 && text(src, sig, i - 1) == ".";
                        let args_open = i + 1;
                        let args_close = matching(src, sig, args_open, close + 1);
                        let args_empty = args_close == args_open + 1;
                        let after = text(src, sig, args_close + 1);
                        let recv = if method {
                            recv_path(src, sig, i - 1)
                        } else {
                            Vec::new()
                        };
                        let arg_path = if method {
                            Vec::new()
                        } else {
                            leading_arg_path(src, sig, args_open + 1, args_close)
                        };
                        events.push(Event::Call(CallEvent {
                            name: t.to_string(),
                            method,
                            recv,
                            arg_path,
                            args_empty,
                            terminal: after == ";",
                            offset: tok.start,
                        }));
                    }
                }
            },
            TokenKind::Punct => match t {
                "|" if closure_position(src, sig, i) => {
                    // Scan the argument list to the matching `|`.
                    let mut j = i + 1;
                    if text(src, sig, j) == "|" {
                        // `||` — empty argument list.
                    } else {
                        let mut p = 0isize;
                        while j <= close && j < sig.len() {
                            match text(src, sig, j) {
                                "(" | "[" => p += 1,
                                ")" | "]" => p -= 1,
                                "|" if p <= 0 => break,
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                    if text(src, sig, j + 1) == "{" {
                        next_brace_closure = true;
                    } else {
                        events.push(Event::ClosureStart { offset: tok.start });
                        expr_closures.push((paren, bracket, brace));
                    }
                    i = j + 1;
                    continue;
                }
                "{" => {
                    brace += 1;
                    let opener = if next_brace_closure {
                        Opener::Closure
                    } else {
                        pending
                    };
                    next_brace_closure = false;
                    pending = Opener::Plain;
                    events.push(Event::Open {
                        opener,
                        offset: tok.start,
                    });
                }
                "}" => {
                    brace -= 1;
                    end_closures(
                        &mut events,
                        &mut expr_closures,
                        paren,
                        bracket,
                        brace,
                        false,
                        tok.start,
                    );
                    events.push(Event::Close { offset: tok.start });
                }
                ";" => {
                    if paren <= 0 && bracket <= 0 {
                        end_closures(
                            &mut events,
                            &mut expr_closures,
                            paren,
                            bracket,
                            brace,
                            true,
                            tok.start,
                        );
                        events.push(Event::StmtEnd { offset: tok.start });
                        pending = Opener::Plain;
                    }
                }
                "(" => paren += 1,
                ")" => {
                    paren -= 1;
                    end_closures(
                        &mut events,
                        &mut expr_closures,
                        paren,
                        bracket,
                        brace,
                        false,
                        tok.start,
                    );
                }
                "[" => bracket += 1,
                "]" => {
                    bracket -= 1;
                    end_closures(
                        &mut events,
                        &mut expr_closures,
                        paren,
                        bracket,
                        brace,
                        false,
                        tok.start,
                    );
                }
                "," => {
                    end_closures(
                        &mut events,
                        &mut expr_closures,
                        paren,
                        bracket,
                        brace,
                        true,
                        tok.start,
                    );
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    events
}

/// Ends expression-bodied closures whose expression just finished. A
/// *separator* (`,`, `;`) ends closures opened at the current depths;
/// a *closer* (`)`, `]`, `}`, already applied to the depth counters)
/// ends closures opened strictly inside the group it closed.
fn end_closures(
    events: &mut Vec<Event>,
    stack: &mut Vec<(isize, isize, isize)>,
    paren: isize,
    bracket: isize,
    brace: isize,
    separator: bool,
    offset: usize,
) {
    while let Some(&(p, b, br)) = stack.last() {
        let done = if separator {
            paren <= p && bracket <= b && brace <= br
        } else {
            paren < p || bracket < b || brace < br
        };
        if done {
            stack.pop();
            events.push(Event::ClosureEnd { offset });
        } else {
            break;
        }
    }
}

/// Walks backwards from the `.` at `dot` collecting the receiver's
/// ident path (`a.b.c` → `["a","b","c"]`).
fn recv_path(src: &str, sig: &[Token], dot: usize) -> Vec<String> {
    let mut parts = Vec::new();
    let mut i = dot;
    loop {
        if i == 0 || text(src, sig, i) != "." {
            break;
        }
        let prev = i - 1;
        if kind(sig, prev) == Some(TokenKind::Ident) {
            parts.push(text(src, sig, prev).to_string());
            if prev == 0 {
                break;
            }
            i = prev - 1;
            if i == 0 && text(src, sig, i) != "." {
                break;
            }
        } else {
            // Chained call / index / literal receiver: unresolvable.
            return Vec::new();
        }
    }
    parts.reverse();
    parts
}

/// Reads the leading ident path of a call's first argument
/// (`&core.state` → `["core","state"]`). Empty when the first
/// argument is not a plain (optionally borrowed) path.
fn leading_arg_path(src: &str, sig: &[Token], lo: usize, hi: usize) -> Vec<String> {
    let mut i = lo;
    while i < hi && matches!(text(src, sig, i), "&" | "mut") {
        i += 1;
    }
    let mut parts = Vec::new();
    while i < hi && kind(sig, i) == Some(TokenKind::Ident) {
        parts.push(text(src, sig, i).to_string());
        if text(src, sig, i + 1) == "." && kind(sig, i + 2) == Some(TokenKind::Ident) {
            i += 2;
        } else {
            i += 1;
            break;
        }
    }
    // Only a *whole* first argument counts: `&a.b` then `)` or `,`.
    if parts.is_empty() || !matches!(text(src, sig, i), ")" | ",") {
        return Vec::new();
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        let tokens = lex(src);
        let sig: Vec<Token> = tokens
            .iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .copied()
            .collect();
        parse(src, &sig)
    }

    #[test]
    fn finds_fns_in_impls_and_mods() {
        let src = "\
struct S { m: Mutex<u32> }
impl S { fn one(&self) {} }
impl Drop for S { fn drop(&mut self) {} }
mod inner { pub fn two() {} }
fn three() {}
";
        let p = parsed(src);
        let names: Vec<(&str, Option<&str>)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_ty.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("one", Some("S")),
                ("drop", Some("S")),
                ("two", None),
                ("three", None),
            ]
        );
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields[0].name, "m");
        assert_eq!(p.structs[0].fields[0].ty, vec!["Mutex", "<", "u32", ">"]);
    }

    #[test]
    fn statics_and_generic_fns() {
        let src = "\
static LOCK_A: Mutex<u32> = Mutex::new(0);
fn f<F: Fn() -> u32>(g: F) -> Option<u32> { Some(g()) }
";
        let p = parsed(src);
        assert_eq!(p.statics.len(), 1);
        assert_eq!(p.statics[0].name, "LOCK_A");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "f");
        assert_eq!(p.fns[0].ret, vec!["Option", "<", "u32", ">"]);
    }

    #[test]
    fn call_events_carry_receiver_and_arg_paths() {
        let src = "fn f(&self) { let g = self.shared.queue.lock(); lock_recover(&core.state); }";
        let p = parsed(src);
        let calls: Vec<&CallEvent> = p.fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Call(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(calls.len(), 2);
        assert!(calls[0].method);
        assert_eq!(calls[0].recv, vec!["self", "shared", "queue"]);
        assert!(calls[0].terminal);
        assert!(!calls[1].method);
        assert_eq!(calls[1].arg_path, vec!["core", "state"]);
    }

    #[test]
    fn let_bindings_and_statement_ends() {
        let src = "fn f() { let mut st = q.lock(); st.push(1); }";
        let p = parsed(src);
        let mut lets = 0;
        let mut stmts = 0;
        for e in &p.fns[0].events {
            match e {
                Event::Let { binding, .. } => {
                    assert_eq!(binding.as_deref(), Some("st"));
                    lets += 1;
                }
                Event::StmtEnd { .. } => stmts += 1,
                _ => {}
            }
        }
        assert_eq!(lets, 1);
        assert_eq!(stmts, 2);
    }

    #[test]
    fn closures_are_marked() {
        let src = "fn f() { spawn(move || { work(); }); xs.map(|x| x.lock()); a || b; }";
        let p = parsed(src);
        let mut brace_closures = 0;
        let mut expr_closures = 0;
        for e in &p.fns[0].events {
            match e {
                Event::Open {
                    opener: Opener::Closure,
                    ..
                } => brace_closures += 1,
                Event::ClosureStart { .. } => expr_closures += 1,
                _ => {}
            }
        }
        assert_eq!(brace_closures, 1);
        assert_eq!(expr_closures, 1, "{:?}", p.fns[0].events);
    }

    #[test]
    fn loop_openers_are_tagged() {
        let src = "fn f() { loop { while x { if y { } } } }";
        let p = parsed(src);
        let openers: Vec<Opener> = p.fns[0]
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Open { opener, .. } => Some(*opener),
                _ => None,
            })
            .collect();
        assert_eq!(
            openers,
            vec![Opener::Plain, Opener::Loop, Opener::While, Opener::Plain]
        );
    }

    #[test]
    fn scopes_balance_on_well_formed_input() {
        let src = "fn f() { { a(); } match x { A => { b(); } _ => c(), } }";
        let p = parsed(src);
        let mut depth = 0isize;
        for e in &p.fns[0].events {
            match e {
                Event::Open { .. } => depth += 1,
                Event::Close { .. } => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in [
            "fn f( {",
            "impl } {",
            "fn f() { | }",
            "struct S { x: , }",
            "static X",
            "fn f() { a.b.(); }",
            "fn f() { (|; }",
            "r#fn r#struct",
        ] {
            let _ = parsed(src);
        }
    }
}
