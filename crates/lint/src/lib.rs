//! `gopim-lint` — the repo's determinism & hermeticity linter.
//!
//! The GoPIM reproduction's evaluation story rests on contracts no
//! compiler checks: bit-determinism across thread counts (the
//! parallel runtime's ordered-reduction rule), a bitwise zero-cost
//! inert path for telemetry and fault injection, and a strict
//! no-crates.io hermetic policy. This crate makes those contracts
//! machine-checked on every build, in the same std-only style as the
//! rest of the workspace:
//!
//! - a lossless, panic-free Rust **lexer** ([`lexer`]) so rules match
//!   real tokens, never text inside strings or comments;
//! - a declarative **rule registry** ([`rules::RULES`]) with per-file
//!   context (library vs test/bench/bin classification, `#[cfg(test)]`
//!   regions);
//! - inline `// lint:allow(<rule>): <reason>` **suppressions** with
//!   mandatory reasons;
//! - a committed **ratcheting baseline** (`lint-baseline.json`) for
//!   grandfathered findings — counts may only decrease, and any new
//!   finding fails the run;
//! - a **JSON report** mode (`GOPIM_LINT_JSON`) whose output parses
//!   with the in-repo JSON parser from `gopim-obs`.
//!
//! Run it as `gopim lint` (or `scripts/lint.sh`); see DESIGN.md §10.

#![warn(missing_docs)]

pub mod baseline;
pub mod context;
pub mod engine;
pub mod lexer;
pub mod lockgraph;
pub mod manifest;
pub mod parse;
pub mod report;
pub mod rules;
pub mod symbols;

use std::path::{Path, PathBuf};

pub use baseline::Baseline;
pub use report::Outcome;
pub use rules::Finding;

/// Name of the committed baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";

/// Environment variable naming a path for the JSON report.
pub const JSON_ENV: &str = "GOPIM_LINT_JSON";

/// Finds the enclosing workspace root: the nearest ancestor of `start`
/// whose `Cargo.toml` declares `[workspace]`.
///
/// # Errors
///
/// Returns a message when no ancestor qualifies.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    Err(format!(
        "no workspace root above {} (looked for a Cargo.toml with [workspace])",
        start.display()
    ))
}

/// Loads the baseline committed at `root`, or an empty baseline when
/// the file does not exist.
///
/// # Errors
///
/// Returns a message when the file exists but cannot be read or
/// parsed.
pub fn load_baseline(root: &Path) -> Result<Baseline, String> {
    let path = root.join(BASELINE_FILE);
    if !path.is_file() {
        return Ok(Baseline::default());
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Baseline::parse(&text)
}

/// Lints the workspace at `root` against its committed baseline.
///
/// # Errors
///
/// Returns a message on I/O failure or a malformed baseline; rule
/// findings are *not* errors — inspect [`Outcome::clean`].
pub fn lint_workspace(root: &Path) -> Result<Outcome, String> {
    let baseline = load_baseline(root)?;
    engine::lint_root(root, &baseline)
}

/// Rewrites `lint-baseline.json` at `root` from `outcome`'s findings
/// and returns the number of grandfathered `(file, rule)` pairs.
///
/// # Errors
///
/// Returns a message when the file cannot be written.
pub fn update_baseline(root: &Path, outcome: &Outcome) -> Result<usize, String> {
    let counts = baseline::count_findings(&outcome.findings);
    let path = root.join(BASELINE_FILE);
    std::fs::write(&path, Baseline::render(&counts))
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(counts.len())
}

/// Shrinks `lint-baseline.json` at `root` to what `outcome` still
/// justifies: each `(file, rule)` budget drops to the actual count
/// (zeros are removed) and never grows. Returns the number of stale
/// entries pruned. Unlike [`update_baseline`], this can never
/// grandfather a new finding.
///
/// # Errors
///
/// Returns a message on an unreadable/unwritable baseline file.
pub fn prune_baseline(root: &Path, outcome: &Outcome) -> Result<usize, String> {
    let actual = baseline::count_findings(&outcome.findings);
    let old = load_baseline(root)?;
    let mut pruned = 0usize;
    let mut counts = baseline::Counts::new();
    for (key, &budget) in &old.counts {
        let kept = budget.min(actual.get(key).copied().unwrap_or(0));
        if kept < budget {
            pruned += 1;
        }
        if kept > 0 {
            counts.insert(key.clone(), kept);
        }
    }
    if pruned > 0 {
        let path = root.join(BASELINE_FILE);
        std::fs::write(&path, Baseline::render(&counts))
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(pruned)
}

/// Builds the lock-acquisition graph for the workspace at `root` —
/// the static half of the concurrency-safety analyzer, exposed for
/// `gopim lint --locks`. Findings in the result have already been
/// filtered through inline suppressions.
///
/// # Errors
///
/// Returns a message on I/O failure.
pub fn lock_graph(root: &Path) -> Result<lockgraph::Analysis, String> {
    let sources = engine::lib_sources(root)?;
    Ok(lockgraph::analyze(&sources))
}
