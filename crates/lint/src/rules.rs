//! The rule registry and the token-level matcher.
//!
//! Each rule states *what tokens* it matches (a [`Matcher`]), *where*
//! it applies (an [`Applies`] scope plus path exemptions), and the
//! contract it enforces. Adding a rule is one new entry in [`RULES`]
//! — the engine, the suppression machinery, the baseline ratchet and
//! the reports all pick it up automatically (see DESIGN.md §10).
//!
//! Rules never look at raw text: they walk the significant tokens
//! produced by [`crate::lexer`], so nothing inside strings or
//! comments can fire a finding.

use crate::context::{FileContext, FileKind};
use crate::lexer::{Token, TokenKind};

/// How a rule recognizes an offending token.
#[derive(Debug, Clone, Copy)]
pub enum Matcher {
    /// A bare identifier with one of these exact spellings
    /// (`HashMap`, `Instant`, …) — also catches `use` imports.
    IdentAny(&'static [&'static str]),
    /// A method call: `.` immediately followed by one of these
    /// identifiers (`.unwrap()`, `.expect(…)`).
    MethodCall(&'static [&'static str]),
    /// A macro invocation: one of these identifiers immediately
    /// followed by `!` (`panic!`, `println!`, `dbg!`).
    MacroCall(&'static [&'static str]),
}

/// Where a rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applies {
    /// Library code only — tests, benches, binaries and examples are
    /// free zones.
    Lib,
    /// Library code *and* binaries/examples (contracts that hold for
    /// everything shipped, like seeded randomness).
    LibAndBin,
}

impl Applies {
    fn includes(self, kind: FileKind) -> bool {
        match self {
            Applies::Lib => kind == FileKind::Lib,
            Applies::LibAndBin => {
                matches!(kind, FileKind::Lib | FileKind::Bin | FileKind::Example)
            }
        }
    }
}

/// One contract the linter enforces.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case name, used in `lint:allow(...)` and the
    /// baseline.
    pub name: &'static str,
    /// One-line statement of the contract.
    pub summary: &'static str,
    /// Token patterns that violate it.
    pub matchers: &'static [Matcher],
    /// Scope.
    pub applies: Applies,
    /// Workspace-relative path prefixes where the rule is moot (e.g.
    /// the telemetry crate owns the wall clock).
    pub exempt_paths: &'static [&'static str],
}

/// Reported when a `lint:allow` has no reason string or is otherwise
/// unparsable; not a token rule, but shares the rule namespace so it
/// can appear in reports and the baseline.
pub const MALFORMED_SUPPRESSION: &str = "malformed-suppression";

/// The Cargo.toml hermeticity rule's name (findings come from the
/// manifest scanner, not the token matcher).
pub const NO_EXTERNAL_DEPS: &str = "no-external-deps";

/// The concurrency rules: findings come from the lock-graph pass
/// ([`crate::lockgraph`]), not the token matcher, but they share the
/// rule namespace so suppressions, reports and the baseline treat
/// them like any other rule. Library code only; `#[cfg(test)]`
/// regions are skipped (tests seed deliberate inversions).
pub const ANALYSIS_RULES: &[(&str, &str)] = &[
    (
        crate::lockgraph::LOCK_ORDER_INVERSION,
        "the lock-acquisition graph must be cycle-free; a cycle is a \
         lock-order inversion — a potential deadlock",
    ),
    (
        crate::lockgraph::GUARD_HELD_ACROSS_BLOCKING_CALL,
        "a lock guard must not stay live across recv/join/accept/\
         socket-read calls",
    ),
    (
        crate::lockgraph::CONDVAR_WAIT_WITHOUT_LOOP,
        "condvar waits re-check their predicate in a while/loop \
         (wakeups are spurious)",
    ),
];

/// Whether `name` is any rule the linter can emit (token, manifest,
/// suppression or analysis).
pub fn known_rule(name: &str) -> bool {
    rule_named(name).is_some()
        || name == MALFORMED_SUPPRESSION
        || name == NO_EXTERNAL_DEPS
        || ANALYSIS_RULES.iter().any(|(n, _)| *n == name)
}

/// The registry. Order is the report's per-rule summary order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "no-nondeterministic-time",
        summary: "simulation and library code must not read the wall clock \
                  (bit-determinism across runs and thread counts)",
        matchers: &[Matcher::IdentAny(&["Instant", "SystemTime"])],
        applies: Applies::Lib,
        // The serve crate owns real deadlines, read timeouts and
        // latency measurement — wall-clock use is its job; the
        // simulation results it transports stay deterministic.
        exempt_paths: &[
            "crates/obs/",
            "crates/testkit/src/bench.rs",
            "crates/serve/",
        ],
    },
    Rule {
        name: "no-unordered-hash-iteration",
        summary: "HashMap/HashSet iterate in RandomState order; library code \
                  must use BTreeMap/BTreeSet or sort explicitly",
        matchers: &[Matcher::IdentAny(&["HashMap", "HashSet"])],
        applies: Applies::Lib,
        exempt_paths: &[],
    },
    Rule {
        name: "no-panic-in-lib",
        summary: "library code returns typed errors; unwrap/expect/panic are \
                  for tests, benches and binaries",
        matchers: &[
            Matcher::MethodCall(&["unwrap", "expect"]),
            Matcher::MacroCall(&["panic", "unreachable", "todo", "unimplemented"]),
        ],
        applies: Applies::Lib,
        exempt_paths: &[],
    },
    Rule {
        name: "no-unseeded-randomness",
        summary: "all randomness flows through gopim-rng seeds; OS entropy and \
                  per-process hash seeds are banned",
        matchers: &[Matcher::IdentAny(&[
            "RandomState",
            "thread_rng",
            "from_entropy",
            "OsRng",
            "getrandom",
        ])],
        applies: Applies::LibAndBin,
        exempt_paths: &[],
    },
    Rule {
        name: "no-print-in-lib",
        summary: "stdout belongs to binaries; println!/dbg! in a library \
                  breaks the byte-identical-output telemetry guarantee",
        matchers: &[Matcher::MacroCall(&["println", "print", "dbg"])],
        applies: Applies::Lib,
        exempt_paths: &[],
    },
    Rule {
        name: NO_EXTERNAL_DEPS,
        summary: "the workspace is hermetic: no crates.io/git dependencies, \
                  no subprocess escape hatches",
        matchers: &[Matcher::IdentAny(&["Command"])],
        applies: Applies::LibAndBin,
        exempt_paths: &[],
    },
];

/// Looks a rule up by name.
pub fn rule_named(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// One raw (pre-suppression, pre-baseline) finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative file, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule name (one of [`RULES`] or [`MALFORMED_SUPPRESSION`]).
    pub rule: String,
    /// Human-readable description of this occurrence.
    pub message: String,
}

/// Runs every token rule over one file. `sig` must be the significant
/// (non-whitespace, non-comment) tokens of `src`.
pub fn check_tokens(ctx: &FileContext, src: &str, sig: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in RULES {
        if !rule.applies.includes(ctx.kind) {
            continue;
        }
        if rule.exempt_paths.iter().any(|p| ctx.path.starts_with(p)) {
            continue;
        }
        for matcher in rule.matchers {
            match_one(ctx, src, sig, rule, matcher, &mut findings);
        }
    }
    findings
}

fn match_one(
    ctx: &FileContext,
    src: &str,
    sig: &[Token],
    rule: &Rule,
    matcher: &Matcher,
    findings: &mut Vec<Finding>,
) {
    for (i, tok) in sig.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let text = tok.text(src);
        let hit = match matcher {
            Matcher::IdentAny(names) => names.contains(&text).then(|| format!("`{text}`")),
            Matcher::MethodCall(names) => (names.contains(&text)
                && i > 0
                && sig[i - 1].kind == TokenKind::Punct
                && sig[i - 1].text(src) == ".")
                .then(|| format!("`.{text}()`")),
            Matcher::MacroCall(names) => (names.contains(&text)
                && sig.get(i + 1).is_some_and(|n| n.text(src) == "!"))
            .then(|| format!("`{text}!`")),
        };
        let Some(what) = hit else {
            continue;
        };
        if ctx.in_test_region(tok.start) {
            continue;
        }
        findings.push(Finding {
            file: ctx.path.clone(),
            line: ctx.lines.line_of(tok.start),
            rule: rule.name.to_string(),
            message: format!("{what} — {}", rule.summary),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let tokens = lex(src);
        let ctx = FileContext::new(path, src, &tokens);
        let sig: Vec<Token> = tokens
            .iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .copied()
            .collect();
        check_tokens(&ctx, src, &sig)
    }

    #[test]
    fn hash_maps_fire_only_in_lib_code() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }\n";
        let hits = run("crates/x/src/lib.rs", src);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|f| f.rule == "no-unordered-hash-iteration"));
        assert_eq!(hits[0].line, 1);
        assert!(run("crates/x/tests/t.rs", src).is_empty());
        assert!(run("crates/x/src/bin/tool.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// HashMap in a comment\nfn f() -> &'static str { \"Instant::now()\" }\n";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_needs_a_method_call_shape() {
        let src = "fn unwrap() {}\nfn f(x: Option<u32>) { x.unwrap(); unwrap(); }\n";
        let hits = run("crates/x/src/lib.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "no-panic-in-lib");
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn macros_need_the_bang() {
        let src = "fn panic() {}\nfn f() { panic(); panic!(\"boom\"); }\n";
        let hits = run("crates/x/src/lib.rs", src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("panic!"));
    }

    #[test]
    fn cfg_test_regions_are_free_zones() {
        let src = "\
fn lib(x: Option<u32>) -> u32 { x.unwrap() }\n\
#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        let hits = run("crates/x/src/lib.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn time_rule_exempts_the_telemetry_crate() {
        let src = "use std::time::Instant;\n";
        assert!(run("crates/obs/src/lib.rs", src).is_empty());
        assert!(run("crates/testkit/src/bench.rs", src).is_empty());
        assert_eq!(run("crates/par/src/pool.rs", src).len(), 1);
    }

    #[test]
    fn randomness_rule_reaches_binaries() {
        let src = "use std::hash::RandomState;\n";
        assert_eq!(run("crates/x/src/bin/tool.rs", src).len(), 1);
        assert_eq!(run("crates/x/src/lib.rs", src).len(), 1);
        assert!(run("crates/x/tests/t.rs", src).is_empty());
    }

    #[test]
    fn every_rule_has_a_unique_name() {
        let mut names: Vec<&str> = RULES.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RULES.len());
        assert!(rule_named("no-panic-in-lib").is_some());
        assert!(rule_named("nope").is_none());
    }
}
