//! The workspace walker and per-file orchestration.
//!
//! Mirrors Cargo's target auto-discovery: the workspace root manifest
//! plus every `crates/*` member, and within each crate the `src/`,
//! `tests/`, `benches/` and `examples/` trees (the workspace root's
//! own `tests/` and `examples/` are shared integration suites and are
//! scanned too). Directory iteration is sorted, so findings come out
//! in a deterministic order on every platform — the linter holds
//! itself to the determinism contract it enforces.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::baseline::{count_findings, Baseline};
use crate::context::{FileContext, FileKind};
use crate::lexer::{lex, Token, TokenKind};
use crate::lockgraph;
use crate::manifest::check_manifest;
use crate::report::Outcome;
use crate::rules::{check_tokens, Finding, MALFORMED_SUPPRESSION};

/// Subdirectories of a crate that hold Rust targets.
const TARGET_DIRS: &[&str] = &["src", "tests", "benches", "examples"];

/// Lints everything under `root` against `baseline`.
///
/// # Errors
///
/// Returns a message on I/O failure (unreadable file or directory).
pub fn lint_root(root: &Path, baseline: &Baseline) -> Result<Outcome, String> {
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    let mut files_scanned = 0usize;

    for manifest in find_manifests(root)? {
        let text = read(&manifest)?;
        findings.extend(check_manifest(&relative(root, &manifest), &text));
        files_scanned += 1;
    }
    let mut lib_files: Vec<(String, String)> = Vec::new();
    for source in find_sources(root)? {
        let text = read(&source)?;
        let rel = relative(root, &source);
        let (mut file_findings, file_suppressed) = lint_source(&rel, &text);
        findings.append(&mut file_findings);
        suppressed += file_suppressed;
        files_scanned += 1;
        if FileKind::classify(&rel) == FileKind::Lib {
            lib_files.push((rel, text));
        }
    }

    // The concurrency pass runs over library code as a whole (the
    // lock graph spans files); its findings share the pipeline.
    let analysis = lockgraph::analyze(&lib_files);
    findings.extend(analysis.findings);
    suppressed += analysis.suppressed;

    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    let ratchet = baseline.ratchet(&count_findings(&findings));
    Ok(Outcome {
        findings,
        ratchet,
        suppressed,
        files_scanned,
    })
}

/// Lints one Rust source text. Returns the unsuppressed findings and
/// the count of findings silenced by well-formed suppressions.
pub fn lint_source(path: &str, src: &str) -> (Vec<Finding>, usize) {
    let tokens = lex(src);
    let ctx = FileContext::new(path, src, &tokens);
    let sig: Vec<Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .copied()
        .collect();
    let mut suppressed = 0usize;
    let mut findings = Vec::new();
    for finding in check_tokens(&ctx, src, &sig) {
        if ctx.suppressed(&finding.rule, finding.line) {
            suppressed += 1;
        } else {
            findings.push(finding);
        }
    }
    for s in &ctx.suppressions {
        if !s.has_reason {
            findings.push(Finding {
                file: path.to_string(),
                line: s.line,
                rule: MALFORMED_SUPPRESSION.to_string(),
                message: "`lint:allow` needs a reason: \
                          `// lint:allow(<rule>): <why this is sound>`"
                    .to_string(),
            });
        }
    }
    (findings, suppressed)
}

/// Every `FileKind::Lib` source under `root`, as workspace-relative
/// `(path, text)` pairs — the concurrency pass's input (used directly
/// by `gopim lint --locks`).
///
/// # Errors
///
/// Returns a message on I/O failure.
pub fn lib_sources(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for source in find_sources(root)? {
        let rel = relative(root, &source);
        if FileKind::classify(&rel) == FileKind::Lib {
            out.push((rel, read(&source)?));
        }
    }
    Ok(out)
}

/// Every manifest to scan: the root `Cargo.toml` plus one per crate
/// directory.
fn find_manifests(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        out.push(root_manifest);
    }
    for dir in crate_dirs(root)? {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    Ok(out)
}

/// Every `.rs` file to scan, sorted.
fn find_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    for target in TARGET_DIRS {
        let shared = root.join(target);
        if shared.is_dir() {
            dirs.push(shared);
        }
    }
    for crate_dir in crate_dirs(root)? {
        for target in TARGET_DIRS {
            let dir = crate_dir.join(target);
            if dir.is_dir() {
                dirs.push(dir);
            }
        }
    }
    let mut files = BTreeSet::new();
    for dir in dirs {
        collect_rs(&dir, &mut files)?;
    }
    Ok(files.into_iter().collect())
}

/// The workspace's member crate directories (`crates/*`), sorted.
fn crate_dirs(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates = root.join("crates");
    if !crates.is_dir() {
        return Ok(Vec::new());
    }
    let mut dirs: Vec<PathBuf> = Vec::new();
    let entries =
        fs::read_dir(&crates).map_err(|e| format!("read dir {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", crates.display()))?;
        let path = entry.path();
        if path.is_dir() && path.join("Cargo.toml").is_file() {
            dirs.push(path);
        }
    }
    dirs.sort();
    Ok(dirs)
}

fn collect_rs(dir: &Path, out: &mut BTreeSet<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.insert(path);
        }
    }
    Ok(())
}

fn read(path: &Path) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))
}

/// `path` relative to `root`, `/`-separated (stable across platforms
/// for reports, suppression exemptions and the baseline).
fn relative(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppressions_silence_findings_and_count() {
        let src = "\
use std::collections::HashMap; // lint:allow(no-unordered-hash-iteration): keyed, never iterated\n\
pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let (findings, suppressed) = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(suppressed, 1);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "no-panic-in-lib");
    }

    #[test]
    fn reasonless_suppressions_are_their_own_finding() {
        let src =
            "// lint:allow(no-panic-in-lib)\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let (findings, suppressed) = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(suppressed, 0);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&MALFORMED_SUPPRESSION));
        assert!(rules.contains(&"no-panic-in-lib"));
    }

    #[test]
    fn suppressing_the_wrong_rule_does_not_silence() {
        let src = "// lint:allow(no-print-in-lib): wrong rule\n\
                   pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let (findings, suppressed) = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(suppressed, 0);
        assert_eq!(findings.len(), 1);
    }
}
