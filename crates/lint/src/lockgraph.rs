//! The lock-acquisition graph and the concurrency rules.
//!
//! Built over the parse layer ([`crate::parse`]) and the symbol pass
//! ([`crate::symbols`]): **node** = a named lock class
//! (`<crate>::<field-or-static>`), **edge** A → B = somewhere in
//! library code, lock B is acquired while A's guard is live. Liveness
//! is lexical — a `let`-bound guard lives to the end of its scope (or
//! an explicit `drop`), a statement-temporary guard to the end of its
//! statement — and closures are barriers: a closure body starts with
//! an empty held set, because it may run on another thread, later, or
//! never. Within a crate, calls resolve one level deep: a call site
//! holding locks inherits the callee's *direct* acquisitions, and a
//! guard-returning helper (`Memo::lock`, `lock_recover`) acquires on
//! behalf of its caller.
//!
//! Three rules fall out of the walk (DESIGN.md §15):
//!
//! - `lock-order-inversion` — an edge that participates in a cycle
//!   (including recursive self-acquisition, a single-thread deadlock);
//! - `guard-held-across-blocking-call` — a guard live across `recv`/
//!   `join`/`accept`/socket reads;
//! - `condvar-wait-without-loop` — a condvar wait with no enclosing
//!   `loop`/`while` (spurious wakeups break the predicate).
//!
//! The same class names are used by the runtime lockdep witness in
//! `gopim-obs`, so a witnessed order matrix can be checked as a
//! subgraph of this static graph ([`check_witness`]).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use gopim_obs::export::{escape_json, parse_json, Json};

use crate::context::FileContext;
use crate::lexer::{lex, LineIndex, Token, TokenKind};
use crate::parse::{parse, CallEvent, Event, FnItem, Opener, ParsedFile};
use crate::rules::Finding;
use crate::symbols::{collect, crate_of, CrateSymbols, LockKind};

/// Rule name: a lock-graph cycle.
pub const LOCK_ORDER_INVERSION: &str = "lock-order-inversion";
/// Rule name: a live guard across a blocking call.
pub const GUARD_HELD_ACROSS_BLOCKING_CALL: &str = "guard-held-across-blocking-call";
/// Rule name: a condvar wait with no enclosing loop.
pub const CONDVAR_WAIT_WITHOUT_LOOP: &str = "condvar-wait-without-loop";

/// Files the concurrency pass never analyzes: the lockdep
/// instrumentation itself (its wrapper internals *are* the probe — the
/// `inner` mutex behind every `DepMutex` would otherwise alias into
/// one false class).
pub const EXEMPT_PATHS: &[&str] = &["crates/obs/src/lockdep.rs"];

/// Calls that block the thread while any held guard stays held.
/// `read` only counts with arguments (argument-less `.read()` is an
/// `RwLock` acquisition, `.read(buf)` is socket/file I/O).
const BLOCKING_CALLS: &[&str] = &[
    "recv",
    "recv_timeout",
    "join",
    "accept",
    "read",
    "read_exact",
    "read_to_end",
];

/// Update methods on the `Lazy*` metric statics. Each resolves the
/// instrument through the global registry, which takes the matching
/// `obs::*` registry lock (on first use) and releases it before
/// returning — an instantaneous acquisition, never a held guard.
/// (`timer` records at guard drop; modeling it at the call site is
/// faithful for LIFO drop order, which statement temporaries and
/// reverse-declaration drops guarantee.)
const METRIC_METHODS: &[&str] = &["add", "set", "record_max", "record", "record_ns", "timer"];

/// One node of the lock graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Mutex vs RwLock.
    pub kind: LockKind,
    /// Declaration site.
    pub file: String,
    /// Declaration line.
    pub line: usize,
}

/// One edge of the lock graph (first site wins; files are walked in
/// sorted order, so the choice is deterministic).
#[derive(Debug, Clone)]
pub struct Edge {
    /// Acquisition site (workspace-relative file).
    pub file: String,
    /// Acquisition line.
    pub line: usize,
    /// The callee this edge was inlined through, when not direct.
    pub via: Option<String>,
    /// Whether the edge participates in a cycle.
    pub cyclic: bool,
}

/// The workspace lock-acquisition graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Class name → declaration.
    pub nodes: BTreeMap<String, Node>,
    /// (holder, acquired) → site.
    pub edges: BTreeMap<(String, String), Edge>,
}

/// What [`analyze`] returns: findings (suppressions already applied),
/// the number of suppressed findings, and the graph.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Unsuppressed findings, sorted.
    pub findings: Vec<Finding>,
    /// Findings silenced by well-formed `lint:allow` comments.
    pub suppressed: usize,
    /// The lock graph.
    pub graph: LockGraph,
}

/// Per-function facts shared by the summary and walk passes.
struct FnFacts<'a> {
    item: &'a FnItem,
    file: &'a str,
}

/// Merged per-crate call summaries (one level of inlining).
#[derive(Default)]
struct Summaries {
    /// Method name → summary (fns with a self type).
    methods: BTreeMap<String, FnSum>,
    /// Free-fn name → summary.
    frees: BTreeMap<String, FnSum>,
}

#[derive(Default, Clone)]
struct FnSum {
    acquires: BTreeSet<String>,
    returns_guard: bool,
}

/// Runs the concurrency pass over library sources. `files` are
/// `(workspace-relative path, text)` pairs — the engine passes every
/// `FileKind::Lib` file outside [`EXEMPT_PATHS`]; `#[cfg(test)]`
/// regions are skipped here (tests create deliberate inversions).
pub fn analyze(files: &[(String, String)]) -> Analysis {
    let mut per_file: Vec<(String, ParsedFile, FileContext, LineIndex)> = Vec::new();
    let mut crates: BTreeMap<String, CrateSymbols> = BTreeMap::new();

    for (path, src) in files {
        if EXEMPT_PATHS.contains(&path.as_str()) {
            continue;
        }
        let tokens = lex(src);
        let ctx = FileContext::new(path, src, &tokens);
        let sig: Vec<Token> = tokens
            .iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .copied()
            .collect();
        let mut parsed = parse(src, &sig);
        // Test regions declare fixture locks and deliberate
        // inversions; drop everything they contain.
        parsed.fns.retain(|f| !ctx.in_test_region(f.offset));
        parsed.statics.retain(|s| !ctx.in_test_region(s.offset));
        parsed.structs.retain(|s| {
            s.fields
                .first()
                .is_none_or(|f| !ctx.in_test_region(f.offset))
        });
        let lines = LineIndex::new(src);
        let krate = crate_of(path);
        let syms = crates.entry(krate.clone()).or_insert_with(|| CrateSymbols {
            krate,
            ..CrateSymbols::default()
        });
        collect(syms, path, &parsed, |o| lines.line_of(o));
        per_file.push((path.clone(), parsed, ctx, lines));
    }

    // Pass A: per-crate call summaries from direct acquisitions.
    let mut summaries: BTreeMap<String, Summaries> = BTreeMap::new();
    for (path, parsed, _, _) in &per_file {
        let krate = crate_of(path);
        let Some(syms) = crates.get(&krate) else {
            continue;
        };
        let sums = summaries.entry(krate).or_default();
        for f in &parsed.fns {
            let mut sum = FnSum {
                returns_guard: f.ret.iter().any(|t| t.ends_with("Guard")),
                ..FnSum::default()
            };
            for e in &f.events {
                if let Event::Call(c) = e {
                    if let Some(class) =
                        resolve_acquisition(c, syms).or_else(|| resolve_metric(c, syms))
                    {
                        sum.acquires.insert(class);
                    }
                }
            }
            let map = if f.self_ty.is_some() {
                &mut sums.methods
            } else {
                &mut sums.frees
            };
            let entry = map.entry(f.name.clone()).or_default();
            entry.acquires.extend(sum.acquires);
            entry.returns_guard |= sum.returns_guard;
        }
    }

    // Pass B: the liveness walk — edges plus the walk-time rules.
    let mut graph = LockGraph::default();
    for syms in crates.values() {
        for lock in syms.locks.values() {
            graph.nodes.insert(
                lock.class.clone(),
                Node {
                    kind: lock.kind,
                    file: lock.file.clone(),
                    line: lock.line,
                },
            );
        }
    }
    let mut raw_findings: Vec<Finding> = Vec::new();
    for (path, parsed, _, lines) in &per_file {
        let krate = crate_of(path);
        let (Some(syms), Some(sums)) = (crates.get(&krate), summaries.get(&krate)) else {
            continue;
        };
        for f in &parsed.fns {
            walk_fn(
                &FnFacts {
                    item: f,
                    file: path,
                },
                syms,
                sums,
                lines,
                &mut graph.edges,
                &mut raw_findings,
            );
        }
    }

    // Cycle detection: an edge is cyclic iff its target reaches its
    // source.
    let mut adjacency: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (from, to) in graph.edges.keys() {
        adjacency
            .entry(from.clone())
            .or_default()
            .insert(to.clone());
    }
    let cyclic: Vec<(String, String)> = graph
        .edges
        .keys()
        .filter(|(from, to)| reaches(&adjacency, to, from))
        .cloned()
        .collect();
    for key in &cyclic {
        let cycle = cycle_path(&adjacency, &key.0, &key.1);
        if let Some(edge) = graph.edges.get_mut(key) {
            edge.cyclic = true;
            let message = if key.0 == key.1 {
                format!(
                    "recursive acquisition: `{}` is taken while already held \
                     — a single-thread self-deadlock",
                    key.0
                )
            } else {
                format!(
                    "acquiring `{}` while holding `{}` closes the cycle {cycle}",
                    key.1, key.0
                )
            };
            let message = match &edge.via {
                Some(callee) => format!("{message} (via call to `{callee}`)"),
                None => message,
            };
            raw_findings.push(Finding {
                file: edge.file.clone(),
                line: edge.line,
                rule: LOCK_ORDER_INVERSION.to_string(),
                message,
            });
        }
    }

    // Suppressions, against each finding's own file context.
    let ctx_by_path: BTreeMap<&str, &FileContext> = per_file
        .iter()
        .map(|(path, _, ctx, _)| (path.as_str(), ctx))
        .collect();
    let mut out = Analysis {
        graph,
        ..Analysis::default()
    };
    raw_findings.sort();
    for finding in raw_findings {
        let silenced = ctx_by_path
            .get(finding.file.as_str())
            .is_some_and(|ctx| ctx.suppressed(&finding.rule, finding.line));
        if silenced {
            out.suppressed += 1;
        } else {
            out.findings.push(finding);
        }
    }
    out
}

/// Resolves a call event to a lock class when it is an acquisition:
/// `.lock()` / argument-less `.read()` / `.write()` on a receiver path
/// ending in a known lock, or a passthrough helper
/// (`lock_recover(&core.state)`).
fn resolve_acquisition(c: &CallEvent, syms: &CrateSymbols) -> Option<String> {
    if c.method {
        let field = c.recv.last()?;
        let lock = syms.locks.get(field)?;
        let acquires = match (c.name.as_str(), lock.kind) {
            ("lock", LockKind::Mutex) => true,
            ("read" | "write", LockKind::RwLock) => c.args_empty,
            _ => false,
        };
        return acquires.then(|| lock.class.clone());
    }
    if syms.lock_passthroughs.contains(&c.name) {
        let field = c.arg_path.last()?;
        return Some(syms.locks.get(field)?.class.clone());
    }
    None
}

/// Resolves a call event to the registry class a `Lazy*` metric
/// update acquires (`MEMO_HITS.add(1)` → `obs::counters`).
fn resolve_metric(c: &CallEvent, syms: &CrateSymbols) -> Option<String> {
    if !c.method || !METRIC_METHODS.contains(&c.name.as_str()) {
        return None;
    }
    let field = c.recv.last()?;
    syms.metric_statics
        .get(field)
        .map(|class| (*class).to_string())
}

/// Whether a call event is a condvar wait.
fn is_wait(c: &CallEvent, syms: &CrateSymbols) -> bool {
    if c.method {
        c.name == "wait" && c.recv.last().is_some_and(|r| syms.condvars.contains(r))
    } else {
        syms.wait_passthroughs.contains(&c.name)
            && c.arg_path.last().is_some_and(|r| syms.condvars.contains(r))
    }
}

struct Guard {
    class: String,
    binding: Option<String>,
    depth: usize,
}

/// Walks one function body tracking guard liveness.
fn walk_fn(
    facts: &FnFacts<'_>,
    syms: &CrateSymbols,
    sums: &Summaries,
    lines: &LineIndex,
    edges: &mut BTreeMap<(String, String), Edge>,
    findings: &mut Vec<Finding>,
) {
    let mut frames: Vec<Opener> = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut pending_let: Option<Option<String>> = None;

    for event in &facts.item.events {
        match event {
            Event::Open { opener, .. } => {
                frames.push(*opener);
                pending_let = None;
            }
            Event::ClosureStart { .. } => {
                frames.push(Opener::Closure);
                pending_let = None;
            }
            Event::Close { .. } | Event::ClosureEnd { .. } => {
                frames.pop();
                guards.retain(|g| g.depth <= frames.len());
                pending_let = None;
            }
            Event::StmtEnd { .. } => {
                guards.retain(|g| g.binding.is_some() || g.depth < frames.len());
                pending_let = None;
            }
            Event::Let { binding, .. } => {
                pending_let = Some(binding.clone());
            }
            Event::Call(c) => {
                let held = held_classes(&frames, &guards);
                if let Some(class) = resolve_acquisition(c, syms) {
                    acquire(
                        facts,
                        c,
                        class,
                        None,
                        &held,
                        &mut guards,
                        &mut pending_let,
                        &frames,
                        lines,
                        edges,
                    );
                    continue;
                }
                if let Some(class) = resolve_metric(c, syms) {
                    // Instantaneous: the registry lock is released
                    // before the update returns, so record the edges
                    // without pushing a guard.
                    let line = lines.line_of(c.offset);
                    for from in &held {
                        record_edge(edges, from, &class, facts.file, line, None);
                    }
                    continue;
                }
                if is_wait(c, syms) {
                    let in_loop = enclosing_loop(&frames);
                    if !in_loop {
                        findings.push(Finding {
                            file: facts.file.to_string(),
                            line: lines.line_of(c.offset),
                            rule: CONDVAR_WAIT_WITHOUT_LOOP.to_string(),
                            message: format!(
                                "`{}` outside any loop — condvar wakeups are spurious; \
                                 re-check the predicate in a `while`/`loop`",
                                c.name
                            ),
                        });
                    }
                    continue;
                }
                if !c.method && c.name == "drop" && c.arg_path.len() == 1 {
                    guards.retain(|g| g.binding.as_deref() != Some(c.arg_path[0].as_str()));
                    continue;
                }
                if !held.is_empty()
                    && BLOCKING_CALLS.contains(&c.name.as_str())
                    && (c.name != "read" || !c.args_empty)
                {
                    findings.push(Finding {
                        file: facts.file.to_string(),
                        line: lines.line_of(c.offset),
                        rule: GUARD_HELD_ACROSS_BLOCKING_CALL.to_string(),
                        message: format!(
                            "`.{}()` blocks while holding {} — park the guard first",
                            c.name,
                            held.iter()
                                .map(|h| format!("`{h}`"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    });
                    continue;
                }
                // One level of intra-crate inlining.
                let sum = if c.method {
                    sums.methods.get(&c.name)
                } else if syms.lock_passthroughs.contains(&c.name)
                    || syms.wait_passthroughs.contains(&c.name)
                {
                    None
                } else {
                    sums.frees.get(&c.name)
                };
                let Some(sum) = sum else { continue };
                if sum.returns_guard && sum.acquires.len() == 1 {
                    // A guard-returning helper acquires for its caller
                    // (`Memo::lock`, `Store::lock_mem`).
                    if let Some(class) = sum.acquires.iter().next().cloned() {
                        acquire(
                            facts,
                            c,
                            class,
                            Some(c.name.clone()),
                            &held,
                            &mut guards,
                            &mut pending_let,
                            &frames,
                            lines,
                            edges,
                        );
                    }
                } else if !held.is_empty() {
                    for to in &sum.acquires {
                        for from in &held {
                            record_edge(
                                edges,
                                from,
                                to,
                                facts.file,
                                lines.line_of(c.offset),
                                Some(c.name.clone()),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Classes visibly held: guards above the innermost closure barrier,
/// deduplicated in acquisition order.
fn held_classes(frames: &[Opener], guards: &[Guard]) -> Vec<String> {
    let barrier = frames
        .iter()
        .rposition(|o| *o == Opener::Closure)
        .map_or(0, |i| i + 1);
    let mut seen = BTreeSet::new();
    let mut held = Vec::new();
    for g in guards {
        if g.depth >= barrier && seen.insert(g.class.as_str()) {
            held.push(g.class.clone());
        }
    }
    held
}

/// Whether any scope between the innermost closure barrier and the
/// current position is a loop.
fn enclosing_loop(frames: &[Opener]) -> bool {
    let barrier = frames
        .iter()
        .rposition(|o| *o == Opener::Closure)
        .map_or(0, |i| i + 1);
    frames[barrier.min(frames.len())..]
        .iter()
        .any(|o| matches!(o, Opener::Loop | Opener::While | Opener::For))
}

#[allow(clippy::too_many_arguments)]
fn acquire(
    facts: &FnFacts<'_>,
    c: &CallEvent,
    class: String,
    via: Option<String>,
    held: &[String],
    guards: &mut Vec<Guard>,
    pending_let: &mut Option<Option<String>>,
    frames: &[Opener],
    lines: &LineIndex,
    edges: &mut BTreeMap<(String, String), Edge>,
) {
    let line = lines.line_of(c.offset);
    for from in held {
        record_edge(edges, from, &class, facts.file, line, via.clone());
    }
    let binding = if c.terminal {
        pending_let.take().flatten()
    } else {
        None
    };
    guards.push(Guard {
        class,
        binding,
        depth: frames.len(),
    });
}

fn record_edge(
    edges: &mut BTreeMap<(String, String), Edge>,
    from: &str,
    to: &str,
    file: &str,
    line: usize,
    via: Option<String>,
) {
    edges
        .entry((from.to_string(), to.to_string()))
        .or_insert(Edge {
            file: file.to_string(),
            line,
            via,
            cyclic: false,
        });
}

/// BFS reachability over the adjacency map.
fn reaches(adjacency: &BTreeMap<String, BTreeSet<String>>, from: &str, to: &str) -> bool {
    let mut queue: VecDeque<&str> = VecDeque::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    queue.push_back(from);
    seen.insert(from);
    while let Some(n) = queue.pop_front() {
        if n == to {
            return true;
        }
        if let Some(next) = adjacency.get(n) {
            for m in next {
                if seen.insert(m.as_str()) {
                    queue.push_back(m.as_str());
                }
            }
        }
    }
    false
}

/// A representative cycle string `a → b → .. → a` for the cyclic edge
/// `(a, b)` (shortest path b → a by BFS over sorted adjacency, so the
/// choice is deterministic).
fn cycle_path(adjacency: &BTreeMap<String, BTreeSet<String>>, a: &str, b: &str) -> String {
    let mut parents: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    queue.push_back(b);
    while let Some(n) = queue.pop_front() {
        if n == a {
            break;
        }
        if let Some(next) = adjacency.get(n) {
            for m in next {
                if m != b && !parents.contains_key(m.as_str()) {
                    parents.insert(m.as_str(), n);
                    queue.push_back(m.as_str());
                }
            }
        }
    }
    let mut rev = vec![a];
    let mut cur = a;
    while let Some(p) = parents.get(cur) {
        rev.push(p);
        cur = p;
        if *p == b {
            break;
        }
    }
    if rev.last() != Some(&b) {
        rev.push(b);
    }
    rev.push(a);
    rev.reverse();
    format!("`{}`", rev.join("` → `"))
}

impl LockGraph {
    /// Whether the graph has any cyclic edge (call after [`analyze`],
    /// which marks them).
    pub fn has_cycles(&self) -> bool {
        self.edges.values().any(|e| e.cyclic)
    }

    /// Graphviz DOT rendering (cyclic edges in red).
    pub fn render_dot(&self) -> String {
        let mut out = String::from("digraph locks {\n    rankdir=LR;\n");
        for (class, node) in &self.nodes {
            out.push_str(&format!(
                "    \"{class}\" [label=\"{class}\\n{}:{}\"];\n",
                node.file, node.line
            ));
        }
        for ((from, to), edge) in &self.edges {
            let attrs = if edge.cyclic {
                " [color=red, penwidth=2]"
            } else {
                ""
            };
            out.push_str(&format!("    \"{from}\" -> \"{to}\"{attrs};\n"));
        }
        out.push_str("}\n");
        out
    }

    /// JSON rendering (parses with `gopim_obs::export::parse_json`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"nodes\": [\n");
        let nodes: Vec<String> = self
            .nodes
            .iter()
            .map(|(class, n)| {
                format!(
                    "    {{\"class\": \"{}\", \"kind\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
                    escape_json(class),
                    match n.kind {
                        LockKind::Mutex => "mutex",
                        LockKind::RwLock => "rwlock",
                    },
                    escape_json(&n.file),
                    n.line
                )
            })
            .collect();
        out.push_str(&nodes.join(",\n"));
        out.push_str("\n  ],\n  \"edges\": [\n");
        let edges: Vec<String> = self
            .edges
            .iter()
            .map(|((from, to), e)| {
                let via = match &e.via {
                    Some(v) => format!("\"{}\"", escape_json(v)),
                    None => "null".to_string(),
                };
                format!(
                    "    {{\"from\": \"{}\", \"to\": \"{}\", \"file\": \"{}\", \
                     \"line\": {}, \"via\": {via}, \"cyclic\": {}}}",
                    escape_json(from),
                    escape_json(to),
                    escape_json(&e.file),
                    e.line,
                    e.cyclic
                )
            })
            .collect();
        out.push_str(&edges.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Human one-screen summary.
    pub fn render_human(&self) -> String {
        let cycles = self.edges.values().filter(|e| e.cyclic).count();
        let mut out = format!(
            "lock graph: {} classes, {} edges, {} cyclic\n",
            self.nodes.len(),
            self.edges.len(),
            cycles
        );
        for (class, node) in &self.nodes {
            out.push_str(&format!("  node {class}  ({}:{})\n", node.file, node.line));
        }
        for ((from, to), edge) in &self.edges {
            let via = edge
                .via
                .as_ref()
                .map(|v| format!(" via `{v}`"))
                .unwrap_or_default();
            let mark = if edge.cyclic { "  CYCLE" } else { "" };
            out.push_str(&format!(
                "  edge {from} -> {to}{via}  ({}:{}){mark}\n",
                edge.file, edge.line
            ));
        }
        out
    }
}

/// A parsed runtime lockdep dump (`GOPIM_LOCKDEP_DUMP`).
#[derive(Debug, Default)]
pub struct Witness {
    /// Every class acquired at least once.
    pub classes: Vec<String>,
    /// Witnessed (first, second) acquisition orders.
    pub edges: Vec<(String, String)>,
    /// Order-contradiction reports.
    pub violations: Vec<String>,
}

/// Parses a runtime lockdep dump.
///
/// # Errors
///
/// Returns a message when the text is not a dump in the expected
/// shape.
pub fn parse_witness(text: &str) -> Result<Witness, String> {
    let json = parse_json(text)?;
    let mut w = Witness::default();
    let classes = json
        .get("classes")
        .and_then(Json::as_arr)
        .ok_or("lockdep dump: missing \"classes\" array")?;
    for c in classes {
        w.classes.push(
            c.as_str()
                .ok_or("lockdep dump: non-string class")?
                .to_string(),
        );
    }
    let edges = json
        .get("edges")
        .and_then(Json::as_arr)
        .ok_or("lockdep dump: missing \"edges\" array")?;
    for e in edges {
        let from = e.get("from").and_then(Json::as_str);
        let to = e.get("to").and_then(Json::as_str);
        match (from, to) {
            (Some(f), Some(t)) => w.edges.push((f.to_string(), t.to_string())),
            _ => return Err("lockdep dump: edge without from/to".to_string()),
        }
    }
    if let Some(violations) = json.get("violations").and_then(Json::as_arr) {
        for v in violations {
            w.violations.push(
                v.get("what")
                    .and_then(Json::as_str)
                    .unwrap_or("order violation")
                    .to_string(),
            );
        }
    }
    Ok(w)
}

/// Checks a runtime witness against the static graph: every witnessed
/// class must be a static node, every witnessed order edge a static
/// edge, and the run must be violation-free. Returns the list of
/// discrepancies (empty = the witness is a subgraph, as required).
pub fn check_witness(graph: &LockGraph, witness: &Witness) -> Vec<String> {
    let mut problems = Vec::new();
    for class in &witness.classes {
        if !graph.nodes.contains_key(class) {
            problems.push(format!(
                "witnessed class `{class}` is not a static lock-graph node \
                 (wrapper name drifted from the declaration?)"
            ));
        }
    }
    for (from, to) in &witness.edges {
        if !graph.edges.contains_key(&(from.clone(), to.clone())) {
            problems.push(format!(
                "witnessed order `{from}` → `{to}` has no static edge \
                 (the analyzer missed an acquisition path)"
            ));
        }
    }
    for v in &witness.violations {
        problems.push(format!("runtime order violation: {v}"));
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> Vec<(String, String)> {
        vec![("crates/x/src/lib.rs".to_string(), src.to_string())]
    }

    const ABBA: &str = "\
use std::sync::Mutex;
pub static LOCK_A: Mutex<u32> = Mutex::new(0);
pub static LOCK_B: Mutex<u32> = Mutex::new(0);
fn lock_recover<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}
pub fn ab() -> u32 {
    let a = lock_recover(&LOCK_A);
    let b = lock_recover(&LOCK_B);
    *a + *b
}
pub fn ba() -> u32 {
    let b = lock_recover(&LOCK_B);
    let a = lock_recover(&LOCK_A);
    *a + *b
}
";

    #[test]
    fn abba_is_a_cycle() {
        let analysis = analyze(&lib(ABBA));
        assert!(analysis.graph.has_cycles());
        let inversions: Vec<&Finding> = analysis
            .findings
            .iter()
            .filter(|f| f.rule == LOCK_ORDER_INVERSION)
            .collect();
        assert_eq!(inversions.len(), 2, "{:?}", analysis.findings);
        assert!(inversions[0].message.contains("x::LOCK_A"));
        assert!(inversions[0].message.contains("x::LOCK_B"));
        assert!(analysis
            .graph
            .edges
            .contains_key(&("x::LOCK_A".to_string(), "x::LOCK_B".to_string())));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "\
use std::sync::Mutex;
pub static A: Mutex<u32> = Mutex::new(0);
pub static B: Mutex<u32> = Mutex::new(0);
pub fn f() -> u32 {
    let a = A.lock();
    let b = B.lock();
    *a + *b
}
pub fn g() -> u32 {
    let a = A.lock();
    let b = B.lock();
    *a + *b
}
";
        let analysis = analyze(&lib(src));
        assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
        assert!(!analysis.graph.has_cycles());
        assert_eq!(analysis.graph.edges.len(), 1);
    }

    #[test]
    fn recursive_acquisition_is_a_self_cycle() {
        let src = "\
struct Core { conns: Mutex<u32> }
impl Core {
    fn f(&self) {
        self.conns.lock().insert(make(self.conns.lock().get()));
    }
}
";
        let analysis = analyze(&lib(src));
        let inversion = analysis
            .findings
            .iter()
            .find(|f| f.rule == LOCK_ORDER_INVERSION);
        assert!(
            inversion.is_some_and(|f| f.message.contains("recursive")),
            "{:?}",
            analysis.findings
        );
    }

    #[test]
    fn statement_temporaries_do_not_overlap() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self) {
        self.a.lock().insert(1);
        self.b.lock().insert(2);
    }
    fn g(&self) {
        self.b.lock().insert(1);
        self.a.lock().insert(2);
    }
}
";
        let analysis = analyze(&lib(src));
        assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
        assert!(analysis.graph.edges.is_empty());
    }

    #[test]
    fn drop_kills_liveness() {
        let src = "\
use std::sync::Mutex;
pub static A: Mutex<u32> = Mutex::new(0);
pub static B: Mutex<u32> = Mutex::new(0);
pub fn f() {
    let a = A.lock();
    drop(a);
    let b = B.lock();
}
pub fn g() {
    let b = B.lock();
    drop(b);
    let a = A.lock();
}
";
        let analysis = analyze(&lib(src));
        assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
        assert!(analysis.graph.edges.is_empty());
    }

    #[test]
    fn closures_are_barriers() {
        let src = "\
struct S { handles: Mutex<u32> }
impl S {
    fn bind(&self) {
        let h = self.handles.lock();
        spawn(move || {
            let inner = self.handles.lock();
        });
    }
}
";
        let analysis = analyze(&lib(src));
        assert!(
            !analysis
                .graph
                .edges
                .contains_key(&("x::handles".to_string(), "x::handles".to_string())),
            "{:?}",
            analysis.graph.edges
        );
    }

    #[test]
    fn one_level_inlining_sees_helper_acquisitions() {
        let src = "\
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn take_b(&self) -> u32 { let g = self.b.lock(); *g }
    fn f(&self) -> u32 {
        let a = self.a.lock();
        self.take_b()
    }
    fn g(&self) -> u32 {
        let b = self.b.lock();
        let a = self.a.lock();
        *a + *b
    }
}
";
        let analysis = analyze(&lib(src));
        assert!(analysis.graph.has_cycles(), "{:?}", analysis.graph.edges);
        let edge = analysis
            .graph
            .edges
            .get(&("x::a".to_string(), "x::b".to_string()));
        assert!(edge.is_some_and(|e| e.via.as_deref() == Some("take_b")));
    }

    #[test]
    fn guard_returning_helpers_acquire_for_their_caller() {
        let src = "\
struct Memo { table: Mutex<u32>, other: Mutex<u32> }
impl Memo {
    fn lock(&self) -> std::sync::MutexGuard<'_, u32> {
        self.table.lock()
    }
    fn f(&self) {
        let t = self.lock();
        let o = self.other.lock();
    }
    fn g(&self) {
        let o = self.other.lock();
        let t = self.lock();
    }
}
";
        let analysis = analyze(&lib(src));
        assert!(analysis.graph.has_cycles(), "{:?}", analysis.graph.edges);
    }

    #[test]
    fn metric_updates_under_a_guard_edge_into_the_registry_class() {
        let src = "\
static HITS: LazyCounter = LazyCounter::new(\"cache.hits\");
static DEPTH: LazyGauge = LazyGauge::new(\"serve.queue_depth\");
struct S { table: Mutex<u32>, mem: Mutex<u32> }
impl S {
    fn hit(&self) { HITS.add(1); }
    fn f(&self) {
        let g = self.table.lock();
        HITS.add(1);
    }
    fn g(&self) {
        let g = self.mem.lock();
        self.hit();
    }
    fn bare(&self) { DEPTH.set(0); }
}
";
        let analysis = analyze(&lib(src));
        assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
        let direct = analysis
            .graph
            .edges
            .get(&("x::table".to_string(), "obs::counters".to_string()));
        assert!(
            direct.is_some_and(|e| e.via.is_none()),
            "{:?}",
            analysis.graph.edges
        );
        let inlined = analysis
            .graph
            .edges
            .get(&("x::mem".to_string(), "obs::counters".to_string()));
        assert!(
            inlined.is_some_and(|e| e.via.as_deref() == Some("hit")),
            "{:?}",
            analysis.graph.edges
        );
        // The update is instantaneous: no guard sticks around, so no
        // `obs::counters -> *` back-edge ever appears.
        assert!(!analysis
            .graph
            .edges
            .keys()
            .any(|(from, _)| from == "obs::counters"));
        // `bare` holds nothing: no edge into obs::gauges.
        assert!(!analysis
            .graph
            .edges
            .keys()
            .any(|(_, to)| to == "obs::gauges"));
    }

    #[test]
    fn blocking_calls_under_guards_are_flagged() {
        let src = "\
struct S { state: Mutex<u32> }
impl S {
    fn f(&self, rx: Receiver<u32>) {
        let st = self.state.lock();
        let x = rx.recv();
    }
    fn ok(&self, stream: TcpStream) {
        let mut buf = [0u8; 4];
        let st = self.state.lock();
        let n = st.read();
    }
}
";
        let analysis = analyze(&lib(src));
        let blocking: Vec<&Finding> = analysis
            .findings
            .iter()
            .filter(|f| f.rule == GUARD_HELD_ACROSS_BLOCKING_CALL)
            .collect();
        assert_eq!(blocking.len(), 1, "{:?}", analysis.findings);
        assert!(blocking[0].message.contains("x::state"));
    }

    #[test]
    fn condvar_wait_needs_a_loop() {
        let src = "\
struct S { m: Mutex<bool>, cv: Condvar }
impl S {
    fn bad(&self) {
        let g = self.m.lock();
        let g = self.cv.wait(g);
    }
    fn good(&self) {
        let mut g = self.m.lock();
        while !*g {
            g = self.cv.wait(g);
        }
    }
}
";
        let analysis = analyze(&lib(src));
        let waits: Vec<&Finding> = analysis
            .findings
            .iter()
            .filter(|f| f.rule == CONDVAR_WAIT_WITHOUT_LOOP)
            .collect();
        assert_eq!(waits.len(), 1, "{:?}", analysis.findings);
        assert_eq!(waits[0].line, 5);
    }

    #[test]
    fn suppressions_and_test_regions_apply() {
        let src = "\
struct S { m: Mutex<bool>, cv: Condvar }
impl S {
    fn bad(&self) {
        let g = self.m.lock();
        // lint:allow(condvar-wait-without-loop): predicate is monotonic
        let g = self.cv.wait(g);
    }
}
#[cfg(test)]
mod tests {
    fn abba() {
        let a = super::A.lock();
        let b = super::B.lock();
    }
}
";
        let analysis = analyze(&lib(src));
        assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
        assert_eq!(analysis.suppressed, 1);
    }

    #[test]
    fn witness_subgraph_check() {
        let analysis = analyze(&lib(ABBA));
        let witness = Witness {
            classes: vec!["x::LOCK_A".to_string(), "x::LOCK_B".to_string()],
            edges: vec![("x::LOCK_A".to_string(), "x::LOCK_B".to_string())],
            violations: Vec::new(),
        };
        assert!(check_witness(&analysis.graph, &witness).is_empty());
        let bad = Witness {
            classes: vec!["x::GHOST".to_string()],
            edges: vec![("x::LOCK_B".to_string(), "x::GHOST".to_string())],
            violations: vec!["abba".to_string()],
        };
        assert_eq!(check_witness(&analysis.graph, &bad).len(), 3);
    }

    #[test]
    fn witness_json_round_trips() {
        let text = "{\"version\": 1, \"classes\": [\"a\", \"b\"], \
                    \"edges\": [{\"from\": \"a\", \"to\": \"b\"}], \
                    \"violations\": []}";
        let w = parse_witness(text).unwrap();
        assert_eq!(w.classes.len(), 2);
        assert_eq!(w.edges[0], ("a".to_string(), "b".to_string()));
        assert!(parse_witness("{}").is_err());
    }

    #[test]
    fn graph_renders_parse_and_dot() {
        let analysis = analyze(&lib(ABBA));
        let json = analysis.graph.render_json();
        let parsed = parse_json(&json).unwrap();
        assert!(parsed.get("nodes").and_then(Json::as_arr).is_some());
        let dot = analysis.graph.render_dot();
        assert!(dot.contains("digraph locks"));
        assert!(dot.contains("color=red"));
        assert!(analysis.graph.render_human().contains("CYCLE"));
    }
}
