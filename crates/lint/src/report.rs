//! Human-readable and JSON renderings of a lint run.

use std::collections::BTreeMap;

use crate::baseline::Ratchet;
use crate::rules::{Finding, ANALYSIS_RULES, RULES};

/// Escapes a string for embedding in a JSON document.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Everything a lint run produced, ready to render.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Unsuppressed findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Ratchet result against the baseline.
    pub ratchet: Ratchet,
    /// Findings silenced by well-formed inline suppressions.
    pub suppressed: usize,
    /// Source files scanned (`.rs` plus manifests).
    pub files_scanned: usize,
}

impl Outcome {
    /// Whether the run passes: nothing beyond the baseline.
    pub fn clean(&self) -> bool {
        self.ratchet.new.is_empty()
    }

    /// The findings that exceed the baseline budget, in report order.
    /// Returns every finding of any `(file, rule)` pair that is over
    /// budget (the individual occurrences are indistinguishable).
    pub fn new_findings(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| {
                self.ratchet
                    .new
                    .iter()
                    .any(|(file, rule, _, _)| *file == f.file && *rule == f.rule)
            })
            .collect()
    }

    /// The human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let excused = !self
                .ratchet
                .new
                .iter()
                .any(|(file, rule, _, _)| *file == f.file && *rule == f.rule);
            let marker = if excused { " (baseline)" } else { "" };
            out.push_str(&format!(
                "{}:{}: [{}]{marker} {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        let mut per_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for f in &self.findings {
            *per_rule.entry(f.rule.as_str()).or_insert(0) += 1;
        }
        if !per_rule.is_empty() {
            out.push('\n');
            for rule in RULES {
                if let Some(n) = per_rule.get(rule.name) {
                    out.push_str(&format!("  {:>4}  {}\n", n, rule.name));
                }
            }
            for (name, _) in ANALYSIS_RULES {
                if let Some(n) = per_rule.get(name) {
                    out.push_str(&format!("  {n:>4}  {name}\n"));
                }
            }
            for (rule, n) in &per_rule {
                if crate::rules::rule_named(rule).is_none()
                    && !ANALYSIS_RULES.iter().any(|(name, _)| name == rule)
                {
                    out.push_str(&format!("  {n:>4}  {rule}\n"));
                }
            }
        }
        let status = if self.findings.is_empty() {
            "workspace clean".to_string()
        } else if self.clean() {
            format!(
                "{} finding(s), all excused by the baseline",
                self.findings.len()
            )
        } else {
            format!(
                "{} finding(s), {} beyond the baseline — FAIL",
                self.findings.len(),
                self.new_findings().len()
            )
        };
        out.push_str(&format!(
            "\ngopim-lint: {status} ({} files scanned, {} suppressed inline)\n",
            self.files_scanned, self.suppressed
        ));
        if !self.ratchet.stale.is_empty() {
            out.push_str(&format!(
                "gopim-lint: {} baseline entr{} can be tightened — run `gopim lint --update-baseline`\n",
                self.ratchet.stale.len(),
                if self.ratchet.stale.len() == 1 { "y" } else { "ies" },
            ));
        }
        out
    }

    /// The machine-readable report (`GOPIM_LINT_JSON`), a single JSON
    /// document parseable by `gopim_obs::export::parse_json`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str(&format!(
            "  \"baseline_excused\": {},\n",
            self.ratchet.excused
        ));
        out.push_str(&format!(
            "  \"new_findings\": {},\n",
            self.new_findings().len()
        ));
        out.push_str("  \"rules\": [");
        let rule_names = RULES
            .iter()
            .map(|r| r.name)
            .chain(ANALYSIS_RULES.iter().map(|(name, _)| *name));
        for (i, name) in rule_names.enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", escape_json(name)));
        }
        out.push_str("],\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                escape_json(&f.file),
                f.line,
                escape_json(&f.rule),
                escape_json(&f.message),
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> Outcome {
        let findings = vec![
            Finding {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                rule: "no-panic-in-lib".into(),
                message: "`.unwrap()` — library code returns typed errors".into(),
            },
            Finding {
                file: "crates/y/src/lib.rs".into(),
                line: 9,
                rule: "no-print-in-lib".into(),
                message: "`println!` — stdout belongs to binaries".into(),
            },
        ];
        let baseline = crate::baseline::Baseline::parse(
            "{\"version\": 1, \"findings\": [\
             {\"file\": \"crates/x/src/lib.rs\", \"rule\": \"no-panic-in-lib\", \"count\": 1}]}",
        )
        .unwrap();
        let ratchet = baseline.ratchet(&crate::baseline::count_findings(&findings));
        Outcome {
            findings,
            ratchet,
            suppressed: 1,
            files_scanned: 42,
        }
    }

    #[test]
    fn human_report_marks_excused_findings_and_fails_on_new() {
        let out = outcome();
        assert!(!out.clean());
        let text = out.render_human();
        assert!(text.contains("crates/x/src/lib.rs:3: [no-panic-in-lib] (baseline)"));
        assert!(text.contains("crates/y/src/lib.rs:9: [no-print-in-lib] `println!`"));
        assert!(text.contains("1 beyond the baseline — FAIL"));
        assert!(text.contains("42 files scanned, 1 suppressed inline"));
    }

    #[test]
    fn json_report_parses_with_the_obs_parser() {
        let out = outcome();
        let doc = gopim_obs::export::parse_json(&out.render_json()).unwrap();
        assert_eq!(doc.get("version").unwrap().as_num(), Some(1.0));
        assert_eq!(doc.get("files_scanned").unwrap().as_num(), Some(42.0));
        assert_eq!(doc.get("new_findings").unwrap().as_num(), Some(1.0));
        let findings = doc.get("findings").unwrap().as_arr().unwrap();
        assert_eq!(findings.len(), 2);
        assert_eq!(
            findings[0].get("rule").unwrap().as_str(),
            Some("no-panic-in-lib")
        );
        assert_eq!(findings[0].get("line").unwrap().as_num(), Some(3.0));
    }

    #[test]
    fn clean_outcome_reports_clean() {
        let out = Outcome {
            files_scanned: 10,
            ..Outcome::default()
        };
        assert!(out.clean());
        assert!(out.render_human().contains("workspace clean"));
    }
}
