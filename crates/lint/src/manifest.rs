//! `Cargo.toml` hermeticity checks for the `no-external-deps` rule.
//!
//! The repo's contract (PR 1) is that every dependency resolves
//! inside the workspace: `foo.workspace = true` or an explicit
//! `path = "…"`. Anything that could reach crates.io, git or another
//! registry — bare version strings, `version = …` tables without a
//! `path`, `git = …` — is a finding against the manifest file.
//!
//! The scanner is line-oriented: it only needs to recognize section
//! headers and key/value shapes, not full TOML. Comments after `#`
//! are stripped outside of strings.

use crate::rules::{Finding, NO_EXTERNAL_DEPS};

/// Whether a `[section]` name declares dependencies.
fn is_dep_section(name: &str) -> bool {
    name == "dependencies"
        || name == "dev-dependencies"
        || name == "build-dependencies"
        || name == "workspace.dependencies"
        || name.ends_with(".dependencies")
        || name.ends_with(".dev-dependencies")
        || name.ends_with(".build-dependencies")
}

/// Strips a trailing `# comment` (quote-aware).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// A dependency declared as its own `[dependencies.foo]` table,
/// waiting for a `path`/`workspace` key before the section ends.
struct PendingTable {
    name: String,
    line: usize,
    hermetic: bool,
}

/// Scans one manifest. `path` is the workspace-relative path used in
/// findings.
pub fn check_manifest(path: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut section = String::new();
    let mut pending: Option<PendingTable> = None;
    let flush = |p: &mut Option<PendingTable>, findings: &mut Vec<Finding>| {
        if let Some(t) = p.take() {
            if !t.hermetic {
                findings.push(external_dep(path, t.line, &t.name));
            }
        }
    };
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush(&mut pending, &mut findings);
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            // `[dependencies.foo]`-style table: hermeticity judged by
            // the keys that follow.
            for deps in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
                if let Some(name) = section
                    .strip_prefix(deps)
                    .or_else(|| section.rsplit_once(deps).map(|(_, n)| n))
                {
                    if !name.is_empty() && !name.contains('.') {
                        pending = Some(PendingTable {
                            name: name.to_string(),
                            line: line_no,
                            hermetic: false,
                        });
                    }
                }
            }
            continue;
        }
        if let Some(t) = &mut pending {
            if line.starts_with("path") || line.starts_with("workspace") {
                t.hermetic = true;
            }
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        // `foo.workspace = true` and `foo.path = "…"` key shapes.
        if key.ends_with(".workspace") || key.ends_with(".path") {
            continue;
        }
        if value.contains("workspace = true") || value.contains("path =") {
            continue;
        }
        let name = key.trim_matches('"');
        findings.push(external_dep(path, line_no, name));
    }
    flush(&mut pending, &mut findings);
    findings
}

fn external_dep(path: &str, line: usize, name: &str) -> Finding {
    Finding {
        file: path.to_string(),
        line,
        rule: NO_EXTERNAL_DEPS.to_string(),
        message: format!(
            "dependency `{name}` does not resolve inside the workspace — \
             declare it with `workspace = true` or a `path`"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_and_path_deps_pass() {
        let text = "\
[package]\nname = \"x\"\n\n[dependencies]\n\
gopim-rng.workspace = true\n\
gopim-obs = { workspace = true }\n\
local = { path = \"../local\" }\n\n\
[dev-dependencies]\ngopim-testkit.workspace = true\n";
        assert!(check_manifest("crates/x/Cargo.toml", text).is_empty());
    }

    #[test]
    fn version_and_git_deps_fail() {
        let text = "\
[dependencies]\n\
rand = \"0.8\"\n\
serde = { version = \"1\", features = [\"derive\"] }\n\
weird = { git = \"https://example.com/weird\" }\n";
        let hits = check_manifest("crates/x/Cargo.toml", text);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|f| f.rule == "no-external-deps"));
        assert!(hits[0].message.contains("`rand`"));
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn dep_tables_need_a_path_or_workspace_key() {
        let bad = "[dependencies.rand]\nversion = \"0.8\"\n";
        assert_eq!(check_manifest("Cargo.toml", bad).len(), 1);
        let good = "[dependencies.local]\npath = \"../local\"\n";
        assert!(check_manifest("Cargo.toml", good).is_empty());
    }

    #[test]
    fn workspace_dependency_catalog_is_checked() {
        let text =
            "[workspace.dependencies]\ngopim-rng = { path = \"crates/rng\" }\nrand = \"0.8\"\n";
        let hits = check_manifest("Cargo.toml", text);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("`rand`"));
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let text = "[package]\nversion = \"0.1.0\"\n[profile.release]\ndebug = true\n\
                    [features]\nfma = []\n";
        assert!(check_manifest("Cargo.toml", text).is_empty());
    }

    #[test]
    fn comments_do_not_confuse_the_scanner() {
        let text = "[dependencies] # all hermetic\ngopim-rng.workspace = true # in-repo\n";
        assert!(check_manifest("Cargo.toml", text).is_empty());
    }
}
