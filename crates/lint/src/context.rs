//! Per-file context: target classification, `#[cfg(test)]` regions,
//! and `// lint:allow(...)` suppressions.
//!
//! Rules fire or stay silent depending on *where* a token lives:
//! library code is held to the strictest contracts, while tests,
//! benches, binaries and examples are allowed to panic, print and
//! measure wall-clock time. Classification is purely path-based
//! (mirroring Cargo's target auto-discovery), refined by token-level
//! detection of `#[cfg(test)]` / `#[test]` item regions inside any
//! file.

use crate::lexer::{LineIndex, Token, TokenKind};

/// Which Cargo target class a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/**` minus binaries): the strict zone.
    Lib,
    /// A binary (`src/bin/**` or `src/main.rs`).
    Bin,
    /// An example (`examples/**`).
    Example,
    /// An integration test (`tests/**`).
    Test,
    /// A benchmark (`benches/**`).
    Bench,
}

impl FileKind {
    /// Classifies a workspace-relative path (`/`-separated).
    pub fn classify(path: &str) -> FileKind {
        let has = |needle: &str| {
            path.starts_with(needle.trim_start_matches('/')) || path.contains(needle)
        };
        if has("/tests/") {
            FileKind::Test
        } else if has("/benches/") {
            FileKind::Bench
        } else if has("/examples/") {
            FileKind::Example
        } else if has("/src/bin/") || path.ends_with("/src/main.rs") || path == "src/main.rs" {
            FileKind::Bin
        } else {
            FileKind::Lib
        }
    }
}

/// Everything the rule engine knows about one source file.
#[derive(Debug)]
pub struct FileContext {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Target classification.
    pub kind: FileKind,
    /// Byte→line mapping.
    pub lines: LineIndex,
    /// Byte ranges of test-only items (`#[cfg(test)] mod …`,
    /// `#[test] fn …`), attribute start to item end.
    pub test_regions: Vec<(usize, usize)>,
    /// Parsed `lint:allow` suppressions.
    pub suppressions: Vec<Suppression>,
}

/// One `// lint:allow(rule, …): reason` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules it names.
    pub rules: Vec<String>,
    /// Whether a non-empty reason follows the rule list.
    pub has_reason: bool,
    /// Line the comment starts on.
    pub line: usize,
    /// Lines the suppression covers (its own and the next).
    pub covers: [usize; 2],
}

impl FileContext {
    /// Builds the context for `src` at workspace-relative `path`.
    pub fn new(path: &str, src: &str, tokens: &[Token]) -> FileContext {
        let lines = LineIndex::new(src);
        let significant: Vec<Token> = tokens
            .iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .copied()
            .collect();
        let test_regions = find_test_regions(src, &significant);
        let suppressions = find_suppressions(src, tokens, &lines);
        FileContext {
            path: path.to_string(),
            kind: FileKind::classify(path),
            lines,
            test_regions,
            suppressions,
        }
    }

    /// Whether byte `offset` lies inside a test-only item.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }

    /// Whether a finding of `rule` on `line` is covered by a
    /// well-formed suppression.
    pub fn suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.has_reason && s.covers.contains(&line) && s.rules.iter().any(|r| r == rule))
    }
}

/// Scans significant tokens for `#[test]`-carrying attributes and
/// returns the byte extent of the items they gate.
fn find_test_regions(src: &str, sig: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < sig.len() {
        if sig[i].text(src) != "#" {
            i += 1;
            continue;
        }
        let attr_start = sig[i].start;
        let mut j = i + 1;
        // Inner attribute `#![…]`: skip it, it gates no single item.
        let inner = sig.get(j).is_some_and(|t| t.text(src) == "!");
        if inner {
            j += 1;
        }
        if sig.get(j).map(|t| t.text(src)) != Some("[") {
            i += 1;
            continue;
        }
        // Scan the attribute body to its matching `]`.
        let mut depth = 0usize;
        let mut names_test = false;
        while j < sig.len() {
            match sig[j].text(src) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                text if sig[j].kind == TokenKind::Ident && text == "test" => names_test = true,
                _ => {}
            }
            j += 1;
        }
        if inner || !names_test {
            i = j + 1;
            continue;
        }
        // Skip any further outer attributes stacked on the same item.
        let mut k = j + 1;
        while sig.get(k).is_some_and(|t| t.text(src) == "#")
            && sig.get(k + 1).is_some_and(|t| t.text(src) == "[")
        {
            let mut depth = 0usize;
            while k < sig.len() {
                match sig[k].text(src) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // The item extends to its closing brace (brace-matched) or, if
        // it has no body, to the terminating semicolon.
        let mut end = src.len();
        let mut braces = 0usize;
        let mut m = k;
        while m < sig.len() {
            match sig[m].text(src) {
                "{" => braces += 1,
                "}" => {
                    if braces > 0 {
                        braces -= 1;
                        if braces == 0 {
                            end = sig[m].end;
                            break;
                        }
                    }
                }
                ";" if braces == 0 => {
                    end = sig[m].end;
                    break;
                }
                _ => {}
            }
            m += 1;
        }
        regions.push((attr_start, end));
        i = j + 1;
    }
    regions
}

/// Extracts `lint:allow` suppressions from comment tokens.
fn find_suppressions(src: &str, tokens: &[Token], lines: &LineIndex) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        // The directive must *start* the comment (after the `//`,
        // `/*`, doc markers and whitespace); prose that merely
        // mentions `lint:allow(...)` mid-sentence is not a
        // suppression.
        let text = t.text(src).trim_start_matches(['/', '*', '!']).trim_start();
        let Some(after) = text.strip_prefix("lint:allow(") else {
            continue;
        };
        let line = lines.line_of(t.start);
        let Some(close) = after.find(')') else {
            out.push(Suppression {
                rules: Vec::new(),
                has_reason: false,
                line,
                covers: [line, line + 1],
            });
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let tail = after[close + 1..].trim_start();
        let has_reason = tail
            .strip_prefix(':')
            .map(|reason| {
                let reason = reason.trim_end_matches("*/");
                !reason.trim().is_empty()
            })
            .unwrap_or(false);
        out.push(Suppression {
            rules,
            has_reason,
            line,
            covers: [line, line + 1],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx(path: &str, src: &str) -> FileContext {
        FileContext::new(path, src, &lex(src))
    }

    #[test]
    fn paths_classify_by_cargo_target_layout() {
        assert_eq!(FileKind::classify("crates/graph/src/io.rs"), FileKind::Lib);
        assert_eq!(FileKind::classify("crates/core/src/main.rs"), FileKind::Bin);
        assert_eq!(
            FileKind::classify("crates/bench/src/bin/fig04.rs"),
            FileKind::Bin
        );
        assert_eq!(
            FileKind::classify("crates/graph/tests/proptests.rs"),
            FileKind::Test
        );
        assert_eq!(FileKind::classify("tests/determinism.rs"), FileKind::Test);
        assert_eq!(
            FileKind::classify("crates/bench/benches/linalg.rs"),
            FileKind::Bench
        );
        assert_eq!(
            FileKind::classify("examples/quickstart.rs"),
            FileKind::Example
        );
        assert_eq!(
            FileKind::classify("crates/obs/examples/validate_trace.rs"),
            FileKind::Example
        );
    }

    #[test]
    fn cfg_test_modules_form_regions() {
        let src = "pub fn lib() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let c = ctx("crates/x/src/lib.rs", src);
        assert_eq!(c.test_regions.len(), 1);
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(c.in_test_region(unwrap_at));
        assert!(!c.in_test_region(src.find("lib").unwrap()));
    }

    #[test]
    fn test_fns_with_stacked_attributes_form_regions() {
        let src = "#[test]\n#[ignore]\nfn slow() { panic!() }\nfn lib() {}\n";
        let c = ctx("crates/x/src/lib.rs", src);
        assert!(c.in_test_region(src.find("panic").unwrap()));
        assert!(!c.in_test_region(src.find("lib").unwrap()));
    }

    #[test]
    fn inner_attributes_and_plain_cfgs_are_not_regions() {
        let src = "#![warn(missing_docs)]\n#[cfg(feature = \"x\")]\nfn f() {}\n";
        let c = ctx("crates/x/src/lib.rs", src);
        assert!(c.test_regions.is_empty());
    }

    #[test]
    fn suppressions_parse_rules_and_reasons() {
        let src = "\
// lint:allow(no-panic-in-lib): pool sized at construction\nx.unwrap();\n\
y.unwrap(); // lint:allow(no-panic-in-lib, no-print-in-lib): trailing\n\
// lint:allow(no-panic-in-lib)\nz.unwrap();\n";
        let c = ctx("crates/x/src/lib.rs", src);
        assert_eq!(c.suppressions.len(), 3);
        assert!(c.suppressions[0].has_reason);
        assert_eq!(c.suppressions[0].rules, vec!["no-panic-in-lib"]);
        assert!(c.suppressed("no-panic-in-lib", 2));
        assert!(c.suppressions[1].has_reason);
        assert_eq!(c.suppressions[1].rules.len(), 2);
        assert!(c.suppressed("no-print-in-lib", 3));
        // Reasonless allow: parsed, but covers nothing.
        assert!(!c.suppressions[2].has_reason);
        assert!(!c.suppressed("no-panic-in-lib", 5));
    }

    #[test]
    fn block_comment_suppressions_trim_the_closer() {
        let src = "/* lint:allow(no-print-in-lib): banner */\nprintln!(\"x\");\n";
        let c = ctx("crates/x/src/lib.rs", src);
        assert!(c.suppressions[0].has_reason);
        assert!(c.suppressed("no-print-in-lib", 2));
    }
}
