//! The ratcheting baseline: grandfathered findings, counts only ever
//! going down.
//!
//! `lint-baseline.json` at the workspace root records, per
//! `(file, rule)` pair, how many findings existed when the pair was
//! grandfathered. A lint run fails only on findings *beyond* the
//! baseline — a brand-new pair, or a count above the recorded one.
//! Counts below the recorded value pass but are reported as stale so
//! the ratchet can be tightened with `gopim lint --update-baseline`
//! (which rewrites the file from the current findings and therefore
//! can only shrink pairs that improved).

use std::collections::BTreeMap;

use gopim_obs::export::{parse_json, Json};

use crate::rules::Finding;

/// Per-`(file, rule)` finding counts.
pub type Counts = BTreeMap<(String, String), usize>;

/// Aggregates findings into baseline-comparable counts.
pub fn count_findings(findings: &[Finding]) -> Counts {
    let mut counts = Counts::new();
    for f in findings {
        *counts.entry((f.file.clone(), f.rule.clone())).or_insert(0) += 1;
    }
    counts
}

/// The parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Grandfathered counts.
    pub counts: Counts,
}

/// Result of ratcheting actual counts against the baseline.
#[derive(Debug, Clone, Default)]
pub struct Ratchet {
    /// `(file, rule, actual, allowed)` pairs over budget — these fail
    /// the run.
    pub new: Vec<(String, String, usize, usize)>,
    /// `(file, rule, actual, allowed)` pairs under budget — the
    /// baseline can be tightened.
    pub stale: Vec<(String, String, usize, usize)>,
    /// How many findings the baseline excused.
    pub excused: usize,
}

impl Baseline {
    /// Parses the baseline document.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a wrong schema.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = parse_json(text).map_err(|e| format!("baseline: {e}"))?;
        let version = doc
            .get("version")
            .and_then(Json::as_num)
            .ok_or("baseline: missing numeric 'version'")?;
        if version != 1.0 {
            return Err(format!("baseline: unsupported version {version}"));
        }
        let entries = doc
            .get("findings")
            .and_then(Json::as_arr)
            .ok_or("baseline: missing 'findings' array")?;
        let mut counts = Counts::new();
        for (i, entry) in entries.iter().enumerate() {
            let field = |key: &str| {
                entry
                    .get(key)
                    .ok_or_else(|| format!("baseline: entry {i}: missing '{key}'"))
            };
            let file = field("file")?
                .as_str()
                .ok_or_else(|| format!("baseline: entry {i}: 'file' must be a string"))?;
            let rule = field("rule")?
                .as_str()
                .ok_or_else(|| format!("baseline: entry {i}: 'rule' must be a string"))?;
            let count = field("count")?
                .as_num()
                .filter(|n| *n >= 1.0 && n.fract() == 0.0)
                .ok_or_else(|| {
                    format!("baseline: entry {i}: 'count' must be a positive integer")
                })?;
            counts.insert((file.to_string(), rule.to_string()), count as usize);
        }
        Ok(Baseline { counts })
    }

    /// Serializes counts as a baseline document (sorted, stable).
    pub fn render(counts: &Counts) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
        let mut first = true;
        for ((file, rule), count) in counts {
            if *count == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"rule\": \"{}\", \"count\": {count}}}",
                crate::report::escape_json(file),
                crate::report::escape_json(rule),
            ));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Ratchets `actual` against this baseline.
    pub fn ratchet(&self, actual: &Counts) -> Ratchet {
        let mut result = Ratchet::default();
        for ((file, rule), &count) in actual {
            let allowed = self
                .counts
                .get(&(file.clone(), rule.clone()))
                .copied()
                .unwrap_or(0);
            if count > allowed {
                result
                    .new
                    .push((file.clone(), rule.clone(), count, allowed));
                result.excused += allowed;
            } else {
                result.excused += count;
                if count < allowed {
                    result
                        .stale
                        .push((file.clone(), rule.clone(), count, allowed));
                }
            }
        }
        for ((file, rule), &allowed) in &self.counts {
            if !actual.contains_key(&(file.clone(), rule.clone())) {
                result.stale.push((file.clone(), rule.clone(), 0, allowed));
            }
        }
        result.stale.sort();
        result.new.sort();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, rule: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line: 1,
            rule: rule.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn render_and_parse_round_trip() {
        let findings = vec![
            finding("b.rs", "no-panic-in-lib"),
            finding("a.rs", "no-panic-in-lib"),
            finding("a.rs", "no-panic-in-lib"),
            finding("a.rs", "no-print-in-lib"),
        ];
        let counts = count_findings(&findings);
        let text = Baseline::render(&counts);
        let back = Baseline::parse(&text).unwrap();
        assert_eq!(back.counts, counts);
        assert_eq!(
            back.counts[&("a.rs".to_string(), "no-panic-in-lib".to_string())],
            2
        );
    }

    #[test]
    fn empty_baseline_renders_and_parses() {
        let text = Baseline::render(&Counts::new());
        let back = Baseline::parse(&text).unwrap();
        assert!(back.counts.is_empty());
    }

    #[test]
    fn ratchet_flags_new_pairs_and_growth() {
        let baseline = Baseline::parse(
            "{\"version\": 1, \"findings\": [\
             {\"file\": \"a.rs\", \"rule\": \"r\", \"count\": 2}]}",
        )
        .unwrap();
        // Growth beyond the grandfathered count fails.
        let grown = count_findings(&[
            finding("a.rs", "r"),
            finding("a.rs", "r"),
            finding("a.rs", "r"),
        ]);
        let out = baseline.ratchet(&grown);
        assert_eq!(out.new, vec![("a.rs".into(), "r".into(), 3, 2)]);
        // A brand-new pair fails.
        let fresh = count_findings(&[finding("b.rs", "r")]);
        assert_eq!(baseline.ratchet(&fresh).new.len(), 1);
        // At or under budget passes; under budget is stale.
        let shrunk = count_findings(&[finding("a.rs", "r")]);
        let out = baseline.ratchet(&shrunk);
        assert!(out.new.is_empty());
        assert_eq!(out.stale, vec![("a.rs".into(), "r".into(), 1, 2)]);
        assert_eq!(out.excused, 1);
        // Fully fixed pairs surface as stale with zero actual.
        let clean = Counts::new();
        let out = baseline.ratchet(&clean);
        assert!(out.new.is_empty());
        assert_eq!(out.stale, vec![("a.rs".into(), "r".into(), 0, 2)]);
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"version\": 2, \"findings\": []}").is_err());
        assert!(Baseline::parse("{\"version\": 1}").is_err());
        assert!(Baseline::parse(
            "{\"version\": 1, \"findings\": [{\"file\": \"a\", \"rule\": \"r\", \"count\": 0}]}"
        )
        .is_err());
    }
}
