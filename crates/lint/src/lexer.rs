//! A lossless, panic-free Rust lexer.
//!
//! The rule engine needs real tokens, not text matching: `HashMap`
//! inside a string literal or a doc comment must never trip a rule.
//! This lexer understands the parts of Rust's lexical grammar that
//! matter for that guarantee — raw strings with arbitrary `#` counts,
//! byte strings, nested block comments, char literals vs lifetimes,
//! raw identifiers, numeric literals with suffixes and exponents —
//! while staying permissive everywhere else: unknown bytes become
//! one-byte [`TokenKind::Unknown`] tokens instead of errors.
//!
//! Two invariants hold for every input (property-tested):
//!
//! 1. `lex` never panics;
//! 2. the produced spans tile the input exactly — token `i` ends
//!    where token `i + 1` starts, the first token starts at byte 0
//!    and the last ends at `src.len()`, and every boundary lies on a
//!    UTF-8 character boundary.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of ASCII whitespace.
    Whitespace,
    /// `// …` to the end of the line (doc variants included).
    LineComment,
    /// `/* … */`, nesting tracked (doc variants included).
    BlockComment,
    /// An identifier or keyword, including raw identifiers (`r#match`).
    Ident,
    /// A lifetime or loop label: `'a` with no closing quote.
    Lifetime,
    /// A char or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// A string or byte-string literal: `"…"`, `b"…"`.
    Str,
    /// A raw (byte) string literal: `r"…"`, `r#"…"#`, `br##"…"##`.
    RawStr,
    /// A numeric literal, suffix included: `0x1F`, `1_000u64`, `1.5e-3`.
    Num,
    /// One ASCII punctuation byte (`::` is two `:` tokens).
    Punct,
    /// Anything the lexer does not recognize (consumed one char at a
    /// time so later tokens stay aligned).
    Unknown,
}

/// A half-open byte span `[start, end)` of the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text within `src`.
    ///
    /// Returns `""` if the span is out of bounds for `src` (only
    /// possible when pairing a token with the wrong source).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Tokenizes `src` completely. Never panics; see the module docs for
/// the span-tiling invariant.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        b: src.as_bytes(),
        pos: 0,
    }
    .run()
}

/// Maps byte offsets to 1-based line numbers.
#[derive(Debug, Clone)]
pub struct LineIndex {
    /// Byte offset of the start of each line.
    starts: Vec<usize>,
}

impl LineIndex {
    /// Builds the index for `src`.
    pub fn new(src: &str) -> Self {
        let mut starts = vec![0usize];
        for (i, byte) in src.bytes().enumerate() {
            if byte == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// 1-based line containing byte `offset` (offsets past the end
    /// map to the last line).
    pub fn line_of(&self, offset: usize) -> usize {
        match self.starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }
}

struct Lexer<'a> {
    b: &'a [u8],
    pos: usize,
}

fn is_ident_start(byte: u8) -> bool {
    byte.is_ascii_alphabetic() || byte == b'_' || byte >= 0x80
}

fn is_ident_cont(byte: u8) -> bool {
    byte.is_ascii_alphanumeric() || byte == b'_' || byte >= 0x80
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.b.len() {
            let start = self.pos;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always advance");
            if self.pos == start {
                // Defensive: never loop forever, even on a logic bug.
                self.pos += 1;
            }
            out.push(Token {
                kind,
                start,
                end: self.pos,
            });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.pos + ahead).copied()
    }

    fn starts_with(&self, at: usize, needle: &[u8]) -> bool {
        self.b[at..].starts_with(needle)
    }

    fn next_kind(&mut self) -> TokenKind {
        let c = self.b[self.pos];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' | 0x0b | 0x0c => {
                while self
                    .peek(0)
                    .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r' | 0x0b | 0x0c))
                {
                    self.pos += 1;
                }
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while self.peek(0).is_some_and(|c| c != b'\n') {
                    self.pos += 1;
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'r' => self.maybe_raw(0),
            b'b' => match self.peek(1) {
                Some(b'\'') => {
                    self.pos += 1;
                    self.char_or_lifetime()
                }
                Some(b'"') => {
                    self.pos += 1;
                    self.string()
                }
                Some(b'r') => self.maybe_raw(1),
                _ => self.ident(),
            },
            b'\'' => self.char_or_lifetime(),
            b'"' => self.string(),
            c if c.is_ascii_digit() => self.number(),
            c if is_ident_start(c) => self.ident(),
            c if c.is_ascii_graphic() => {
                self.pos += 1;
                TokenKind::Punct
            }
            _ => {
                // Stray control byte: consume exactly one byte (ASCII,
                // so character boundaries are preserved).
                self.pos += 1;
                TokenKind::Unknown
            }
        }
    }

    fn block_comment(&mut self) -> TokenKind {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.b.len() && depth > 0 {
            if self.starts_with(self.pos, b"/*") {
                depth += 1;
                self.pos += 2;
            } else if self.starts_with(self.pos, b"*/") {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        TokenKind::BlockComment
    }

    /// At `r` (or `br` with `extra == 1`): raw string, raw identifier,
    /// or a plain identifier starting with that letter.
    fn maybe_raw(&mut self, extra: usize) -> TokenKind {
        let mut probe = self.pos + 1 + extra;
        let mut hashes = 0usize;
        while self.b.get(probe) == Some(&b'#') {
            hashes += 1;
            probe += 1;
        }
        match self.b.get(probe) {
            Some(b'"') => {
                self.pos = probe + 1;
                self.raw_string_body(hashes)
            }
            // `r#ident` raw identifier (only for `r`, not `br`).
            Some(&c) if extra == 0 && hashes == 1 && is_ident_start(c) => {
                self.pos = probe;
                self.ident()
            }
            _ => self.ident(),
        }
    }

    fn raw_string_body(&mut self, hashes: usize) -> TokenKind {
        while self.pos < self.b.len() {
            if self.b[self.pos] == b'"' {
                let tail = &self.b[self.pos + 1..];
                if tail.len() >= hashes && tail[..hashes].iter().all(|&c| c == b'#') {
                    self.pos += 1 + hashes;
                    return TokenKind::RawStr;
                }
            }
            self.pos += 1;
        }
        TokenKind::RawStr // unterminated: runs to end of input
    }

    fn string(&mut self) -> TokenKind {
        self.pos += 1; // opening quote
        while let Some(c) = self.peek(0) {
            self.pos += 1;
            match c {
                b'"' => return TokenKind::Str,
                b'\\' => {
                    // Skip the escaped byte; escape characters are
                    // ASCII, and a quote can never be a UTF-8
                    // continuation byte, so byte-wise scanning is safe.
                    if self.pos < self.b.len() {
                        self.pos += 1;
                    }
                }
                _ => {}
            }
        }
        TokenKind::Str // unterminated
    }

    /// At a `'`: decide between a char literal and a lifetime.
    fn char_or_lifetime(&mut self) -> TokenKind {
        let quote = self.pos;
        self.pos += 1;
        match self.peek(0) {
            None => TokenKind::Unknown,
            Some(b'\\') => {
                // Escaped char literal: skip the escaped character,
                // then scan to the closing quote.
                self.pos += 1;
                if self.pos < self.b.len() {
                    self.pos += 1;
                }
                while let Some(c) = self.peek(0) {
                    self.pos += 1;
                    match c {
                        b'\'' => return TokenKind::Char,
                        b'\\' => {
                            if self.pos < self.b.len() {
                                self.pos += 1;
                            }
                        }
                        b'\n' => {
                            // A newline inside a char literal means it
                            // was really something else; back off to
                            // just the quote.
                            self.pos -= 1;
                            break;
                        }
                        _ => {}
                    }
                }
                self.pos = quote + 1;
                TokenKind::Unknown
            }
            Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
                let mut probe = self.pos;
                while probe < self.b.len() && is_ident_cont(self.b[probe]) {
                    probe += 1;
                }
                if self.b.get(probe) == Some(&b'\'') {
                    self.pos = probe + 1;
                    TokenKind::Char
                } else {
                    self.pos = probe;
                    TokenKind::Lifetime
                }
            }
            Some(_) => {
                // `'x'` for punctuation-like x (e.g. `' '` handled by
                // whitespace? no — a quoted space lands here too).
                let next_char_end = self.char_end(self.pos);
                if self.b.get(next_char_end) == Some(&b'\'') {
                    self.pos = next_char_end + 1;
                    TokenKind::Char
                } else {
                    TokenKind::Unknown // lone quote
                }
            }
        }
    }

    /// End of the UTF-8 character starting at `at`.
    fn char_end(&self, at: usize) -> usize {
        let mut end = at + 1;
        while end < self.b.len() && (self.b[end] & 0xC0) == 0x80 {
            end += 1;
        }
        end
    }

    fn ident(&mut self) -> TokenKind {
        self.pos += 1;
        while self.peek(0).is_some_and(is_ident_cont) {
            self.pos += 1;
        }
        TokenKind::Ident
    }

    fn number(&mut self) -> TokenKind {
        let radix_prefixed = self.b[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'));
        self.pos += 1;
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if is_ident_cont(c) {
                self.pos += 1;
            } else if c == b'.' && !seen_dot {
                match self.peek(1) {
                    // `1..2` is a range, `1.method()` a call.
                    Some(b'.') => break,
                    Some(n) if is_ident_start(n) => break,
                    _ => {
                        seen_dot = true;
                        self.pos += 1;
                    }
                }
            } else if (c == b'+' || c == b'-')
                && !radix_prefixed
                && matches!(self.b.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
                && self.peek(1).is_some_and(|n| n.is_ascii_digit())
            {
                // Exponent sign of a decimal float: `1.5e-3`.
                self.pos += 1;
            } else {
                break;
            }
        }
        TokenKind::Num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn tiles(src: &str) {
        let tokens = lex(src);
        let mut at = 0usize;
        for t in &tokens {
            assert_eq!(t.start, at, "gap before {t:?} in {src:?}");
            assert!(t.end > t.start, "empty token {t:?} in {src:?}");
            assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
            at = t.end;
        }
        assert_eq!(at, src.len(), "coverage of {src:?}");
    }

    #[test]
    fn raw_strings_with_hashes_do_not_leak_contents() {
        let src = r####"let s = r#"an "unwrap()" inside"#; s.len()"####;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("unwrap")));
        // The unwrap text must not surface as an identifier.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
        tiles(src);
    }

    #[test]
    fn raw_strings_respect_hash_counts() {
        let src = r###"r##"has "# inside"## trailing"###;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::RawStr);
        assert_eq!(toks[0].1, r###"r##"has "# inside"##"###);
        assert_eq!(toks[1], (TokenKind::Ident, "trailing"));
        tiles(src);
    }

    #[test]
    fn byte_and_raw_byte_strings_lex_as_literals() {
        let src = r##"b"bytes" br#"raw bytes"# b'x'"##;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1].0, TokenKind::RawStr);
        assert_eq!(toks[2].0, TokenKind::Char);
        tiles(src);
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "/* outer /* inner */ still a comment */ ident";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "ident"));
        tiles(src);
    }

    #[test]
    fn unterminated_block_comment_consumes_the_rest() {
        let src = "/* /* */ never closed";
        let toks = kinds(src);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        tiles(src);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
        let toks = kinds(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|(_, t)| *t == "'a"));
        assert_eq!(chars, vec![&(TokenKind::Char, "'a'")]);
        tiles(src);
    }

    #[test]
    fn escaped_char_literals_lex_fully() {
        for src in ["'\\n'", "'\\''", "'\\\\'", "'\\u{1F600}'", "b'\\xFF'"] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src:?} → {toks:?}");
            assert_eq!(toks[0].0, TokenKind::Char, "{src:?}");
            tiles(src);
        }
    }

    #[test]
    fn static_lifetime_and_loop_labels() {
        let src = "&'static str; 'outer: loop { break 'outer; }";
        let toks = kinds(src);
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(lifetimes, vec!["'static", "'outer", "'outer"]);
        tiles(src);
    }

    #[test]
    fn raw_identifiers_stay_identifiers() {
        let src = "let r#match = r#fn; r#\"but this is a string\"#";
        let toks = kinds(src);
        assert_eq!(toks[1], (TokenKind::Ident, "r#match"));
        assert_eq!(toks[3], (TokenKind::Ident, "r#fn"));
        assert_eq!(toks[5].0, TokenKind::RawStr);
        tiles(src);
    }

    #[test]
    fn numbers_with_suffixes_dots_and_exponents() {
        let toks = kinds("1_000u64");
        assert_eq!(toks, vec![(TokenKind::Num, "1_000u64")]);
        let toks = kinds("0x1F_ffu32");
        assert_eq!(toks, vec![(TokenKind::Num, "0x1F_ffu32")]);
        let toks = kinds("1.5e-3");
        assert_eq!(toks, vec![(TokenKind::Num, "1.5e-3")]);
        let toks = kinds("0x1E+3");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Num, "0x1E"),
                (TokenKind::Punct, "+"),
                (TokenKind::Num, "3")
            ]
        );
        let toks = kinds("1..2");
        assert_eq!(toks[0], (TokenKind::Num, "1"));
        assert_eq!(toks[3], (TokenKind::Num, "2"));
        let toks = kinds("1.min(2)");
        assert_eq!(toks[0], (TokenKind::Num, "1"));
        assert_eq!(toks[2], (TokenKind::Ident, "min"));
        for src in [
            "1_000u64", "1.5e-3", "1..2", "1.min(2)", "0x1E+3", "1.", "2E+10",
        ] {
            tiles(src);
        }
    }

    #[test]
    fn strings_with_escapes_hide_their_contents() {
        let src = r#"let s = "say \"unwrap()\" and \\"; HashMap"#;
        let toks = kinds(src);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "HashMap"));
        tiles(src);
    }

    #[test]
    fn line_comments_and_doc_comments_end_at_newline() {
        let src = "/// doc unwrap()\n//! inner\ncode";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert_eq!(toks[1].0, TokenKind::LineComment);
        assert_eq!(toks[2], (TokenKind::Ident, "code"));
        tiles(src);
    }

    #[test]
    fn degenerate_inputs_never_panic() {
        for src in [
            "",
            "'",
            "\"",
            "r#\"",
            "/*",
            "b",
            "br",
            "r",
            "0x",
            "'\\",
            "\u{1F600}",
            "'a",
            "#![x]",
            "\\",
            "r#",
            "br#",
            "'''",
            "\"\\",
            "1e",
            "1e+",
        ] {
            tiles(src);
        }
    }

    #[test]
    fn line_index_maps_offsets() {
        let idx = LineIndex::new("ab\ncd\n\nef");
        assert_eq!(idx.line_of(0), 1);
        assert_eq!(idx.line_of(2), 1);
        assert_eq!(idx.line_of(3), 2);
        assert_eq!(idx.line_of(6), 3);
        assert_eq!(idx.line_of(7), 4);
        assert_eq!(idx.line_of(100), 4);
    }
}
