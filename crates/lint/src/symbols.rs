//! Per-crate lock symbol resolution.
//!
//! Walks the parse layer's items and names every lock the crate
//! declares: `Mutex`/`RwLock` (and their instrumented `DepMutex`/
//! `DepRwLock` wrappers from `gopim-obs`) behind struct fields or
//! statics, plus `Condvar`/`DepCondvar` declarations. Each lock gets a
//! stable **class name** `<crate>::<field-or-static>` — the same name
//! the runtime lockdep witness uses, so the static graph and the
//! witnessed order matrix speak one vocabulary (DESIGN.md §15).
//!
//! The pass also recognizes *passthrough* helpers — free functions
//! like `lock_recover(&Mutex<T>) -> MutexGuard<..>` that acquire on
//! behalf of their caller — so call sites resolve through them.

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::{FnItem, ParsedFile};

/// What flavor of lock a class is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex` / `DepMutex` — exclusive.
    Mutex,
    /// `RwLock` / `DepRwLock` — readers are not distinguished from
    /// writers (conservative: any acquisition is an acquisition).
    RwLock,
}

/// One declared lock.
#[derive(Debug, Clone)]
pub struct LockSym {
    /// Stable class name, `<crate>::<name>`.
    pub class: String,
    /// Mutex vs RwLock.
    pub kind: LockKind,
    /// Workspace-relative file of the declaration.
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
}

/// Everything the symbol pass resolved for one crate.
#[derive(Debug, Default)]
pub struct CrateSymbols {
    /// Crate short name (`par`, `serve`, ..), from the path.
    pub krate: String,
    /// Field/static name → lock. Two same-named lock fields in one
    /// crate share a class (conservative merge; keep lock field names
    /// unique per crate).
    pub locks: BTreeMap<String, LockSym>,
    /// Field/static names declared as `Condvar`/`DepCondvar`.
    pub condvars: BTreeSet<String>,
    /// Free functions that take a `&Mutex`-family reference and
    /// return a guard (`lock_recover`): calling one acquires the lock
    /// named by its first argument.
    pub lock_passthroughs: BTreeSet<String>,
    /// Free functions that take a `&Condvar` and a guard
    /// (`wait_recover`): calling one is a condvar wait.
    pub wait_passthroughs: BTreeSet<String>,
    /// Static/field names declared as `LazyCounter`/`LazyGauge`/
    /// `LazyHistogram`, mapped to the `obs::*` registry class their
    /// updates resolve through (the global registry takes that lock
    /// on first use). Modeling the update as an acquisition keeps the
    /// runtime witness a subgraph of the static graph even for runs
    /// with metrics enabled.
    pub metric_statics: BTreeMap<String, &'static str>,
}

/// Lock-type identifiers, with their kinds.
const MUTEX_TYPES: &[&str] = &["Mutex", "DepMutex"];
const RWLOCK_TYPES: &[&str] = &["RwLock", "DepRwLock"];
const CONDVAR_TYPES: &[&str] = &["Condvar", "DepCondvar"];

/// Lazy metric instruments → the registry lock class behind them.
const METRIC_TYPES: &[(&str, &str)] = &[
    ("LazyCounter", "obs::counters"),
    ("LazyGauge", "obs::gauges"),
    ("LazyHistogram", "obs::histograms"),
];

/// The crate short name for a workspace-relative path:
/// `crates/<name>/src/..` → `<name>`, anything else → `crate`.
pub fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "crate".to_string()
}

fn lock_kind(ty: &[String]) -> Option<LockKind> {
    // The *first* lock-type identifier wins, so `Arc<Mutex<..>>`
    // resolves and `Mutex<Vec<RwLock<..>>>` stays a Mutex.
    for t in ty {
        if MUTEX_TYPES.contains(&t.as_str()) {
            return Some(LockKind::Mutex);
        }
        if RWLOCK_TYPES.contains(&t.as_str()) {
            return Some(LockKind::RwLock);
        }
    }
    None
}

fn is_condvar(ty: &[String]) -> bool {
    ty.iter().any(|t| CONDVAR_TYPES.contains(&t.as_str()))
}

fn metric_class(ty: &[String]) -> Option<&'static str> {
    ty.iter().find_map(|t| {
        METRIC_TYPES
            .iter()
            .find(|(name, _)| t == name)
            .map(|(_, class)| *class)
    })
}

fn mentions(tokens: &[String], names: &[&str]) -> bool {
    tokens.iter().any(|t| names.contains(&t.as_str()))
}

fn is_lock_passthrough(f: &FnItem) -> bool {
    f.self_ty.is_none()
        && (mentions(&f.params, MUTEX_TYPES) || mentions(&f.params, RWLOCK_TYPES))
        && f.ret.iter().any(|t| t.ends_with("Guard"))
}

fn is_wait_passthrough(f: &FnItem) -> bool {
    f.self_ty.is_none()
        && mentions(&f.params, CONDVAR_TYPES)
        && f.params.iter().any(|t| t.ends_with("Guard"))
}

/// Folds one parsed file into its crate's symbol table. `line_of`
/// maps a byte offset to a 1-based line in this file.
pub fn collect(
    syms: &mut CrateSymbols,
    path: &str,
    parsed: &ParsedFile,
    line_of: impl Fn(usize) -> usize,
) {
    let declare = |syms: &mut CrateSymbols, name: &str, ty: &[String], offset: usize| {
        if let Some(kind) = lock_kind(ty) {
            let class = format!("{}::{}", syms.krate, name);
            syms.locks.entry(name.to_string()).or_insert(LockSym {
                class,
                kind,
                file: path.to_string(),
                line: line_of(offset),
            });
        } else if is_condvar(ty) {
            syms.condvars.insert(name.to_string());
        } else if let Some(class) = metric_class(ty) {
            syms.metric_statics.insert(name.to_string(), class);
        }
    };
    for s in &parsed.structs {
        for f in &s.fields {
            declare(syms, &f.name, &f.ty, f.offset);
        }
    }
    for s in &parsed.statics {
        declare(syms, &s.name, &s.ty, s.offset);
    }
    for f in &parsed.fns {
        if is_lock_passthrough(f) {
            syms.lock_passthroughs.insert(f.name.clone());
        }
        if is_wait_passthrough(f) {
            syms.wait_passthroughs.insert(f.name.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, LineIndex, Token, TokenKind};
    use crate::parse::parse;

    fn symbols(path: &str, src: &str) -> CrateSymbols {
        let tokens = lex(src);
        let sig: Vec<Token> = tokens
            .iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .copied()
            .collect();
        let parsed = parse(src, &sig);
        let lines = LineIndex::new(src);
        let mut syms = CrateSymbols {
            krate: crate_of(path),
            ..CrateSymbols::default()
        };
        collect(&mut syms, path, &parsed, |o| lines.line_of(o));
        syms
    }

    #[test]
    fn fields_statics_and_condvars_resolve() {
        let src = "\
static SINKS: Mutex<Vec<Sink>> = Mutex::new(Vec::new());
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    work_ready: Condvar,
    flags: AtomicBool,
    table: Arc<RwLock<u32>>,
}
";
        let syms = symbols("crates/par/src/pool.rs", src);
        assert_eq!(syms.krate, "par");
        assert_eq!(syms.locks.len(), 3);
        assert_eq!(syms.locks["queue"].class, "par::queue");
        assert_eq!(syms.locks["queue"].kind, LockKind::Mutex);
        assert_eq!(syms.locks["SINKS"].line, 1);
        assert_eq!(syms.locks["table"].kind, LockKind::RwLock);
        assert!(syms.condvars.contains("work_ready"));
        assert!(!syms.locks.contains_key("flags"));
    }

    #[test]
    fn dep_wrappers_count_as_locks() {
        let src = "struct Core { state: DepMutex<SchedState>, work_cv: DepCondvar }";
        let syms = symbols("crates/serve/src/server.rs", src);
        assert_eq!(syms.locks["state"].class, "serve::state");
        assert!(syms.condvars.contains("work_cv"));
    }

    #[test]
    fn passthrough_helpers_are_recognized() {
        let src = "\
fn lock_recover<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> { m.lock().unwrap_or_else(|e| e.into_inner()) }
fn wait_recover<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> { cv.wait(g).unwrap_or_else(|e| e.into_inner()) }
fn plain(m: &Mutex<u32>) -> u32 { 0 }
";
        let syms = symbols("crates/serve/src/server.rs", src);
        assert!(syms.lock_passthroughs.contains("lock_recover"));
        assert!(syms.wait_passthroughs.contains("wait_recover"));
        assert!(!syms.lock_passthroughs.contains("plain"));
        assert!(!syms.wait_passthroughs.contains("lock_recover"));
    }

    #[test]
    fn metric_statics_map_to_registry_classes() {
        let src = "\
static MEMO_HITS: LazyCounter = LazyCounter::new(\"cache.memo_hits\");
static QUEUE_DEPTH: LazyGauge = LazyGauge::new(\"serve.queue_depth\");
static WAIT_NS: LazyHistogram = LazyHistogram::new(\"serve.wait_ns\");
static PLAIN: AtomicU64 = AtomicU64::new(0);
";
        let syms = symbols("crates/cache/src/memo.rs", src);
        assert_eq!(syms.metric_statics["MEMO_HITS"], "obs::counters");
        assert_eq!(syms.metric_statics["QUEUE_DEPTH"], "obs::gauges");
        assert_eq!(syms.metric_statics["WAIT_NS"], "obs::histograms");
        assert!(!syms.metric_statics.contains_key("PLAIN"));
        assert!(syms.locks.is_empty());
    }

    #[test]
    fn paths_outside_crates_get_a_fallback_name() {
        assert_eq!(crate_of("src/lib.rs"), "crate");
        assert_eq!(crate_of("crates/cache/src/store.rs"), "cache");
    }
}
