//! Property tests for the linter's lexer: lexing arbitrary generated
//! token soup — including unterminated and degenerate fragments —
//! never panics, and the produced spans exactly tile the input, so
//! concatenating every token's text round-trips the source.

use gopim_lint::lexer::lex;
use gopim_testkit::prop::{check_with, Config};

/// Fragments mixing well-formed tokens with degenerate tails that a
/// hostile source file could end on.
const FRAGMENTS: &[&str] = &[
    "fn",
    "ident_1",
    "r#match",
    "'a",
    "'a,",
    "'\\n'",
    "'x'",
    "b'x'",
    "\"str \\\" esc\"",
    "r\"raw\"",
    "r#\"raw \" inside\"#",
    "r##\"# nested \"# hashes\"##",
    "b\"bytes\"",
    "br#\"raw bytes\"#",
    "/* block /* nested */ still */",
    "// line comment",
    "/// doc",
    "0x1fE",
    "0b10_01",
    "1_000.5e-3",
    "123u64",
    "1.",
    "0.5f32",
    "::",
    "->",
    "=>",
    "..=",
    "#[attr(foo = \"bar\")]",
    "#![inner]",
    "{",
    "}",
    "(",
    ")",
    ";",
    " ",
    "\n",
    "\t",
    "\r\n",
    // Degenerate / unterminated pieces.
    "\"unterminated",
    "r#\"open",
    "/* open /* deeper",
    "'",
    "r#",
    "#\"",
    "b",
    "br",
    "\\",
    "\u{1F600}",
    "日本語",
    "\u{0}",
];

fn assert_tiles(src: &str) {
    let tokens = lex(src);
    let mut pos = 0usize;
    let mut rebuilt = String::new();
    for t in &tokens {
        assert_eq!(t.start, pos, "token gap/overlap at byte {pos} in {src:?}");
        assert!(t.end > t.start, "empty token at byte {pos} in {src:?}");
        rebuilt.push_str(t.text(src));
        pos = t.end;
    }
    assert_eq!(pos, src.len(), "tokens must cover all of {src:?}");
    assert_eq!(rebuilt, src, "token texts must round-trip the source");
}

#[test]
fn lexing_token_soup_never_panics_and_tiles_spans() {
    check_with(
        "lexing_token_soup_never_panics_and_tiles_spans",
        Config::cases(200),
        |d| {
            let parts = d.vec("parts", 0usize..40, |d| d.pick("frag", FRAGMENTS));
            let src: String = parts.concat();
            assert_tiles(&src);
        },
    );
}

#[test]
fn lexing_arbitrary_char_salad_never_panics_and_tiles_spans() {
    check_with(
        "lexing_arbitrary_char_salad_never_panics_and_tiles_spans",
        Config::cases(200),
        |d| {
            let chars = d.vec("chars", 0usize..120, |d| {
                let c = d.draw("c", 0u32..0x2_0000);
                char::from_u32(c).unwrap_or('\u{FFFD}')
            });
            let src: String = chars.into_iter().collect();
            assert_tiles(&src);
        },
    );
}
