//! Adversarial property tests for the item/expression parse layer
//! behind the concurrency analyzer: parsing hostile source — raw
//! strings full of braces and `//`, nested block comments inside
//! macro bodies, `r#ident` raw identifiers, unterminated fragments —
//! never panics, and every parsed function's event stream stays sane
//! (offsets in bounds and non-decreasing, scope and closure events
//! prefix-balanced). The lexer property suite proves tokens tile the
//! source; this suite proves the layer above cannot be derailed by
//! token content.

use gopim_lint::lexer::{lex, Token, TokenKind};
use gopim_lint::parse::{parse, Event, ParsedFile};
use gopim_testkit::prop::{check_with, Config};

fn significant(src: &str) -> Vec<Token> {
    lex(src)
        .into_iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect()
}

fn event_offset(e: &Event) -> usize {
    match e {
        Event::Open { offset, .. }
        | Event::Close { offset }
        | Event::StmtEnd { offset }
        | Event::Let { offset, .. }
        | Event::ClosureStart { offset }
        | Event::ClosureEnd { offset } => *offset,
        Event::Call(c) => c.offset,
    }
}

/// Parses `src` and checks every structural invariant the lock-graph
/// walker relies on.
fn assert_sane(src: &str) -> ParsedFile {
    let sig = significant(src);
    let parsed = parse(src, &sig);
    for f in &parsed.fns {
        let mut depth = 0i64;
        let mut closures = 0i64;
        let mut last = 0usize;
        for e in &f.events {
            let off = event_offset(e);
            assert!(off <= src.len(), "offset {off} out of bounds in {src:?}");
            assert!(
                off >= last,
                "event offsets regressed ({last} -> {off}) in {src:?}"
            );
            last = off;
            match e {
                Event::Open { .. } => depth += 1,
                Event::Close { .. } => {
                    depth -= 1;
                    assert!(depth >= 0, "unmatched close in {src:?}");
                }
                Event::ClosureStart { .. } => closures += 1,
                Event::ClosureEnd { .. } => {
                    closures -= 1;
                    assert!(closures >= 0, "unmatched closure end in {src:?}");
                }
                _ => {}
            }
        }
    }
    parsed
}

#[test]
fn raw_strings_full_of_braces_do_not_derail_scopes() {
    // The raw string closes three scopes' worth of braces and opens a
    // line comment — all inert content. A confused brace counter
    // would swallow `after`.
    let src = r####"
pub fn tricky() {
    let s = r#"} } } { // not a comment " \ "#;
    let g = m.lock();
}
pub fn after() {}
"####;
    let parsed = assert_sane(src);
    let names: Vec<&str> = parsed.fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, vec!["tricky", "after"]);
    let has_lock = parsed.fns[0]
        .events
        .iter()
        .any(|e| matches!(e, Event::Call(c) if c.name == "lock" && c.method));
    assert!(has_lock, "{:?}", parsed.fns[0].events);
}

#[test]
fn nested_block_comments_inside_macro_bodies_stay_inert() {
    let src = "
macro_rules! weird {
    () => { /* outer /* inner } } { */ still outer */ };
}
pub fn real() { let q = r\"}\"; }
";
    let parsed = assert_sane(src);
    assert!(
        parsed.fns.iter().any(|f| f.name == "real"),
        "{:?}",
        parsed.fns
    );
}

#[test]
fn raw_identifiers_parse_as_names() {
    let src = "
pub fn r#match(r#else: u32) -> u32 { r#else }
pub struct r#struct { pub r#type: u32 }
pub static r#static: u32 = 0;
";
    // `r#ident` lexes as one identifier token; the parse layer must
    // treat it like any other name, not a raw-string opener.
    let parsed = assert_sane(src);
    assert_eq!(parsed.fns.len(), 1, "{:?}", parsed.fns);
    assert_eq!(parsed.structs.len(), 1, "{:?}", parsed.structs);
    assert_eq!(parsed.statics.len(), 1, "{:?}", parsed.statics);
}

/// Rust-flavored fragments, well-formed and hostile alike: item
/// skeletons, guard-shaped statements, raw strings hiding braces and
/// comment openers, nested comments, closures, and degenerate tails.
const FRAGMENTS: &[&str] = &[
    "pub fn f() {\n",
    "fn g(x: u32) -> u32 {\n",
    "}\n",
    "{ ",
    "let g = m.lock();\n",
    "let a = lock_recover(&LOCK_A);\n",
    "drop(g);\n",
    "let v = rx.recv();\n",
    "while *g == 0 { g = cv.wait(g); }\n",
    "let s = r#\"} } { // \" \\ \"#;\n",
    "let t = \"{ } // /* \";\n",
    "/* /* nested } */ { */\n",
    "// line { } \"\n",
    "macro_rules! m { () => { fn not_an_item() {} } }\n",
    "|x| x + 1",
    "move || { inner() }",
    ".map(|e| e.into_inner())",
    "struct S { m: Mutex<u32>, cv: Condvar }\n",
    "static LOCK: Mutex<Vec<u8>> = Mutex::new(Vec::new());\n",
    "impl S { fn lock(&self) -> MutexGuard<'_, u32> { self.m.lock() } }\n",
    "match x { Some(_) => {} None => {} }\n",
    "if let Ok(v) = r { v } else { 0 }\n",
    "for i in 0..n { body(i); }\n",
    "pub fn r#match() {}\n",
    "let r#let = r#fn();\n",
    "#[derive(Debug)]\n",
    "type Alias = BTreeMap<String, Vec<u8>>;\n",
    "where T: Send + 'static",
    "-> Result<(), String> {",
    "::<u32, _>(",
    ");\n",
    ";",
    ",",
    // Degenerate / unterminated pieces.
    "fn broken(",
    "r#\"open brace { and no close",
    "\"unterminated { //",
    "/* open /* deeper {",
    "r#",
    "let",
    "impl",
    "|",
    "||",
    "'a",
];

#[test]
fn parsing_rust_flavored_soup_never_panics_and_events_stay_sane() {
    check_with(
        "parsing_rust_flavored_soup_never_panics_and_events_stay_sane",
        Config::cases(200),
        |d| {
            let parts = d.vec("parts", 0usize..30, |d| d.pick("frag", FRAGMENTS));
            let src: String = parts.concat();
            assert_sane(&src);
        },
    );
}

#[test]
fn parsing_arbitrary_char_salad_never_panics() {
    check_with(
        "parsing_arbitrary_char_salad_never_panics",
        Config::cases(200),
        |d| {
            let chars = d.vec("chars", 0usize..120, |d| {
                let c = d.draw("c", 0u32..0x2_0000);
                char::from_u32(c).unwrap_or('\u{FFFD}')
            });
            let src: String = chars.into_iter().collect();
            assert_sane(&src);
        },
    );
}
