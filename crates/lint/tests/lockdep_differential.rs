//! The differential contract between the two halves of the
//! concurrency-safety analyzer: the *static* lock-graph pass and the
//! *runtime* lockdep witness must flag the **same** seeded ABBA
//! cycle, by name. The fixture at `fixtures/locks` declares the
//! inversion in source; this test replays the identical acquisition
//! orders on named `DepMutex`es (sequentially, on one thread — real
//! ABBA interleaving would deadlock for real) and compares the two
//! verdicts. It then feeds the runtime matrix back through
//! `check_witness` to prove the witness is a subgraph of the static
//! graph — the property the verify.sh lockdep leg asserts over full
//! `fig04`/`loadgen` runs.

use std::collections::BTreeSet;

use gopim_lint::lockgraph::{self, Witness};
use gopim_obs::lockdep;
use gopim_obs::DepMutex;
use gopim_testkit::workspace_root;

/// Class names the fixture's declarations map to, shared verbatim by
/// the runtime locks below.
const CLASS_A: &str = "locks::LOCK_A";
const CLASS_B: &str = "locks::LOCK_B";

/// The backtick-quoted class names inside a finding/violation message
/// that belong to the fixture.
fn named_classes(message: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for part in message.split('`').skip(1).step_by(2) {
        if part.starts_with("locks::") {
            out.insert(part.to_string());
        }
    }
    out
}

// One #[test] fn: the witness matrix is process-global, so the
// static/runtime/subgraph stages must run in a fixed order.
#[test]
fn static_and_runtime_flag_the_same_cycle() {
    // --- static half: analyze the seeded fixture workspace ---
    let root = workspace_root().join("crates/lint/fixtures/locks");
    let analysis = gopim_lint::lock_graph(&root).expect("fixture analyzes");
    assert!(
        analysis.graph.has_cycles(),
        "the fixture must seed a cycle: {:?}",
        analysis.graph
    );
    let inversions: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.rule == lockgraph::LOCK_ORDER_INVERSION)
        .collect();
    assert!(!inversions.is_empty(), "{:?}", analysis.findings);
    let mut static_cycle = BTreeSet::new();
    for f in &inversions {
        static_cycle.extend(named_classes(&f.message));
    }
    assert_eq!(
        static_cycle,
        BTreeSet::from([CLASS_A.to_string(), CLASS_B.to_string()]),
        "static cycle names the seeded pair"
    );

    // --- runtime half: replay the fixture's two orders, same names ---
    static A: DepMutex<u32> = DepMutex::new(CLASS_A, 0);
    static B: DepMutex<u32> = DepMutex::new(CLASS_B, 0);
    lockdep::set_lockdep_enabled(true);
    lockdep::reset();
    {
        // ab(): A then B.
        let _a = A.lock();
        let _b = B.lock();
    }
    {
        // ba(): B then A — contradicts the witnessed order.
        let _b = B.lock();
        let _a = A.lock();
    }
    let violations = lockdep::violations();
    assert_eq!(violations.len(), 1, "{violations:?}");
    let runtime_cycle = named_classes(&violations[0]);

    // --- the differential assertion: same cycle, both halves ---
    assert_eq!(
        static_cycle, runtime_cycle,
        "static pass and runtime witness must name the same cycle"
    );

    // --- the witnessed matrix is a subgraph of the static graph ---
    // (Both orders exist statically in the fixture, so classes and
    // edges check out; the run's violation is the only discrepancy —
    // exactly what `--check-witness` must surface.)
    let witness = Witness {
        classes: lockdep::witnessed_classes(),
        edges: lockdep::witnessed_edges(),
        violations: Vec::new(),
    };
    assert!(
        lockgraph::check_witness(&analysis.graph, &witness).is_empty(),
        "witnessed matrix must be a subgraph of the fixture's static graph"
    );
    let with_violations = Witness {
        violations: violations.clone(),
        ..witness
    };
    let problems = lockgraph::check_witness(&analysis.graph, &with_violations);
    assert_eq!(problems.len(), 1, "{problems:?}");
    assert!(
        problems[0].contains("runtime order violation"),
        "{problems:?}"
    );

    // --- and the real workspace's static graph is cycle-free ---
    let repo = gopim_lint::lock_graph(&workspace_root()).expect("workspace analyzes");
    assert!(
        !repo.graph.has_cycles(),
        "the real workspace must stay deadlock-free: {}",
        repo.graph.render_human()
    );
    assert!(repo.findings.is_empty(), "{:?}", repo.findings);

    lockdep::reset();
    lockdep::set_lockdep_enabled(false);
}
