//! Golden snapshot of the linter's human-readable report over the
//! fixture mini-crate at `fixtures/mini` (refresh with
//! `GOPIM_GOLDEN=update cargo test -q -p gopim-lint`).

use gopim_testkit::{golden, workspace_root};

#[test]
fn fixture_report_matches_golden_snapshot() {
    let root = workspace_root().join("crates/lint/fixtures/mini");
    let outcome = gopim_lint::lint_workspace(&root).expect("fixture lints");
    assert!(!outcome.clean(), "the fixture must have findings");
    golden::check("lint_fixture_report", &outcome.render_human());
}
