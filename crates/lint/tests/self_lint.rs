//! Self-lint smoke: the linter holds its own workspace — including
//! this crate — to the contracts it enforces. The tree must be clean
//! modulo the committed `lint-baseline.json` ratchet.

use gopim_testkit::workspace_root;

#[test]
fn workspace_is_clean_modulo_committed_baseline() {
    let outcome = gopim_lint::lint_workspace(&workspace_root()).expect("workspace lints");
    assert!(
        outcome.clean(),
        "lint findings beyond the committed baseline:\n{}",
        outcome.render_human()
    );
}
