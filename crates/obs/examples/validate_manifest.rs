//! Offline validator for run manifests — used by `scripts/verify.sh`
//! to check a traced smoke run's `GOPIM_MANIFEST` artifact without
//! external JSON tooling.
//!
//! Usage: `validate_manifest <manifest.json> [--require-spans]`
//!
//! Exits non-zero (with a diagnostic on stderr) if the file is not a
//! schema-valid manifest; with `--require-spans`, also when the
//! manifest carries no span aggregates.

use gopim_obs::manifest::validate_manifest;

fn main() {
    let mut path = None;
    let mut require_spans = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--require-spans" => require_spans = true,
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("validate_manifest: unexpected argument '{other}'");
                std::process::exit(2);
            }
        }
    }
    let path = match path {
        Some(p) => p,
        None => {
            eprintln!("usage: validate_manifest <manifest.json> [--require-spans]");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_manifest: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match validate_manifest(&text) {
        Ok(labels) => {
            if require_spans && labels == 0 {
                eprintln!("validate_manifest: {path}: no span aggregates in manifest");
                std::process::exit(1);
            }
            println!("ok: schema-valid manifest with {labels} span label(s) in {path}");
        }
        Err(e) => {
            eprintln!("validate_manifest: {path}: {e}");
            std::process::exit(1);
        }
    }
}
