//! Offline validator for emitted Chrome traces — used by
//! `scripts/verify.sh` to check a traced smoke run without external
//! JSON tooling.
//!
//! Usage: `validate_trace <trace.json> [expected-name-prefix ...]`
//!
//! Exits non-zero (with a diagnostic on stderr) if the file is not
//! valid JSON, has no `traceEvents`, or any expected prefix matches no
//! span name.

use gopim_obs::export::{parse_json, validate_chrome_trace, Json};

fn main() {
    let mut args = std::env::args().skip(1);
    let path = match args.next() {
        Some(p) => p,
        None => {
            eprintln!("usage: validate_trace <trace.json> [expected-name-prefix ...]");
            std::process::exit(2);
        }
    };
    let expected: Vec<String> = args.collect();
    let expected_refs: Vec<&str> = expected.iter().map(String::as_str).collect();

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_trace: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match validate_chrome_trace(&text, &expected_refs) {
        Ok(spans) => {
            let cats = distinct_cats(&text);
            println!(
                "ok: {spans} spans, {} categories ({}) in {path}",
                cats.len(),
                cats.join(", ")
            );
        }
        Err(e) => {
            eprintln!("validate_trace: {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn distinct_cats(text: &str) -> Vec<String> {
    let mut cats = Vec::new();
    if let Ok(doc) = parse_json(text) {
        if let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) {
            for e in events {
                if let Some(cat) = e.get("cat").and_then(Json::as_str) {
                    if !cats.iter().any(|c| c == cat) {
                        cats.push(cat.to_string());
                    }
                }
            }
        }
    }
    cats.sort();
    cats
}
