//! Span aggregation: turns a drained event buffer into per-label
//! statistics (count, total, self-time, quantiles) and collapsed
//! stacks suitable for `flamegraph.pl` / speedscope.
//!
//! Aggregation reconstructs the call tree per `(pid, tid)` lane from
//! interval containment: within a lane, spans are sorted by start
//! (ties broken longest-first, then record order), and a span whose
//! interval begins before the previous one ends is its child. Self
//! time is a span's duration minus its direct children's durations —
//! the quantity flamegraphs assign to each frame.

use std::collections::BTreeMap;

use crate::metrics::{Histogram, HistogramSnapshot, BUCKETS};
use crate::span::SpanEvent;

/// Aggregated statistics for one span label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelStats {
    /// Number of spans with this label.
    pub count: u64,
    /// Sum of span durations, ns (inclusive of children).
    pub total_ns: u64,
    /// Sum of self times, ns (durations minus direct children).
    pub self_ns: u64,
    /// Shortest span, ns.
    pub min_ns: u64,
    /// Longest span, ns.
    pub max_ns: u64,
    /// Power-of-two duration histogram — quantiles come from
    /// [`HistogramSnapshot::quantile`].
    pub durations: HistogramSnapshot,
}

impl LabelStats {
    fn new() -> LabelStats {
        LabelStats {
            count: 0,
            total_ns: 0,
            self_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            durations: HistogramSnapshot {
                counts: vec![0; BUCKETS],
                count: 0,
                sum: 0,
            },
        }
    }

    fn record(&mut self, dur_ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(dur_ns);
        self.min_ns = self.min_ns.min(dur_ns);
        self.max_ns = self.max_ns.max(dur_ns);
        self.durations.counts[Histogram::bucket_index(dur_ns)] += 1;
        self.durations.count += 1;
        self.durations.sum = self.durations.sum.saturating_add(dur_ns);
    }
}

/// The full aggregation result for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanAggregate {
    /// Per-label statistics, sorted by label.
    pub labels: BTreeMap<String, LabelStats>,
    /// Collapsed stacks: `parent;child` path → total self ns on that
    /// path (the flamegraph.pl input format, see
    /// [`crate::report::render_folded`]).
    pub folded: BTreeMap<String, u64>,
    /// Non-metadata events aggregated.
    pub spans: usize,
    /// Events lost to the collector cap (from [`crate::span::dropped`],
    /// captured by the caller before draining).
    pub dropped: u64,
}

/// The label a span aggregates under: the bare name for wall-clock
/// `span` events, `category:name` for everything else (so simulated
/// stage intervals like `sim.compute:AG1` stay distinguishable from
/// wall spans).
pub fn label_of(e: &SpanEvent) -> String {
    if e.cat == "span" {
        e.name.clone()
    } else {
        format!("{}:{}", e.cat, e.name)
    }
}

/// A frame on the in-flight stack during lane reconstruction.
struct Frame {
    label: String,
    end_ns: u64,
    self_ns: u64,
}

/// Aggregates drained events into per-label stats and folded stacks.
/// `dropped` is the collector's loss count for the same window
/// (read [`crate::span::dropped`] *before* draining).
pub fn aggregate(events: &[SpanEvent], dropped: u64) -> SpanAggregate {
    let mut agg = SpanAggregate {
        dropped,
        ..SpanAggregate::default()
    };

    // Group event indices per (pid, tid) lane; metadata events carry
    // no interval and are skipped.
    let mut lanes: BTreeMap<(u32, u64), Vec<usize>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.cat.starts_with("meta.") {
            continue;
        }
        lanes.entry((e.pid, e.tid)).or_default().push(i);
        agg.spans += 1;
    }

    for indices in lanes.values_mut() {
        // Start ascending; at equal starts the longer span is the
        // parent; record order breaks exact ties deterministically.
        indices.sort_by(|&a, &b| {
            let (ea, eb) = (&events[a], &events[b]);
            ea.start_ns
                .cmp(&eb.start_ns)
                .then(eb.dur_ns.cmp(&ea.dur_ns))
                .then(a.cmp(&b))
        });
        let mut stack: Vec<Frame> = Vec::new();
        for &i in indices.iter() {
            let e = &events[i];
            while stack.last().is_some_and(|top| e.start_ns >= top.end_ns) {
                finalize(&mut agg, &mut stack);
            }
            let dur = e.dur_ns;
            let label = label_of(e);
            if let Some(parent) = stack.last_mut() {
                parent.self_ns = parent.self_ns.saturating_sub(dur);
            }
            agg.labels
                .entry(label.clone())
                .or_insert_with(LabelStats::new)
                .record(dur);
            stack.push(Frame {
                label,
                end_ns: e.start_ns.saturating_add(dur),
                self_ns: dur,
            });
        }
        while !stack.is_empty() {
            finalize(&mut agg, &mut stack);
        }
    }
    agg
}

/// Pops the top frame, crediting its self time to its label and to
/// the folded path formed by the frames still below it.
fn finalize(agg: &mut SpanAggregate, stack: &mut Vec<Frame>) {
    if let Some(top) = stack.pop() {
        if let Some(stats) = agg.labels.get_mut(&top.label) {
            stats.self_ns = stats.self_ns.saturating_add(top.self_ns);
        }
        if top.self_ns > 0 {
            let mut path = String::new();
            for frame in stack.iter() {
                path.push_str(&frame.label);
                path.push(';');
            }
            path.push_str(&top.label);
            let slot = agg.folded.entry(path).or_insert(0);
            *slot = slot.saturating_add(top.self_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::WALL_PID;

    fn ev(name: &str, cat: &'static str, tid: u64, start: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            pid: WALL_PID,
            tid,
            name: name.into(),
            cat,
            start_ns: start,
            dur_ns: dur,
            args: Vec::new(),
        }
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        // parent [0, 100) contains child [10, 40): parent self 70.
        let events = vec![
            ev("parent", "span", 1, 0, 100),
            ev("child", "span", 1, 10, 30),
        ];
        let agg = aggregate(&events, 0);
        assert_eq!(agg.spans, 2);
        assert_eq!(agg.labels["parent"].total_ns, 100);
        assert_eq!(agg.labels["parent"].self_ns, 70);
        assert_eq!(agg.labels["child"].self_ns, 30);
        assert_eq!(agg.folded["parent"], 70);
        assert_eq!(agg.folded["parent;child"], 30);
    }

    #[test]
    fn siblings_both_subtract_from_the_parent() {
        let events = vec![
            ev("parent", "span", 1, 0, 100),
            ev("a", "span", 1, 5, 20),
            ev("b", "span", 1, 30, 40),
        ];
        let agg = aggregate(&events, 0);
        assert_eq!(agg.labels["parent"].self_ns, 40);
        assert_eq!(agg.folded["parent;a"], 20);
        assert_eq!(agg.folded["parent;b"], 40);
    }

    #[test]
    fn lanes_do_not_nest_across_threads() {
        // Same intervals on different tids: no containment.
        let events = vec![ev("x", "span", 1, 0, 100), ev("y", "span", 2, 10, 30)];
        let agg = aggregate(&events, 0);
        assert_eq!(agg.labels["x"].self_ns, 100);
        assert_eq!(agg.labels["y"].self_ns, 30);
        assert_eq!(agg.folded["x"], 100);
        assert_eq!(agg.folded["y"], 30);
    }

    #[test]
    fn labels_merge_counts_and_track_extremes() {
        let events = vec![
            ev("k", "span", 1, 0, 10),
            ev("k", "span", 1, 20, 50),
            ev("k", "span", 2, 0, 30),
        ];
        let agg = aggregate(&events, 7);
        let s = &agg.labels["k"];
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 90);
        assert_eq!((s.min_ns, s.max_ns), (10, 50));
        assert_eq!(s.durations.count, 3);
        assert_eq!(agg.dropped, 7);
        // p50 lands in value 30's bucket ([16, 32)).
        let p50 = s.durations.quantile(0.5);
        assert!((16.0..=32.0).contains(&p50), "p50={p50}");
    }

    #[test]
    fn meta_events_and_sim_categories_are_handled() {
        let events = vec![
            SpanEvent {
                pid: 1,
                tid: 0,
                name: "sim: run".into(),
                cat: "meta.process_name",
                start_ns: 0,
                dur_ns: 0,
                args: Vec::new(),
            },
            SpanEvent {
                pid: 1,
                tid: 2,
                name: "AG1".into(),
                cat: "sim.compute",
                start_ns: 10,
                dur_ns: 90,
                args: Vec::new(),
            },
        ];
        let agg = aggregate(&events, 0);
        assert_eq!(agg.spans, 1, "meta events are skipped");
        assert!(agg.labels.contains_key("sim.compute:AG1"));
    }

    #[test]
    fn zero_self_time_paths_are_omitted_from_folded() {
        // Child exactly covers the parent: parent self 0.
        let events = vec![
            ev("parent", "span", 1, 0, 50),
            ev("child", "span", 1, 0, 50),
        ];
        let agg = aggregate(&events, 0);
        assert_eq!(agg.labels["parent"].self_ns, 0);
        assert!(!agg.folded.contains_key("parent"));
        assert_eq!(agg.folded["parent;child"], 50);
    }
}
