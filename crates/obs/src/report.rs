//! Renderers for [`SpanAggregate`](crate::aggregate::SpanAggregate):
//! a plain-text profile table (`GOPIM_PROFILE`) and a collapsed-stack
//! export (`GOPIM_PROFILE_FOLDED`) consumable by `flamegraph.pl` or
//! [speedscope](https://www.speedscope.app).

use crate::aggregate::SpanAggregate;

/// Formats nanoseconds with a readable unit (ns/µs/ms/s).
fn human_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}µs", v / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the per-label profile table, sorted by self time
/// descending (the flamegraph ordering: where did the run actually
/// spend its time).
pub fn render_profile(agg: &SpanAggregate) -> String {
    let mut out = String::from("== gopim profile ==\n");
    out.push_str(&format!(
        "{} span(s) aggregated, {} dropped at the collector cap\n",
        agg.spans, agg.dropped
    ));
    if agg.labels.is_empty() {
        out.push_str("(no spans recorded)\n");
        return out;
    }
    let mut rows: Vec<(&String, &crate::aggregate::LabelStats)> = agg.labels.iter().collect();
    rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));
    out.push_str(&format!(
        "{:<44} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "label", "count", "total", "self", "p50", "p95", "p99"
    ));
    for (label, s) in rows {
        out.push_str(&format!(
            "{:<44} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            label,
            s.count,
            human_ns(s.total_ns),
            human_ns(s.self_ns),
            human_ns(s.durations.quantile(0.50) as u64),
            human_ns(s.durations.quantile(0.95) as u64),
            human_ns(s.durations.quantile(0.99) as u64),
        ));
    }
    out
}

/// Renders collapsed stacks: one `path value` line per stack, where
/// `path` is `;`-joined frame labels and `value` is the self time in
/// integer nanoseconds — the input format of `flamegraph.pl` and
/// speedscope's "collapsed" importer. Paths with zero self time are
/// omitted by construction.
pub fn render_folded(agg: &SpanAggregate) -> String {
    let mut out = String::new();
    for (path, &self_ns) in &agg.folded {
        out.push_str(&format!("{path} {self_ns}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate;
    use crate::span::{SpanEvent, WALL_PID};

    fn sample_agg() -> SpanAggregate {
        let ev = |name: &str, start: u64, dur: u64| SpanEvent {
            pid: WALL_PID,
            tid: 1,
            name: name.into(),
            cat: "span",
            start_ns: start,
            dur_ns: dur,
            args: Vec::new(),
        };
        aggregate(&[ev("outer", 0, 2_000_000), ev("inner", 100, 500_000)], 2)
    }

    #[test]
    fn profile_orders_by_self_time_and_reports_drops() {
        let text = render_profile(&sample_agg());
        assert!(text.starts_with("== gopim profile =="));
        assert!(text.contains("2 span(s) aggregated, 2 dropped"));
        let outer = text.find("outer").expect("outer row");
        let inner = text.find("inner").expect("inner row");
        assert!(outer < inner, "outer has more self time:\n{text}");
        assert!(text.contains("p95"), "quantile columns present");
    }

    #[test]
    fn empty_aggregate_renders_a_placeholder() {
        let text = render_profile(&SpanAggregate::default());
        assert!(text.contains("(no spans recorded)"));
    }

    #[test]
    fn folded_lines_are_flamegraph_shaped() {
        let text = render_folded(&sample_agg());
        assert!(text.contains("outer 1500000\n"), "outer self time:\n{text}");
        assert!(text.contains("outer;inner 500000\n"));
        for line in text.lines() {
            let (path, value) = line.rsplit_once(' ').expect("path value");
            assert!(!path.is_empty());
            assert!(value.parse::<u64>().expect("integer ns") > 0);
        }
    }

    #[test]
    fn human_ns_picks_units() {
        assert_eq!(human_ns(12), "12ns");
        assert_eq!(human_ns(1_500), "1.50µs");
        assert_eq!(human_ns(2_500_000), "2.50ms");
        assert_eq!(human_ns(3_000_000_000), "3.00s");
    }
}
