//! Global metrics registry: counters, gauges and fixed-bucket
//! histograms behind relaxed atomics.
//!
//! Instruments record through [`LazyCounter`] / [`LazyGauge`] /
//! [`LazyHistogram`] statics, which check [`crate::metrics_enabled`]
//! before touching the registry — the disabled path is one relaxed
//! load. The raw [`Counter`] / [`Gauge`] / [`Histogram`] types record
//! unconditionally, for callers (and tests) that manage their own
//! gating.
//!
//! [`Registry::snapshot`] captures every instrument into a plain
//! [`Snapshot`], which merges (cross-thread / cross-shard sums) and
//! diffs (before/after deltas, how the bench runner reports
//! per-iteration counters).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::lockdep::DepMutex;

/// A monotonically increasing sum (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds a nanosecond quantity given as `f64` (negative and
    /// non-finite values count as zero).
    #[inline]
    pub fn add_ns(&self, ns: f64) {
        if ns > 0.0 && ns.is_finite() {
            self.add(ns as u64);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value / high-water instrument (relaxed atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket `0` holds zeros; bucket `i ≥ 1`
/// holds values in `[2^(i−1), 2^i)`; the last bucket absorbs
/// everything at or above `2^(BUCKETS−2)` (≈ 4.6 × 10¹⁸, so in
/// practice nothing saturates).
pub const BUCKETS: usize = 64;

/// A fixed-bucket power-of-two histogram of `u64` samples
/// (typically nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Inclusive lower bound of bucket `i` (`0` for the zero bucket).
    pub fn bucket_lower(i: usize) -> u64 {
        assert!(i < BUCKETS, "bucket {i} out of range");
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Exclusive upper bound of bucket `i` (`u64::MAX` for the last,
    /// open-ended bucket).
    pub fn bucket_upper(i: usize) -> u64 {
        assert!(i < BUCKETS, "bucket {i} out of range");
        if i == BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a nanosecond sample given as `f64` (negative and
    /// non-finite values clamp to zero).
    #[inline]
    pub fn record_ns(&self, ns: f64) {
        let v = if ns > 0.0 && ns.is_finite() {
            ns as u64
        } else {
            0
        };
        self.record(v);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: counts.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            counts,
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (length [`BUCKETS`]).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the smallest bucket whose cumulative count
    /// reaches `q` (in `[0, 1]`) of the samples — a coarse quantile.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Histogram::bucket_upper(i);
            }
        }
        Histogram::bucket_upper(BUCKETS - 1)
    }

    /// Interpolated quantile estimate: finds the bucket where the
    /// cumulative count crosses `q` of the samples and interpolates
    /// linearly by rank within that bucket's bounds. The open-ended
    /// last bucket is treated as one power-of-two wide, matching its
    /// neighbors. Returns 0 for an empty histogram.
    ///
    /// Power-of-two buckets bound the relative error at 2× in the
    /// worst case; in practice latency distributions spread across
    /// several buckets and the estimate tracks the true quantile far
    /// more closely than [`quantile_upper_bound`]'s ceiling.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate().take(BUCKETS) {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lower = Histogram::bucket_lower(i) as f64;
                let upper = if i == BUCKETS - 1 {
                    2.0 * lower
                } else {
                    Histogram::bucket_upper(i) as f64
                };
                let frac = (target - seen) as f64 / c as f64;
                return lower + frac * (upper - lower);
            }
            seen += c;
        }
        Histogram::bucket_upper(BUCKETS - 1) as f64
    }
}

/// The registry all lazy instruments resolve against.
pub struct Registry {
    counters: DepMutex<BTreeMap<String, Arc<Counter>>>,
    gauges: DepMutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: DepMutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry (tests; production code uses [`global`]).
    /// Instance registries share the global lock classes — for the
    /// `GOPIM_LOCKDEP` witness they are the same locks.
    pub fn new() -> Self {
        Registry {
            counters: DepMutex::new("obs::counters", BTreeMap::new()),
            gauges: DepMutex::new("obs::gauges", BTreeMap::new()),
            histograms: DepMutex::new("obs::histograms", BTreeMap::new()),
        }
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Captures every instrument's current value.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Point-in-time copy of a whole registry. Ordered maps so rendering
/// and comparison are deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram contents by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// True when no instrument has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Element-wise union: counters and histogram buckets add
    /// (saturating, so extreme samples cannot wrap), gauges take the
    /// maximum (high-water semantics). Saturating unsigned addition is
    /// associative and commutative, so per-thread/per-shard snapshots
    /// merge in any grouping to the same total — the property the obs
    /// test suite pins.
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (k, v) in &other.counters {
            let slot = out.counters.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (k, v) in &other.gauges {
            let slot = out.gauges.entry(k.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (k, h) in &other.histograms {
            let slot = out.histograms.entry(k.clone()).or_default();
            if slot.counts.is_empty() {
                slot.counts = vec![0; h.counts.len()];
            }
            for (a, b) in slot.counts.iter_mut().zip(&h.counts) {
                *a = a.saturating_add(*b);
            }
            slot.count = slot.count.saturating_add(h.count);
            slot.sum = slot.sum.saturating_add(h.sum);
        }
        out
    }

    /// Counter deltas `self − earlier` (saturating; gauges and
    /// histograms are not differenced — deltas of high-water marks and
    /// bucket vectors are rarely meaningful).
    pub fn counter_deltas(&self, earlier: &Snapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(k, &v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .filter(|(_, d)| *d > 0)
            .collect()
    }

    /// Plain-text report: one sorted line per instrument.
    pub fn render(&self) -> String {
        let mut out = String::from("== gopim metrics ==\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("counter   {k:<44} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge     {k:<44} {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {k:<44} count={} mean={:.1} p50={:.0} p95={:.0} p99={:.0}\n",
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            ));
        }
        out
    }
}

/// A named counter resolved against the global registry on first use
/// and gated on [`crate::metrics_enabled`] — the form instrumentation
/// sites declare as a `static`.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    /// Declares a counter named `name` (registered on first add).
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Adds `n` when metrics are enabled; a relaxed load otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::metrics_enabled() {
            self.cell.get_or_init(|| global().counter(self.name)).add(n);
        }
    }
}

/// A named gauge resolved lazily and gated like [`LazyCounter`].
pub struct LazyGauge {
    name: &'static str,
    cell: OnceLock<Arc<Gauge>>,
}

impl LazyGauge {
    /// Declares a gauge named `name`.
    pub const fn new(name: &'static str) -> Self {
        LazyGauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// High-water update when metrics are enabled.
    #[inline]
    pub fn record_max(&self, v: u64) {
        if crate::metrics_enabled() {
            self.cell
                .get_or_init(|| global().gauge(self.name))
                .record_max(v);
        }
    }

    /// Overwrites the value when metrics are enabled.
    #[inline]
    pub fn set(&self, v: u64) {
        if crate::metrics_enabled() {
            self.cell.get_or_init(|| global().gauge(self.name)).set(v);
        }
    }
}

/// A named histogram resolved lazily and gated like [`LazyCounter`].
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    /// Declares a histogram named `name`.
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Records a sample when metrics are enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::metrics_enabled() {
            self.cell
                .get_or_init(|| global().histogram(self.name))
                .record(v);
        }
    }

    /// Records a nanosecond sample when metrics are enabled.
    #[inline]
    pub fn record_ns(&self, ns: f64) {
        if crate::metrics_enabled() {
            self.cell
                .get_or_init(|| global().histogram(self.name))
                .record_ns(ns);
        }
    }

    /// Starts a scoped timer that records elapsed nanoseconds into
    /// this histogram when dropped. Reads the clock only when metrics
    /// are enabled.
    #[inline]
    pub fn timer(&self) -> HistogramTimer<'_> {
        HistogramTimer {
            start: crate::metrics_enabled().then(std::time::Instant::now),
            hist: self,
        }
    }
}

/// Scoped duration sample for a [`LazyHistogram`] (see
/// [`LazyHistogram::timer`]). Inert when metrics are off.
#[must_use = "a timer measures the scope it is bound to"]
pub struct HistogramTimer<'a> {
    start: Option<std::time::Instant>,
    hist: &'a LazyHistogram,
}

impl Drop for HistogramTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        r.counter("c").add(3);
        r.counter("c").add(4);
        r.gauge("g").record_max(5);
        r.gauge("g").record_max(2);
        let s = r.snapshot();
        assert_eq!(s.counters["c"], 7);
        assert_eq!(s.gauges["g"], 5);
    }

    #[test]
    fn histogram_buckets_partition_the_u64_line() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
        for i in 1..BUCKETS - 1 {
            assert_eq!(Histogram::bucket_upper(i - 1), Histogram::bucket_lower(i));
        }
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1007);
        assert_eq!(s.mean(), 1007.0 / 4.0);
        // p50: two of four samples are ≤ 2, so the bound is bucket_upper
        // of value 2's bucket (index 2 → upper 4).
        assert_eq!(s.quantile_upper_bound(0.5), 4);
        assert!(s.quantile_upper_bound(1.0) >= 1024);
    }

    #[test]
    fn interpolated_quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16, 700, 900, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.50);
        let p95 = s.quantile(0.95);
        let p99 = s.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "p50={p50} p95={p95} p99={p99}");
        // Every estimate stays inside the sampled range's buckets.
        assert!(p50 >= 1.0 && p99 <= 1024.0, "p50={p50} p99={p99}");
        // Tail quantiles land in the bucket holding the 512..1024 samples.
        assert!(p99 > 512.0, "p99={p99}");
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);
    }

    #[test]
    fn interpolation_splits_a_bucket_by_rank() {
        let h = Histogram::new();
        // Four samples, all in bucket [4, 8): ranks split the bucket
        // into quarters, so p25 ≈ 5, p50 ≈ 6, p100 = 8.
        for v in [4u64, 5, 6, 7] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.25), 5.0);
        assert_eq!(s.quantile(0.50), 6.0);
        assert_eq!(s.quantile(1.0), 8.0);
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let a = Registry::new();
        a.counter("x").add(1);
        a.gauge("g").set(9);
        a.histogram("h").record(3);
        let b = Registry::new();
        b.counter("x").add(2);
        b.counter("y").add(5);
        b.gauge("g").set(4);
        b.histogram("h").record(100);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.counters["x"], 3);
        assert_eq!(m.counters["y"], 5);
        assert_eq!(m.gauges["g"], 9);
        assert_eq!(m.histograms["h"].count, 2);
        assert_eq!(m.histograms["h"].sum, 103);
    }

    #[test]
    fn counter_deltas_report_only_changes() {
        let r = Registry::new();
        r.counter("a").add(10);
        r.counter("b").add(1);
        let before = r.snapshot();
        r.counter("a").add(7);
        let deltas = r.snapshot().counter_deltas(&before);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas["a"], 7);
    }

    #[test]
    fn render_is_deterministic_and_labeled() {
        let r = Registry::new();
        r.counter("z.last").add(1);
        r.counter("a.first").add(2);
        let text = r.snapshot().render();
        let a = text.find("a.first").unwrap();
        let z = text.find("z.last").unwrap();
        assert!(a < z, "sorted output");
        assert!(text.starts_with("== gopim metrics =="));
    }
}
