//! Runtime lock-order witness (`GOPIM_LOCKDEP=1`) — the dynamic half
//! of the concurrency-safety analyzer.
//!
//! [`DepMutex`] / [`DepCondvar`] are drop-in wrappers over the std
//! primitives. Each named lock belongs to a **class** (the same
//! `crate::field` names the static pass in `gopim-lint` assigns), and
//! every acquisition while the flag is on records, for each lock the
//! thread already holds, the directed edge *held → acquired* into a
//! global order matrix. An acquisition that contradicts an
//! already-witnessed order — or re-enters a lock the thread already
//! holds — is reported as a **violation**, panic-free: it lands in
//! the witness dump and a `log_warn!`, never an abort, so a run under
//! the witness stays byte-identical on stdout.
//!
//! With `GOPIM_LOCKDEP` unset the wrappers cost one relaxed atomic
//! load and a branch per acquisition — no allocation, no global lock,
//! no extra ordering constraints — preserving the workspace's
//! bit-determinism contract.
//!
//! `GOPIM_LOCKDEP_DUMP=<path>` makes the [`crate::TelemetryGuard`]
//! write the witnessed matrix as JSON on drop; `gopim lint --locks
//! --check-witness <path>` then checks it is a subgraph of the static
//! lock-acquisition graph.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Condvar, Mutex, MutexGuard};

use crate::EnvFlag;

static LOCKDEP: EnvFlag = EnvFlag::new(|| {
    std::env::var("GOPIM_LOCKDEP")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
});

/// Whether the lockdep witness is on (`GOPIM_LOCKDEP=1`, or forced by
/// [`set_lockdep_enabled`]). The disabled path is a relaxed load.
#[inline]
pub fn lockdep_enabled() -> bool {
    LOCKDEP.get()
}

/// Forces the witness on or off, overriding the environment — for
/// tests that seed deliberate inversions.
pub fn set_lockdep_enabled(on: bool) {
    LOCKDEP.set(on);
}

/// The `GOPIM_LOCKDEP_DUMP` destination path, if set.
pub fn dump_path() -> Option<String> {
    match std::env::var("GOPIM_LOCKDEP_DUMP") {
        Ok(p) if !p.is_empty() => Some(p),
        _ => None,
    }
}

/// The global order matrix. Class names are `&'static str`, so the
/// sets stay allocation-light; `BTreeMap`/`BTreeSet` keep every
/// rendering deterministic. This mutex guards only witness metadata
/// (never user data) and is deliberately *not* a [`DepMutex`]: the
/// witness cannot watch itself, and `crates/obs/src/lockdep.rs` is
/// likewise exempt from the static pass.
static STATE: Mutex<State> = Mutex::new(State {
    classes: BTreeSet::new(),
    edges: BTreeMap::new(),
    violations: Vec::new(),
});

struct State {
    classes: BTreeSet<&'static str>,
    /// Witnessed *held → acquired* orders, keyed `(held, acquired)`.
    edges: BTreeMap<(&'static str, &'static str), ()>,
    violations: Vec<String>,
}

thread_local! {
    /// The classes this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn state() -> MutexGuard<'static, State> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Records an acquisition of `name` against the current thread's held
/// stack and pushes it. Returns the token whose drop pops it.
fn acquire(name: &'static str) -> Token {
    let pushed = HELD
        .try_with(|h| {
            let mut held = h.borrow_mut();
            let mut st = state();
            st.classes.insert(name);
            for i in 0..held.len() {
                let prior = held[i];
                if prior == name {
                    let what = format!(
                        "recursive acquisition of `{name}` — a single-thread self-deadlock"
                    );
                    record_violation(&mut st, what);
                    continue;
                }
                if !st.edges.contains_key(&(prior, name)) {
                    if st.edges.contains_key(&(name, prior)) {
                        let what = format!(
                            "lock-order inversion: `{name}` acquired while holding `{prior}`, \
                             but the opposite order was already witnessed"
                        );
                        record_violation(&mut st, what);
                    }
                    st.edges.insert((prior, name), ());
                }
            }
            drop(st);
            held.push(name);
        })
        .is_ok();
    Token(pushed.then_some(name))
}

fn record_violation(st: &mut State, what: String) {
    if !st.violations.contains(&what) {
        crate::log_warn!("lockdep: {what}");
        st.violations.push(what);
    }
}

/// Pops the most recent acquisition of `name` from the held stack.
fn release(name: &'static str) {
    let _ = HELD.try_with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&n| n == name) {
            held.remove(pos);
        }
    });
}

/// Witness bookkeeping for one live acquisition. `None` when the
/// witness was off (or thread-local storage was gone) at lock time —
/// then the drop is free.
struct Token(Option<&'static str>);

impl Drop for Token {
    fn drop(&mut self) {
        if let Some(name) = self.0 {
            release(name);
        }
    }
}

/// A named [`Mutex`] participating in lock-order witnessing.
///
/// The name is the lock's *class* — use the `crate::field` form the
/// static pass assigns (for example `"par::queue"`), so the witnessed
/// matrix and the static graph speak the same language. Poisoning is
/// absorbed: a panic while holding the lock does not cascade.
pub struct DepMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> DepMutex<T> {
    /// Creates a named mutex. `const`, so statics work directly.
    pub const fn new(name: &'static str, value: T) -> Self {
        DepMutex {
            name,
            inner: Mutex::new(value),
        }
    }

    /// This lock's class name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock, recovering from poisoning. When the witness
    /// is on, records order edges against every lock this thread
    /// already holds.
    pub fn lock(&self) -> DepMutexGuard<'_, T> {
        let token = if lockdep_enabled() {
            acquire(self.name)
        } else {
            Token(None)
        };
        DepMutexGuard {
            guard: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
            token,
        }
    }

    /// Consumes the mutex, returning the inner value (poison-absorbed).
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for DepMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DepMutex")
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// The guard for a [`DepMutex`]. Releases the witness token when it
/// (or, across a [`DepCondvar::wait`], its rewrapped successor) drops.
// Field order is load-bearing: `guard` drops before `token`, so the
// witness pops the held stack only after the OS lock is released.
#[must_use = "the lock is released when the guard drops"]
pub struct DepMutexGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    token: Token,
}

impl<T> std::ops::Deref for DepMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for DepMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A [`Condvar`] whose `wait` understands [`DepMutexGuard`]: the
/// witness token survives the unlock/relock inside `wait`, mirroring
/// the static pass's model (a condvar wait keeps its guard's lock
/// "held" for ordering purposes).
pub struct DepCondvar {
    inner: Condvar,
}

impl DepCondvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        DepCondvar {
            inner: Condvar::new(),
        }
    }

    /// Blocks until notified, recovering from poisoning. The guard's
    /// witness token is carried across the wait unchanged.
    pub fn wait<'a, T>(&self, guard: DepMutexGuard<'a, T>) -> DepMutexGuard<'a, T> {
        let DepMutexGuard { guard, token } = guard;
        DepMutexGuard {
            guard: self.inner.wait(guard).unwrap_or_else(|e| e.into_inner()),
            token,
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for DepCondvar {
    fn default() -> Self {
        DepCondvar::new()
    }
}

impl std::fmt::Debug for DepCondvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DepCondvar").finish()
    }
}

/// Every class the witness has seen acquired, sorted.
pub fn witnessed_classes() -> Vec<String> {
    state().classes.iter().map(|c| (*c).to_string()).collect()
}

/// Every witnessed `(held, acquired)` order edge, sorted.
pub fn witnessed_edges() -> Vec<(String, String)> {
    state()
        .edges
        .keys()
        .map(|(a, b)| ((*a).to_string(), (*b).to_string()))
        .collect()
}

/// Every recorded ordering violation, in witness order.
pub fn violations() -> Vec<String> {
    state().violations.clone()
}

/// Clears the global matrix and the *current thread's* held stack —
/// for tests that seed deliberate inversions and then check the real
/// workspace is clean.
pub fn reset() {
    let mut st = state();
    st.classes.clear();
    st.edges.clear();
    st.violations.clear();
    drop(st);
    let _ = HELD.try_with(|h| h.borrow_mut().clear());
}

/// Renders the witness dump (`GOPIM_LOCKDEP_DUMP`) — a single JSON
/// document parseable by [`crate::export::parse_json`], and the input
/// format of `gopim lint --locks --check-witness`.
pub fn render_witness() -> String {
    let st = state();
    let mut out = String::from("{\n  \"version\": 1,\n  \"classes\": [");
    for (i, class) in st.classes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", crate::export::escape_json(class)));
    }
    out.push_str("],\n  \"edges\": [");
    for (i, (from, to)) in st.edges.keys().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"from\": \"{}\", \"to\": \"{}\"}}",
            crate::export::escape_json(from),
            crate::export::escape_json(to),
        ));
    }
    if !st.edges.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"violations\": [");
    for (i, what) in st.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"what\": \"{}\"}}",
            crate::export::escape_json(what)
        ));
    }
    if !st.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classes/edges/violations of this test's own `t::` locks —
    /// the matrix is global, and once the obs statics themselves sit
    /// on [`DepMutex`] a concurrently running test could witness them
    /// here; filtering keeps the assertions race-free.
    fn mine() -> (Vec<String>, Vec<(String, String)>, Vec<String>) {
        let classes = witnessed_classes()
            .into_iter()
            .filter(|c| c.starts_with("t::"))
            .collect();
        let edges = witnessed_edges()
            .into_iter()
            .filter(|(a, b)| a.starts_with("t::") || b.starts_with("t::"))
            .collect();
        let violations = violations()
            .into_iter()
            .filter(|v| v.contains("`t::"))
            .collect();
        (classes, edges, violations)
    }

    // The witness matrix is global; every assertion about it lives in
    // this one test so parallel test threads cannot interleave resets.
    #[test]
    fn witness_records_orders_and_flags_inversions() {
        set_lockdep_enabled(true);
        reset();

        static A: DepMutex<u32> = DepMutex::new("t::a", 0);
        static B: DepMutex<u32> = DepMutex::new("t::b", 0);

        {
            let _ga = A.lock();
            let mut gb = B.lock();
            *gb += 1;
        }
        let (classes, edges, v) = mine();
        assert_eq!(classes, vec!["t::a", "t::b"]);
        assert_eq!(edges, vec![("t::a".to_string(), "t::b".to_string())]);
        assert!(v.is_empty(), "{v:?}");

        // Same order again: no new edge, still clean. Opposite order:
        // inversion, reported without panicking.
        {
            let _ga = A.lock();
            let _gb = B.lock();
        }
        {
            let _gb = B.lock();
            let _ga = A.lock();
        }
        let (_, edges, v) = mine();
        assert_eq!(edges.len(), 2, "{edges:?}");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("`t::a`") && v[0].contains("`t::b`"), "{v:?}");

        // Recursive acquisition on one thread is its own violation.
        // Exercised through the bookkeeping alone — really locking a
        // std mutex twice on one thread would deadlock for real.
        reset();
        {
            let _t1 = acquire("t::a");
            let _t2 = acquire("t::a");
        }
        let (_, _, v) = mine();
        assert!(v[0].contains("recursive acquisition of `t::a`"), "{v:?}");

        // Condvar wait keeps the token: the guard returned by wait
        // still pops the held stack exactly once on drop.
        reset();
        static CV: DepCondvar = DepCondvar::new();
        let waiter = std::thread::spawn(|| {
            let mut g = A.lock();
            while *g == 0 {
                g = CV.wait(g);
            }
            *g
        });
        loop {
            let mut g = A.lock();
            *g = 7;
            CV.notify_all();
            drop(g);
            if waiter.is_finished() {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(waiter.join().map_err(|_| "waiter panicked"), Ok(7));
        let (_, _, v) = mine();
        assert!(v.is_empty(), "{v:?}");

        // The dump round-trips through the in-repo JSON parser.
        {
            let _ga = A.lock();
            let _gb = B.lock();
        }
        let doc = crate::export::parse_json(&render_witness()).expect("witness parses");
        let classes = doc.get("classes").unwrap().as_arr().unwrap();
        assert!(classes.iter().any(|c| c.as_str() == Some("t::a")));
        let edges = doc.get("edges").unwrap().as_arr().unwrap();
        assert!(edges.iter().any(|e| {
            e.get("from").unwrap().as_str() == Some("t::a")
                && e.get("to").unwrap().as_str() == Some("t::b")
        }));

        // Disabled path: no recording at all.
        reset();
        set_lockdep_enabled(false);
        {
            let _gb = B.lock();
            let _ga = A.lock();
        }
        let (classes, edges, v) = mine();
        assert!(classes.is_empty() && edges.is_empty() && v.is_empty());
    }
}
