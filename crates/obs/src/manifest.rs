//! Run manifests: a self-describing JSON artifact per run
//! (`GOPIM_MANIFEST=<path>`) capturing the command line, environment
//! knobs, recorded fields (config hash, thread count, cache stats),
//! the metrics snapshot, and span aggregates with p50/p95/p99.
//!
//! Other crates cannot be dependencies of `gopim-obs`, so they push
//! their facts *in*: scalar facts via [`record_u64`] / [`record_f64`]
//! / [`record_str`] (e.g. the runner's canonical config hash), and
//! late-bound groups via [`register_provider`] (e.g. the cache's
//! hit/miss counters, read at render time so they reflect the whole
//! run). Everything is gated on [`crate::manifest_enabled`]; when
//! `GOPIM_MANIFEST` is unset each call is one relaxed load.

use crate::lockdep::DepMutex;
use std::collections::BTreeMap;

use crate::aggregate::SpanAggregate;
use crate::export::{escape_json, parse_json, Json};
use crate::metrics::Snapshot;

/// Schema identifier stamped into (and required from) every manifest.
pub const SCHEMA: &str = "gopim.manifest/v1";

/// A recorded manifest field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer (counts, hashes-as-decimal, thread counts).
    U64(u64),
    /// A float (rates, ratios).
    F64(f64),
    /// A string (hex hashes, dataset names).
    Str(String),
}

impl Value {
    fn render(&self) -> String {
        match self {
            Value::U64(v) => format!("{v}"),
            Value::F64(v) if v.is_finite() => format!("{v}"),
            Value::F64(_) => "0".to_string(),
            Value::Str(s) => format!("\"{}\"", escape_json(s)),
        }
    }
}

/// A late-bound field source, called at render time.
pub type Provider = fn() -> Vec<(String, Value)>;

static FIELDS: DepMutex<BTreeMap<String, Value>> = DepMutex::new("obs::FIELDS", BTreeMap::new());
static PROVIDERS: DepMutex<Vec<Provider>> = DepMutex::new("obs::PROVIDERS", Vec::new());

fn record(key: &str, value: Value) {
    if !crate::manifest_enabled() {
        return;
    }
    FIELDS.lock().insert(key.to_string(), value);
}

/// Records an integer manifest field (last write wins).
pub fn record_u64(key: &str, value: u64) {
    record(key, Value::U64(value));
}

/// Records a float manifest field (last write wins).
pub fn record_f64(key: &str, value: f64) {
    record(key, Value::F64(value));
}

/// Records a string manifest field (last write wins).
pub fn record_str(key: &str, value: impl Into<String>) {
    record(key, Value::Str(value.into()));
}

/// Registers a field provider polled when the manifest renders —
/// for values that must reflect end-of-run state (cache statistics,
/// pool utilization). No-op when manifests are disabled.
pub fn register_provider(provider: Provider) {
    if !crate::manifest_enabled() {
        return;
    }
    PROVIDERS.lock().push(provider);
}

fn collected_fields() -> BTreeMap<String, Value> {
    let mut fields = FIELDS.lock().clone();
    let providers = PROVIDERS.lock().clone();
    for provider in providers {
        for (k, v) in provider() {
            fields.insert(k, v);
        }
    }
    fields
}

fn push_kv_block<'a, I: Iterator<Item = (&'a String, String)>>(out: &mut String, entries: I) {
    let mut first = true;
    for (k, rendered) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {rendered}", escape_json(k)));
    }
}

/// Renders the run manifest as a JSON document.
///
/// `command` is the invoked command line (argv joined), `agg` the
/// span aggregation of the drained collector, `metrics` the global
/// registry snapshot taken at flush time.
pub fn render_manifest(command: &str, agg: &SpanAggregate, metrics: &Snapshot) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"command\": \"{}\",\n", escape_json(command)));
    out.push_str(&format!(
        "  \"threads_available\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));

    // Environment knobs: every GOPIM_* variable, sorted, so a manifest
    // pins the exact configuration that produced the run.
    let env: BTreeMap<String, String> = std::env::vars()
        .filter(|(k, _)| k.starts_with("GOPIM_"))
        .collect();
    out.push_str("  \"env\": {");
    push_kv_block(
        &mut out,
        env.iter()
            .map(|(k, v)| (k, format!("\"{}\"", escape_json(v)))),
    );
    out.push_str(if env.is_empty() { "},\n" } else { "\n  },\n" });

    // Recorded fields plus provider output.
    let fields = collected_fields();
    out.push_str("  \"fields\": {");
    push_kv_block(&mut out, fields.iter().map(|(k, v)| (k, v.render())));
    out.push_str(if fields.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    // Metrics snapshot: counters and gauges verbatim, histograms as
    // derived summaries (count/sum/mean plus interpolated quantiles).
    out.push_str("  \"metrics\": {\n    \"counters\": {");
    push_kv_block(
        &mut out,
        metrics.counters.iter().map(|(k, v)| (k, format!("{v}"))),
    );
    out.push_str(if metrics.counters.is_empty() {
        "},\n    \"gauges\": {"
    } else {
        "\n    },\n    \"gauges\": {"
    });
    push_kv_block(
        &mut out,
        metrics.gauges.iter().map(|(k, v)| (k, format!("{v}"))),
    );
    out.push_str(if metrics.gauges.is_empty() {
        "},\n    \"histograms\": {"
    } else {
        "\n    },\n    \"histograms\": {"
    });
    push_kv_block(
        &mut out,
        metrics.histograms.iter().map(|(k, h)| {
            (
                k,
                format!(
                    "{{\"count\": {}, \"sum\": {}, \"mean\": {:.3}, \
                     \"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}}}",
                    h.count,
                    h.sum,
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                ),
            )
        }),
    );
    out.push_str(if metrics.histograms.is_empty() {
        "}\n  },\n"
    } else {
        "\n    }\n  },\n"
    });

    // Span aggregates.
    out.push_str(&format!(
        "  \"spans\": {{\n    \"events\": {},\n    \"dropped\": {},\n    \"labels\": {{",
        agg.spans, agg.dropped
    ));
    push_kv_block(
        &mut out,
        agg.labels.iter().map(|(k, s)| {
            (
                k,
                format!(
                    "{{\"count\": {}, \"total_ns\": {}, \"self_ns\": {}, \
                     \"min_ns\": {}, \"max_ns\": {}, \
                     \"p50_ns\": {:.1}, \"p95_ns\": {:.1}, \"p99_ns\": {:.1}}}",
                    s.count,
                    s.total_ns,
                    s.self_ns,
                    s.min_ns,
                    s.max_ns,
                    s.durations.quantile(0.50),
                    s.durations.quantile(0.95),
                    s.durations.quantile(0.99),
                ),
            )
        }),
    );
    out.push_str(if agg.labels.is_empty() {
        "}\n  }\n}\n"
    } else {
        "\n    }\n  }\n}\n"
    });
    out
}

fn req_num(obj: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{ctx}: missing numeric '{key}'"))
}

/// Validates a manifest document: parses it with the in-repo JSON
/// parser, checks the schema tag and required sections, and verifies
/// per-label invariants (`self ≤ total`, `p50 ≤ p95 ≤ p99`). Returns
/// the number of span labels.
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn validate_manifest(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("schema '{s}' is not '{SCHEMA}'")),
        None => return Err("missing schema tag".to_string()),
    }
    doc.get("command")
        .and_then(Json::as_str)
        .ok_or("missing command string")?;
    req_num(&doc, "threads_available", "manifest")?;
    for section in ["env", "fields", "metrics", "spans"] {
        if !matches!(doc.get(section), Some(Json::Obj(_))) {
            return Err(format!("missing object section '{section}'"));
        }
    }
    let metrics = doc.get("metrics").ok_or("missing metrics")?;
    for sub in ["counters", "gauges", "histograms"] {
        if !matches!(metrics.get(sub), Some(Json::Obj(_))) {
            return Err(format!("metrics: missing object '{sub}'"));
        }
    }
    let spans = doc.get("spans").ok_or("missing spans")?;
    req_num(spans, "events", "spans")?;
    req_num(spans, "dropped", "spans")?;
    let labels = match spans.get("labels") {
        Some(Json::Obj(pairs)) => pairs,
        _ => return Err("spans: missing object 'labels'".to_string()),
    };
    for (label, stats) in labels {
        let ctx = format!("label '{label}'");
        let total = req_num(stats, "total_ns", &ctx)?;
        let self_ns = req_num(stats, "self_ns", &ctx)?;
        let count = req_num(stats, "count", &ctx)?;
        req_num(stats, "min_ns", &ctx)?;
        req_num(stats, "max_ns", &ctx)?;
        let p50 = req_num(stats, "p50_ns", &ctx)?;
        let p95 = req_num(stats, "p95_ns", &ctx)?;
        let p99 = req_num(stats, "p99_ns", &ctx)?;
        if count < 1.0 {
            return Err(format!("{ctx}: zero count"));
        }
        if self_ns > total {
            return Err(format!("{ctx}: self_ns {self_ns} > total_ns {total}"));
        }
        if !(p50 <= p95 && p95 <= p99) {
            return Err(format!(
                "{ctx}: quantiles not monotone ({p50}, {p95}, {p99})"
            ));
        }
    }
    Ok(labels.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::aggregate;
    use crate::metrics::Registry;
    use crate::span::{SpanEvent, WALL_PID};

    fn sample_inputs() -> (SpanAggregate, Snapshot) {
        let ev = |name: &str, start: u64, dur: u64| SpanEvent {
            pid: WALL_PID,
            tid: 1,
            name: name.into(),
            cat: "span",
            start_ns: start,
            dur_ns: dur,
            args: Vec::new(),
        };
        let agg = aggregate(
            &[
                ev("outer", 0, 1000),
                ev("inner", 10, 200),
                ev("inner", 300, 400),
            ],
            1,
        );
        let registry = Registry::new();
        registry.counter("cache.hits").add(3);
        registry.gauge("pool.threads").set(4);
        registry.histogram("queue.wait_ns").record(128);
        (agg, registry.snapshot())
    }

    #[test]
    fn manifest_round_trips_through_the_validator() {
        let (agg, metrics) = sample_inputs();
        let text = render_manifest("gopim compare ddi", &agg, &metrics);
        let labels = validate_manifest(&text).expect("valid manifest");
        assert_eq!(labels, 2, "outer + inner:\n{text}");
        let doc = parse_json(&text).expect("parses");
        assert_eq!(
            doc.get("command").and_then(Json::as_str),
            Some("gopim compare ddi")
        );
        assert_eq!(
            doc.get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("cache.hits"))
                .and_then(Json::as_num),
            Some(3.0)
        );
        let inner = doc
            .get("spans")
            .and_then(|s| s.get("labels"))
            .and_then(|l| l.get("inner"))
            .expect("inner label");
        assert_eq!(inner.get("count").and_then(Json::as_num), Some(2.0));
        assert_eq!(inner.get("total_ns").and_then(Json::as_num), Some(600.0));
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let (agg, metrics) = sample_inputs();
        let text = render_manifest("x", &agg, &metrics);
        assert!(validate_manifest("{}").is_err());
        assert!(validate_manifest(&text.replace(SCHEMA, "other/v0")).is_err());
        assert!(validate_manifest(&text.replace("\"spans\"", "\"nope\"")).is_err());
        // Corrupt an invariant: outer's self time beyond its total.
        let broken = text.replace("\"self_ns\": 400", "\"self_ns\": 999999999");
        assert_ne!(broken, text, "fixture self_ns changed?");
        assert!(validate_manifest(&broken).is_err());
    }

    #[test]
    fn empty_sections_still_validate() {
        let agg = SpanAggregate::default();
        let text = render_manifest("bare", &agg, &Snapshot::default());
        assert_eq!(validate_manifest(&text), Ok(0));
    }

    #[test]
    fn recording_is_gated_on_manifest_enablement() {
        // Off: the record is dropped before touching the map.
        crate::set_manifest_enabled(false);
        record_str("test.gated_off", "x");
        assert!(!FIELDS.lock().contains_key("test.gated_off"));
        crate::set_manifest_enabled(true);
        record_u64("test.gated_on", 7);
        record_f64("test.float", 1.5);
        let fields = collected_fields();
        assert_eq!(fields.get("test.gated_on"), Some(&Value::U64(7)));
        assert_eq!(fields.get("test.float"), Some(&Value::F64(1.5)));
        crate::set_manifest_enabled(false);
    }
}
