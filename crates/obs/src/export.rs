//! Exporters: Chrome trace-event JSON and a minimal JSON reader used
//! to validate emitted traces offline.
//!
//! The trace format is the Trace Event Format's JSON-object flavor
//! (`{"traceEvents": [...]}`) with complete (`"ph": "X"`) events,
//! loadable in `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
//! Timestamps are microseconds (`f64`), the unit the format requires;
//! the nanosecond source values are preserved to three decimals.

use std::io::Write;

use crate::span::SpanEvent;

/// Escapes a string for embedding inside a JSON string literal
/// (shared with the manifest renderer and downstream JSON emitters
/// like `gopim bench-diff`).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_event(e: &SpanEvent) -> String {
    // meta.* events carry track labels, not intervals.
    if let Some(kind) = e.cat.strip_prefix("meta.") {
        return format!(
            "{{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            e.pid,
            e.tid,
            escape_json(&e.name)
        );
    }
    let mut args = String::new();
    for (i, (k, v)) in e.args.iter().enumerate() {
        if i > 0 {
            args.push(',');
        }
        args.push_str(&format!("\"{}\":{}", escape_json(k), fmt_num(*v)));
    }
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
         \"pid\":{},\"tid\":{},\"args\":{{{args}}}}}",
        escape_json(&e.name),
        escape_json(e.cat),
        e.start_ns as f64 / 1e3,
        e.dur_ns as f64 / 1e3,
        e.pid,
        e.tid,
    )
}

fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Serializes events as a Chrome trace-event JSON document.
pub fn render_chrome_trace(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"host (wall clock)\"}}",
    );
    for e in events {
        out.push_str(",\n");
        out.push_str(&render_event(e));
    }
    out.push_str("\n]}\n");
    out
}

/// Writes the Chrome trace for `events` to `path`.
pub fn write_chrome_trace(path: &str, events: &[SpanEvent]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(render_chrome_trace(events).as_bytes())
}

/// A minimal JSON value tree (just enough to validate our own traces
/// without external dependencies).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Maximum container nesting the parser accepts. Recursive-descent
/// parsing burns one stack frame per level, so an unbounded depth
/// turns adversarial input (`[[[[…`) into a stack overflow; past this
/// limit the parser returns an error instead.
pub const MAX_DEPTH: usize = 128;

/// Parses a JSON document.
///
/// Hardened against adversarial input: truncated documents, nesting
/// past [`MAX_DEPTH`], and numbers that do not parse to a *finite*
/// `f64` (`NaN`/`Infinity` literals are not JSON, and overflowing
/// exponents like `1e999` are rejected rather than silently becoming
/// `inf`) all return `Err`, never panic or overflow the stack.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    skip_ws(b, pos);
    if depth >= MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(String::from)?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c => {
                // Re-borrow the original UTF-8: collect continuation
                // bytes of a multi-byte character verbatim.
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let start = *pos - 1;
                    let mut end = *pos;
                    while end < b.len() && (b[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&b[start..end])
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                    );
                    *pos = end;
                }
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    // `f64::parse` accepts "inf"/"NaN" spellings we never reach (the
    // byte class above excludes letters other than e/E), but it also
    // maps overflowing exponents like 1e999 to infinity — reject any
    // non-finite result so downstream consumers can trust the values.
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

/// Validates a Chrome trace document: parses it, checks the
/// `traceEvents` array exists with well-formed events, and verifies
/// every `expected_names` entry prefix-matches at least one event
/// name or category (simulated intervals carry the stage as the name
/// and `sim.*` as the category). Returns the number of non-metadata
/// events.
///
/// # Errors
///
/// Returns a description of the first structural problem or missing
/// span name.
pub fn validate_chrome_trace(text: &str, expected_names: &[&str]) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut spans = 0usize;
    let mut names = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing name"))?;
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        match ph {
            "M" => {}
            "X" => {
                e.get("ts")
                    .and_then(Json::as_num)
                    .ok_or(format!("event {i}: missing ts"))?;
                e.get("dur")
                    .and_then(Json::as_num)
                    .ok_or(format!("event {i}: missing dur"))?;
                spans += 1;
                names.push(name.to_string());
                if let Some(cat) = e.get("cat").and_then(Json::as_str) {
                    names.push(cat.to_string());
                }
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    for expected in expected_names {
        if !names.iter().any(|n| n.starts_with(expected)) {
            return Err(format!("no span named {expected}* in the trace"));
        }
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanEvent, WALL_PID};

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                pid: WALL_PID,
                tid: 1,
                name: "linalg.matmul".into(),
                cat: "span",
                start_ns: 1500,
                dur_ns: 2500,
                args: vec![("m", 64.0), ("n", 64.0)],
            },
            SpanEvent {
                pid: 1,
                tid: 0,
                name: "sim: gopim/ddi".into(),
                cat: "meta.process_name",
                start_ns: 0,
                dur_ns: 0,
                args: Vec::new(),
            },
            SpanEvent {
                pid: 1,
                tid: 2,
                name: "AG1".into(),
                cat: "sim.compute",
                start_ns: 10,
                dur_ns: 90,
                args: Vec::new(),
            },
        ]
    }

    #[test]
    fn trace_round_trips_through_the_validator() {
        let text = render_chrome_trace(&sample_events());
        let spans = validate_chrome_trace(&text, &["linalg.matmul", "AG1"]).unwrap();
        assert_eq!(spans, 2);
        assert!(validate_chrome_trace(&text, &["missing.span"]).is_err());
    }

    #[test]
    fn timestamps_convert_to_microseconds() {
        let text = render_chrome_trace(&sample_events());
        let doc = parse_json(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let matmul = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("linalg.matmul"))
            .unwrap();
        assert_eq!(matmul.get("ts").unwrap().as_num(), Some(1.5));
        assert_eq!(matmul.get("dur").unwrap().as_num(), Some(2.5));
        assert_eq!(
            matmul.get("args").unwrap().get("m").unwrap().as_num(),
            Some(64.0)
        );
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let doc = parse_json(r#"{"a": [1, -2.5e3, "x\"\nA"], "b": {"c": null}}"#).unwrap();
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_num(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x\"\nA"));
        assert_eq!(doc.get("b").unwrap().get("c"), Some(&Json::Null));
        assert!(parse_json("{\"unterminated\": ").is_err());
        assert!(parse_json("[1, 2,]").is_err());
    }

    #[test]
    fn strings_escape_cleanly() {
        let e = SpanEvent {
            pid: WALL_PID,
            tid: 1,
            name: "has \"quotes\"\nand newline".into(),
            cat: "span",
            start_ns: 0,
            dur_ns: 1,
            args: Vec::new(),
        };
        let text = render_chrome_trace(&[e]);
        let doc = parse_json(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(
            events[1].get("name").and_then(Json::as_str),
            Some("has \"quotes\"\nand newline")
        );
    }
}
