//! Dependency-free telemetry for the GoPIM reproduction.
//!
//! The workspace's hot paths — the matmul kernels, the `gopim-par`
//! pool, the pipeline simulators, the experiment runner — record
//! *what* they did and *how long* it took through this crate. Three
//! subsystems, all hermetic and std-only in the same spirit as
//! `gopim-rng` / `gopim-par`:
//!
//! - [`metrics`] — a global registry of counters, gauges and
//!   fixed-bucket (power-of-two) histograms behind relaxed atomics.
//!   Snapshots are cheap, mergeable and diffable, which is how the
//!   testkit bench runner reports per-iteration counter deltas.
//! - [`span`] — lightweight scoped timers ([`span!`]) recording into
//!   per-thread buffers that a global collector drains. A second
//!   event family carries *simulated-time* intervals (the pipeline
//!   DES timeline), so one Chrome trace shows wall-clock work and the
//!   simulated schedule side by side.
//! - [`log`] — a level-gated logging facade ([`log_error!`] …
//!   [`log_debug!`]) honoring `GOPIM_LOG`, replacing ad-hoc
//!   `eprintln!` progress lines.
//!
//! # Overhead contract
//!
//! Everything is **off by default** and the disabled path is one
//! relaxed atomic load plus a predictable branch — no allocation, no
//! clock read, no locking. Enablement comes from the environment,
//! read once:
//!
//! - `GOPIM_TRACE=<path>` — collect spans and write a Chrome
//!   trace-event JSON file (loadable in `chrome://tracing` /
//!   [Perfetto](https://ui.perfetto.dev)) to `<path>` when the
//!   [`TelemetryGuard`] drops.
//! - `GOPIM_METRICS=1` — collect metrics and print the plain-text
//!   registry report to stderr when the guard drops.
//! - `GOPIM_PROFILE=1|stderr|<path>` — collect spans and render the
//!   aggregated per-label profile ([`report::render_profile`]) to
//!   stderr (`1`/`stderr`) or a file.
//! - `GOPIM_PROFILE_FOLDED=<path>` — collect spans and write
//!   collapsed stacks (`flamegraph.pl` / speedscope format).
//! - `GOPIM_MANIFEST=<path>` — write a self-describing run manifest
//!   ([`manifest`]) capturing command, env, fields, metrics and span
//!   aggregates.
//! - `GOPIM_LOG=error|warn|info|debug|off` — log verbosity
//!   (default `info`).
//!
//! Binaries opt in with one line:
//!
//! ```no_run
//! fn main() {
//!     let _telemetry = gopim_obs::attach();
//!     // ... the run; spans/metrics flush when _telemetry drops ...
//! }
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod export;
pub mod lockdep;
pub mod log;
pub mod manifest;
pub mod metrics;
pub mod report;
pub mod span;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub use lockdep::{lockdep_enabled, set_lockdep_enabled, DepCondvar, DepMutex, DepMutexGuard};
pub use span::SpanGuard;

/// Tri-state cached enablement flag: 0 = unread, 1 = off, 2 = on.
struct EnvFlag {
    state: AtomicU8,
    read: fn() -> bool,
}

impl EnvFlag {
    const fn new(read: fn() -> bool) -> Self {
        EnvFlag {
            state: AtomicU8::new(0),
            read,
        }
    }

    #[inline]
    fn get(&self) -> bool {
        match self.state.load(Ordering::Relaxed) {
            0 => self.init(),
            s => s == 2,
        }
    }

    #[cold]
    fn init(&self) -> bool {
        let on = (self.read)();
        self.state.store(if on { 2 } else { 1 }, Ordering::Relaxed);
        on
    }

    fn set(&self, on: bool) {
        self.state.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    }
}

// Spans are collected whenever *any* span consumer is configured:
// the Chrome trace, the profile report, the folded-stack export, or
// the run manifest.
static TRACE: EnvFlag = EnvFlag::new(|| {
    trace_path().is_some()
        || profile_dest().is_some()
        || folded_path().is_some()
        || manifest_path().is_some()
});
static METRICS: EnvFlag = EnvFlag::new(|| {
    std::env::var("GOPIM_METRICS")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
});
static MANIFEST: EnvFlag = EnvFlag::new(|| manifest_path().is_some());

/// Whether span collection is on (`GOPIM_TRACE` set, or forced by
/// [`set_trace_enabled`]). The disabled path is a relaxed load.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE.get()
}

/// Whether metrics collection is on (`GOPIM_METRICS=1`, or forced by
/// [`set_metrics_enabled`]). The disabled path is a relaxed load.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS.get()
}

/// Forces span collection on or off, overriding the environment —
/// for tests and embedders that manage their own export.
pub fn set_trace_enabled(on: bool) {
    TRACE.set(on);
}

/// Forces metrics collection on or off, overriding the environment.
pub fn set_metrics_enabled(on: bool) {
    METRICS.set(on);
}

/// Whether run-manifest collection is on (`GOPIM_MANIFEST` set, or
/// forced by [`set_manifest_enabled`]). The disabled path is a
/// relaxed load — [`manifest::record_u64`] and friends check this
/// before touching any lock.
#[inline]
pub fn manifest_enabled() -> bool {
    MANIFEST.get()
}

/// Forces manifest collection on or off, overriding the environment.
pub fn set_manifest_enabled(on: bool) {
    MANIFEST.set(on);
}

fn env_path(name: &str) -> Option<String> {
    match std::env::var(name) {
        Ok(p) if !p.is_empty() => Some(p),
        _ => None,
    }
}

/// The `GOPIM_TRACE` destination path, if set to a non-empty value.
pub fn trace_path() -> Option<String> {
    env_path("GOPIM_TRACE")
}

/// Where the aggregated profile report goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileDest {
    /// Print to stderr (`GOPIM_PROFILE=1` or `stderr`).
    Stderr,
    /// Write to a file (`GOPIM_PROFILE=<path>`).
    File(String),
}

/// The `GOPIM_PROFILE` destination, if configured.
pub fn profile_dest() -> Option<ProfileDest> {
    match env_path("GOPIM_PROFILE")?.as_str() {
        "1" | "stderr" => Some(ProfileDest::Stderr),
        path => Some(ProfileDest::File(path.to_string())),
    }
}

/// The `GOPIM_PROFILE_FOLDED` destination path, if set.
pub fn folded_path() -> Option<String> {
    env_path("GOPIM_PROFILE_FOLDED")
}

/// The `GOPIM_MANIFEST` destination path, if set.
pub fn manifest_path() -> Option<String> {
    env_path("GOPIM_MANIFEST")
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the process's telemetry epoch (the
/// first call to this function or to [`attach`]).
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Flushes telemetry on drop: writes the Chrome trace (`GOPIM_TRACE`),
/// the aggregated profile (`GOPIM_PROFILE`), the collapsed stacks
/// (`GOPIM_PROFILE_FOLDED`), the run manifest (`GOPIM_MANIFEST`), and
/// prints the metrics report to stderr when `GOPIM_METRICS` is on.
/// Create one at the top of `main` via [`attach`].
#[must_use = "telemetry flushes when the guard drops"]
pub struct TelemetryGuard {
    trace_path: Option<String>,
    profile: Option<ProfileDest>,
    folded_path: Option<String>,
    manifest_path: Option<String>,
    command: String,
}

/// Initializes telemetry from the environment and returns the guard
/// that exports everything on drop. Safe to call when no telemetry
/// env var is set — the guard is then inert.
pub fn attach() -> TelemetryGuard {
    // Pin the epoch at attach time so span timestamps are relative to
    // the start of the run, not to the first span.
    let _ = now_ns();
    let collecting = trace_enabled();
    TelemetryGuard {
        trace_path: collecting.then(trace_path).flatten(),
        profile: collecting.then(profile_dest).flatten(),
        folded_path: collecting.then(folded_path).flatten(),
        manifest_path: manifest_enabled().then(manifest_path).flatten(),
        command: std::env::args().collect::<Vec<_>>().join(" "),
    }
}

fn write_artifact(what: &str, path: &str, contents: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => crate::log_info!("telemetry: wrote {what} to {path}"),
        Err(e) => crate::log_error!("telemetry: failed to write {what} {path}: {e}"),
    }
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        let consuming_spans = self.trace_path.is_some()
            || self.profile.is_some()
            || self.folded_path.is_some()
            || self.manifest_path.is_some();
        if consuming_spans {
            // Read the loss count *before* draining (drain resets it),
            // then drain exactly once and feed every consumer from the
            // same buffer.
            let dropped = span::dropped();
            let events = span::drain();
            if dropped > 0 {
                crate::log_warn!("telemetry: span buffer full, dropped {dropped} events");
            }
            if let Some(path) = &self.trace_path {
                match export::write_chrome_trace(path, &events) {
                    Ok(()) => {
                        crate::log_info!("telemetry: wrote {} trace events to {path}", events.len())
                    }
                    Err(e) => crate::log_error!("telemetry: failed to write {path}: {e}"),
                }
            }
            if self.profile.is_some() || self.folded_path.is_some() || self.manifest_path.is_some()
            {
                let agg = aggregate::aggregate(&events, dropped);
                match &self.profile {
                    Some(ProfileDest::Stderr) => eprint!("{}", report::render_profile(&agg)),
                    Some(ProfileDest::File(path)) => {
                        write_artifact("profile", path, &report::render_profile(&agg));
                    }
                    None => {}
                }
                if let Some(path) = &self.folded_path {
                    write_artifact("folded stacks", path, &report::render_folded(&agg));
                }
                if let Some(path) = &self.manifest_path {
                    let snapshot = metrics::global().snapshot();
                    write_artifact(
                        "run manifest",
                        path,
                        &manifest::render_manifest(&self.command, &agg, &snapshot),
                    );
                }
            }
        }
        if metrics_enabled() {
            let snapshot = metrics::global().snapshot();
            if !snapshot.is_empty() {
                eprintln!("{}", snapshot.render());
            }
        }
        if lockdep_enabled() {
            if let Some(path) = lockdep::dump_path() {
                write_artifact("lockdep witness", &path, &lockdep::render_witness());
            }
        }
    }
}
