//! Dependency-free telemetry for the GoPIM reproduction.
//!
//! The workspace's hot paths — the matmul kernels, the `gopim-par`
//! pool, the pipeline simulators, the experiment runner — record
//! *what* they did and *how long* it took through this crate. Three
//! subsystems, all hermetic and std-only in the same spirit as
//! `gopim-rng` / `gopim-par`:
//!
//! - [`metrics`] — a global registry of counters, gauges and
//!   fixed-bucket (power-of-two) histograms behind relaxed atomics.
//!   Snapshots are cheap, mergeable and diffable, which is how the
//!   testkit bench runner reports per-iteration counter deltas.
//! - [`span`] — lightweight scoped timers ([`span!`]) recording into
//!   per-thread buffers that a global collector drains. A second
//!   event family carries *simulated-time* intervals (the pipeline
//!   DES timeline), so one Chrome trace shows wall-clock work and the
//!   simulated schedule side by side.
//! - [`log`] — a level-gated logging facade ([`log_error!`] …
//!   [`log_debug!`]) honoring `GOPIM_LOG`, replacing ad-hoc
//!   `eprintln!` progress lines.
//!
//! # Overhead contract
//!
//! Everything is **off by default** and the disabled path is one
//! relaxed atomic load plus a predictable branch — no allocation, no
//! clock read, no locking. Enablement comes from the environment,
//! read once:
//!
//! - `GOPIM_TRACE=<path>` — collect spans and write a Chrome
//!   trace-event JSON file (loadable in `chrome://tracing` /
//!   [Perfetto](https://ui.perfetto.dev)) to `<path>` when the
//!   [`TelemetryGuard`] drops.
//! - `GOPIM_METRICS=1` — collect metrics and print the plain-text
//!   registry report to stderr when the guard drops.
//! - `GOPIM_LOG=error|warn|info|debug|off` — log verbosity
//!   (default `info`).
//!
//! Binaries opt in with one line:
//!
//! ```no_run
//! fn main() {
//!     let _telemetry = gopim_obs::attach();
//!     // ... the run; spans/metrics flush when _telemetry drops ...
//! }
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod log;
pub mod metrics;
pub mod span;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub use span::SpanGuard;

/// Tri-state cached enablement flag: 0 = unread, 1 = off, 2 = on.
struct EnvFlag {
    state: AtomicU8,
    read: fn() -> bool,
}

impl EnvFlag {
    const fn new(read: fn() -> bool) -> Self {
        EnvFlag {
            state: AtomicU8::new(0),
            read,
        }
    }

    #[inline]
    fn get(&self) -> bool {
        match self.state.load(Ordering::Relaxed) {
            0 => self.init(),
            s => s == 2,
        }
    }

    #[cold]
    fn init(&self) -> bool {
        let on = (self.read)();
        self.state.store(if on { 2 } else { 1 }, Ordering::Relaxed);
        on
    }

    fn set(&self, on: bool) {
        self.state.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    }
}

static TRACE: EnvFlag = EnvFlag::new(|| trace_path().is_some());
static METRICS: EnvFlag = EnvFlag::new(|| {
    std::env::var("GOPIM_METRICS")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
});

/// Whether span collection is on (`GOPIM_TRACE` set, or forced by
/// [`set_trace_enabled`]). The disabled path is a relaxed load.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE.get()
}

/// Whether metrics collection is on (`GOPIM_METRICS=1`, or forced by
/// [`set_metrics_enabled`]). The disabled path is a relaxed load.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS.get()
}

/// Forces span collection on or off, overriding the environment —
/// for tests and embedders that manage their own export.
pub fn set_trace_enabled(on: bool) {
    TRACE.set(on);
}

/// Forces metrics collection on or off, overriding the environment.
pub fn set_metrics_enabled(on: bool) {
    METRICS.set(on);
}

/// The `GOPIM_TRACE` destination path, if set to a non-empty value.
pub fn trace_path() -> Option<String> {
    match std::env::var("GOPIM_TRACE") {
        Ok(p) if !p.is_empty() => Some(p),
        _ => None,
    }
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the process's telemetry epoch (the
/// first call to this function or to [`attach`]).
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Flushes telemetry on drop: writes the Chrome trace to the
/// `GOPIM_TRACE` path and prints the metrics report to stderr when
/// `GOPIM_METRICS` is on. Create one at the top of `main` via
/// [`attach`].
#[must_use = "telemetry flushes when the guard drops"]
pub struct TelemetryGuard {
    trace_path: Option<String>,
}

/// Initializes telemetry from the environment and returns the guard
/// that exports everything on drop. Safe to call when neither env var
/// is set — the guard is then inert.
pub fn attach() -> TelemetryGuard {
    // Pin the epoch at attach time so span timestamps are relative to
    // the start of the run, not to the first span.
    let _ = now_ns();
    TelemetryGuard {
        trace_path: if trace_enabled() { trace_path() } else { None },
    }
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        if let Some(path) = &self.trace_path {
            let dropped = span::dropped();
            let events = span::drain();
            if dropped > 0 {
                crate::log_warn!("telemetry: span buffer full, dropped {dropped} events");
            }
            match export::write_chrome_trace(path, &events) {
                Ok(()) => {
                    crate::log_info!("telemetry: wrote {} trace events to {path}", events.len())
                }
                Err(e) => crate::log_error!("telemetry: failed to write {path}: {e}"),
            }
        }
        if metrics_enabled() {
            let snapshot = metrics::global().snapshot();
            if !snapshot.is_empty() {
                eprintln!("{}", snapshot.render());
            }
        }
    }
}
