//! Scoped timers and the per-thread span collector.
//!
//! Instrumented code opens a span with the [`span!`](crate::span!)
//! macro (or [`SpanGuard::enter`] / [`SpanGuard::enter_dyn`]); the
//! guard stamps the monotonic clock on entry and records a
//! [`SpanEvent`] on drop. Events land in a per-thread buffer (one
//! uncontended mutex per thread, registered with a global list on
//! first use), and [`drain`] collects every buffer — including those
//! of still-alive pool workers — for export.
//!
//! Two timelines share the collector:
//!
//! - **Wall-clock spans** (`pid` [`WALL_PID`]): real host execution,
//!   one Chrome-trace thread lane per OS thread.
//! - **Simulated spans** (`pid` ≥ [`SIM_PID_BASE`]): intervals in the
//!   pipeline simulator's nanosecond timeline, one Chrome-trace
//!   process per simulated run (see [`open_sim_track`]), one lane per
//!   pipeline stage.
//!
//! When collection is off ([`crate::trace_enabled`] is false) every
//! entry point degenerates to a relaxed load and a branch.

use std::cell::OnceCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::lockdep::DepMutex;

use crate::metrics::LazyCounter;

/// Chrome-trace process id of the wall-clock timeline.
pub const WALL_PID: u32 = 0;

/// First Chrome-trace process id handed out to simulated tracks.
pub const SIM_PID_BASE: u32 = 1;

/// Default safety cap on buffered events; past it, events are counted
/// in [`dropped`] instead of stored.
const DEFAULT_MAX_EVENTS: u64 = 4_000_000;

/// Active cap (tests shrink it via [`set_event_cap`]).
static MAX_EVENTS: AtomicU64 = AtomicU64::new(DEFAULT_MAX_EVENTS);

/// One recorded interval (wall-clock or simulated).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Chrome-trace process id ([`WALL_PID`] or a simulated track).
    pub pid: u32,
    /// Lane within the process: the recording thread for wall spans,
    /// the pipeline stage index for simulated spans.
    pub tid: u64,
    /// Span name (e.g. `linalg.matmul`).
    pub name: String,
    /// Category: `span` for wall spans, `sim.dispatch` / `sim.write` /
    /// `sim.compute` for simulated phases, `meta.*` for track labels.
    pub cat: &'static str,
    /// Start, ns — since the telemetry epoch for wall spans, simulated
    /// time for simulated spans.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
    /// Numeric annotations (shown in the trace viewer's args pane).
    pub args: Vec<(&'static str, f64)>,
}

impl SpanEvent {
    /// A stable identity for set comparisons across runs: everything
    /// except timestamps and thread/process placement.
    pub fn identity(&self) -> String {
        let mut s = format!("{}|{}", self.cat, self.name);
        for (k, v) in &self.args {
            s.push_str(&format!("|{k}={v}"));
        }
        s
    }
}

type Sink = Arc<Mutex<Vec<SpanEvent>>>;

// The per-thread sink mutexes stay plain `std` locks (uncontended,
// hot path); only the registry of sinks joins the lockdep witness.
static SINKS: DepMutex<Vec<Sink>> = DepMutex::new("obs::SINKS", Vec::new());
static RECORDED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_SIM_PID: AtomicU32 = AtomicU32::new(SIM_PID_BASE);

thread_local! {
    static LOCAL: OnceCell<(u64, Sink)> = const { OnceCell::new() };
}

fn with_local<R>(f: impl FnOnce(u64, &Sink) -> R) -> R {
    LOCAL.with(|cell| {
        let (tid, sink) = cell.get_or_init(|| {
            let sink: Sink = Arc::new(Mutex::new(Vec::new()));
            SINKS.lock().push(Arc::clone(&sink));
            (NEXT_TID.fetch_add(1, Ordering::Relaxed), sink)
        });
        f(*tid, sink)
    })
}

static SPANS_DROPPED: LazyCounter = LazyCounter::new("obs.spans_dropped");
static DROP_WARNED: AtomicBool = AtomicBool::new(false);

/// Collector-full bookkeeping: counts the loss (internal tally plus
/// the `obs.spans_dropped` metrics counter, so the drop shows up in
/// the metrics report and the run manifest) and logs a one-shot
/// warning so silent truncation cannot masquerade as a quiet run.
#[cold]
fn note_drop() {
    DROPPED.fetch_add(1, Ordering::Relaxed);
    SPANS_DROPPED.add(1);
    if !DROP_WARNED.swap(true, Ordering::Relaxed) {
        crate::log_warn!(
            "telemetry: span collector cap ({} events) reached; dropping further spans",
            MAX_EVENTS.load(Ordering::Relaxed)
        );
    }
}

/// Overrides the collector's event cap — for tests that exercise the
/// drop path without buffering millions of events. Restore with
/// `set_event_cap(u64::MAX >> 1)`-style large values or leave the
/// process to exit.
pub fn set_event_cap(cap: u64) {
    MAX_EVENTS.store(cap, Ordering::Relaxed);
}

/// Records a fully-formed event (no enablement check — callers gate).
pub fn record(event: SpanEvent) {
    if RECORDED.fetch_add(1, Ordering::Relaxed) >= MAX_EVENTS.load(Ordering::Relaxed) {
        note_drop();
        return;
    }
    with_local(|_, sink| sink.lock().unwrap_or_else(|e| e.into_inner()).push(event));
}

/// Events discarded because the collector cap was hit.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Takes every buffered event out of every thread's buffer. The
/// buffers stay registered, so threads keep recording afterwards.
pub fn drain() -> Vec<SpanEvent> {
    let sinks = SINKS.lock();
    let mut out = Vec::new();
    for sink in sinks.iter() {
        out.append(&mut sink.lock().unwrap_or_else(|e| e.into_inner()));
    }
    RECORDED.store(0, Ordering::Relaxed);
    DROPPED.store(0, Ordering::Relaxed);
    DROP_WARNED.store(false, Ordering::Relaxed);
    out
}

/// Opens a new simulated track (one Chrome-trace process) labeled
/// `label`, returning its pid. No-op returning [`SIM_PID_BASE`] when
/// collection is off.
pub fn open_sim_track(label: &str) -> u32 {
    if !crate::trace_enabled() {
        return SIM_PID_BASE;
    }
    let pid = NEXT_SIM_PID.fetch_add(1, Ordering::Relaxed);
    record(SpanEvent {
        pid,
        tid: 0,
        name: format!("sim: {label}"),
        cat: "meta.process_name",
        start_ns: 0,
        dur_ns: 0,
        args: Vec::new(),
    });
    pid
}

/// Labels lane `lane` of simulated track `pid` (e.g. a stage name).
pub fn name_sim_lane(pid: u32, lane: u64, label: &str) {
    if !crate::trace_enabled() {
        return;
    }
    record(SpanEvent {
        pid,
        tid: lane,
        name: label.to_string(),
        cat: "meta.thread_name",
        start_ns: 0,
        dur_ns: 0,
        args: Vec::new(),
    });
}

/// Records one interval of simulated time on track `pid`, lane `lane`.
pub fn record_sim(
    pid: u32,
    lane: u64,
    name: &str,
    cat: &'static str,
    start_ns: f64,
    end_ns: f64,
    args: &[(&'static str, f64)],
) {
    if !crate::trace_enabled() {
        return;
    }
    let start = start_ns.max(0.0) as u64;
    let end = end_ns.max(0.0) as u64;
    record(SpanEvent {
        pid,
        tid: lane,
        name: name.to_string(),
        cat,
        start_ns: start,
        dur_ns: end.saturating_sub(start),
        args: args.to_vec(),
    });
}

/// Active state of an entered span (name, category, args, start).
struct Active {
    name: String,
    cat: &'static str,
    args: Vec<(&'static str, f64)>,
    start_ns: u64,
}

/// A scoped wall-clock timer: stamps the clock on entry, records a
/// [`SpanEvent`] on drop. Inert (no allocation, no clock read) when
/// collection is off.
#[must_use = "a span measures the scope it is bound to"]
pub struct SpanGuard(Option<Active>);

impl SpanGuard {
    /// Enters a span with a static name.
    #[inline]
    pub fn enter(name: &str, cat: &'static str, args: &[(&'static str, f64)]) -> SpanGuard {
        if !crate::trace_enabled() {
            return SpanGuard(None);
        }
        Self::enter_active(name.to_string(), cat, args)
    }

    /// Enters a span whose name is built only when collection is on —
    /// for dynamic names (`runner.run_system/gopim/ddi`) that would
    /// otherwise cost a format on the disabled path.
    #[inline]
    pub fn enter_dyn(
        name: impl FnOnce() -> String,
        cat: &'static str,
        args: &[(&'static str, f64)],
    ) -> SpanGuard {
        if !crate::trace_enabled() {
            return SpanGuard(None);
        }
        Self::enter_active(name(), cat, args)
    }

    #[cold]
    fn enter_active(name: String, cat: &'static str, args: &[(&'static str, f64)]) -> SpanGuard {
        SpanGuard(Some(Active {
            name,
            cat,
            args: args.to_vec(),
            start_ns: crate::now_ns(),
        }))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            let end = crate::now_ns();
            with_local(|tid, sink| {
                if RECORDED.fetch_add(1, Ordering::Relaxed) >= MAX_EVENTS.load(Ordering::Relaxed) {
                    note_drop();
                    return;
                }
                sink.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(SpanEvent {
                        pid: WALL_PID,
                        tid,
                        name: active.name,
                        cat: active.cat,
                        start_ns: active.start_ns,
                        dur_ns: end.saturating_sub(active.start_ns),
                        args: active.args,
                    });
            });
        }
    }
}

/// Opens a wall-clock span over the enclosing scope.
///
/// ```
/// # fn work() {}
/// let rows = 8usize;
/// let cols = 4usize;
/// {
///     let _span = gopim_obs::span!("matmul", rows, cols);
///     work();
/// } // span records here
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name, "span", &[])
    };
    ($name:expr, $($arg:ident),+ $(,)?) => {
        $crate::span::SpanGuard::enter(
            $name,
            "span",
            &[$((stringify!($arg), $arg as f64)),+],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span collection state is process-global, so exercise it from a
    // single test to avoid cross-test interference.
    #[test]
    fn spans_record_drain_and_respect_gating() {
        crate::set_trace_enabled(false);
        {
            let _off = crate::span!("disabled");
        }
        crate::set_trace_enabled(true);
        let _ = drain();
        let rows = 3usize;
        {
            let _s = crate::span!("unit.test_span", rows);
        }
        let pid = open_sim_track("unit");
        name_sim_lane(pid, 0, "AG1");
        record_sim(pid, 0, "AG1", "sim.compute", 10.0, 25.0, &[]);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = crate::span!("unit.worker_span");
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let events = drain();
        crate::set_trace_enabled(false);

        assert!(events.iter().all(|e| e.name != "disabled"));
        let main_span = events
            .iter()
            .find(|e| e.name == "unit.test_span")
            .expect("span recorded");
        assert_eq!(main_span.args, vec![("rows", 3.0)]);
        assert_eq!(main_span.pid, WALL_PID);
        let sim = events
            .iter()
            .find(|e| e.cat == "sim.compute")
            .expect("sim span recorded");
        assert_eq!(sim.pid, pid);
        assert_eq!((sim.start_ns, sim.dur_ns), (10, 15));
        assert_eq!(
            events
                .iter()
                .filter(|e| e.name == "unit.worker_span")
                .count(),
            4,
            "worker-thread buffers drain too"
        );
        assert!(drain().is_empty(), "drain empties every buffer");

        // Collector-cap drop accounting: shrink the cap, overflow it,
        // and check the loss is tallied, mirrored into the metrics
        // registry, and reset by drain.
        crate::set_trace_enabled(true);
        crate::set_metrics_enabled(true);
        set_event_cap(2);
        for _ in 0..5 {
            let _s = crate::span!("unit.capped");
        }
        assert_eq!(dropped(), 3, "three spans past the cap of two");
        let kept = drain();
        assert_eq!(kept.len(), 2, "capped buffer keeps the first two");
        assert_eq!(dropped(), 0, "drain resets the drop tally");
        let metrics = crate::metrics::global().snapshot();
        assert!(
            metrics.counters.get("obs.spans_dropped").copied() >= Some(3),
            "drops surface as the obs.spans_dropped counter: {metrics:?}"
        );
        set_event_cap(DEFAULT_MAX_EVENTS);
        crate::set_metrics_enabled(false);
        crate::set_trace_enabled(false);
    }

    #[test]
    fn identity_excludes_time_and_placement() {
        let mk = |tid, start| SpanEvent {
            pid: WALL_PID,
            tid,
            name: "n".into(),
            cat: "span",
            start_ns: start,
            dur_ns: 5,
            args: vec![("k", 2.0)],
        };
        assert_eq!(mk(1, 10).identity(), mk(7, 999).identity());
        assert_eq!(mk(1, 0).identity(), "span|n|k=2");
    }
}
