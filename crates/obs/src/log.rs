//! Level-gated logging facade.
//!
//! Replaces ad-hoc `eprintln!` progress lines with macros gated on
//! `GOPIM_LOG` (`error` | `warn` | `info` | `debug` | `off`, default
//! `info`). All output goes to stderr so binaries' stdout tables stay
//! byte-identical. The disabled path is one relaxed atomic load.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Failures the run cannot recover from.
    Error = 1,
    /// Suspicious conditions the run survives.
    Warn = 2,
    /// Progress lines (the default level).
    Info = 3,
    /// Verbose diagnostics.
    Debug = 4,
}

/// 0 = unread from the environment; otherwise max enabled level + 1
/// (so `1` means everything off).
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

fn level_from_env() -> u8 {
    match std::env::var("GOPIM_LOG").as_deref() {
        Ok("off" | "none" | "0") => 0,
        Ok("error") => Level::Error as u8,
        Ok("warn") => Level::Warn as u8,
        Ok("debug") => Level::Debug as u8,
        // info, unset, or unrecognized: the default.
        _ => Level::Info as u8,
    }
}

#[cold]
fn init() -> u8 {
    let max = level_from_env() + 1;
    MAX_LEVEL.store(max, Ordering::Relaxed);
    max
}

/// Whether messages at `level` are emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    let max = match MAX_LEVEL.load(Ordering::Relaxed) {
        0 => init(),
        m => m,
    };
    (level as u8) < max
}

/// Overrides the maximum emitted level (`None` silences everything),
/// taking precedence over `GOPIM_LOG`. For tests and embedders.
pub fn set_max_level(level: Option<Level>) {
    let max = level.map(|l| l as u8).unwrap_or(0) + 1;
    MAX_LEVEL.store(max, Ordering::Relaxed);
}

/// Formats and writes one line to stderr; the macros call this after
/// their level check so formatting never runs for disabled levels.
pub fn emit(level: Level, message: std::fmt::Arguments<'_>) {
    let tag = match level {
        Level::Error => "error",
        Level::Warn => "warn",
        Level::Info => "info",
        Level::Debug => "debug",
    };
    eprintln!("[gopim {tag}] {message}");
}

/// Logs at [`Level::Error`] (`format!`-style arguments).
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::emit($crate::log::Level::Error, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::emit($crate::log::Level::Warn, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::emit($crate::log::Level::Info, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::emit($crate::log::Level::Debug, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_gate() {
        assert!(Level::Error < Level::Debug);
        set_max_level(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_max_level(None);
        assert!(!enabled(Level::Error));
        set_max_level(Some(Level::Info));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
    }
}
