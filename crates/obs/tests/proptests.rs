//! Property tests for the metrics layer (histogram bucket geometry,
//! snapshot merge algebra) and adversarial coverage of the
//! `obs::export` JSON parser (truncation, non-finite numbers, deep
//! nesting, duplicate keys, arbitrary garbage).

use gopim_obs::export::{parse_json, Json, MAX_DEPTH};
use gopim_obs::metrics::{Histogram, Registry, Snapshot, BUCKETS};
use gopim_testkit::prop::{check, Draw};

fn arbitrary_u64(d: &mut Draw, name: &str) -> u64 {
    // Mix magnitudes: raw draws over the full line rarely exercise
    // small buckets, so half the samples come from a small range.
    if d.any_bool("small") {
        d.draw(name, 0u64..1024)
    } else {
        d.draw(name, 0u64..=u64::MAX)
    }
}

#[test]
fn every_sample_lands_inside_its_bucket_bounds() {
    check("histogram_bucket_contains_sample", |d| {
        let v = arbitrary_u64(d, "v");
        let i = Histogram::bucket_index(v);
        assert!(i < BUCKETS, "index {i} out of range for {v}");
        let lower = Histogram::bucket_lower(i);
        let upper = Histogram::bucket_upper(i);
        assert!(lower <= v, "{v} below bucket {i} lower bound {lower}");
        if i < BUCKETS - 1 {
            assert!(v < upper, "{v} not below bucket {i} upper bound {upper}");
        } else {
            assert!(v <= upper, "{v} above the open-ended last bucket");
        }
    });
}

#[test]
fn buckets_tile_the_line_without_gaps_or_overlap() {
    check("histogram_buckets_tile", |d| {
        let i = d.draw("bucket", 1usize..BUCKETS);
        assert_eq!(
            Histogram::bucket_upper(i - 1),
            Histogram::bucket_lower(i),
            "gap or overlap between buckets {} and {i}",
            i - 1
        );
        // The boundary value itself belongs to the upper bucket.
        let boundary = Histogram::bucket_lower(i);
        assert_eq!(Histogram::bucket_index(boundary), i);
        assert_eq!(Histogram::bucket_index(boundary - 1), i - 1);
    });
}

/// Builds a snapshot from drawn counter adds, gauge marks and
/// histogram samples over a small shared name pool. Values stay below
/// 2^48 (realistic nanosecond magnitudes) so sums cannot wrap.
fn arbitrary_snapshot(d: &mut Draw) -> Snapshot {
    let r = Registry::new();
    let names = ["alpha", "beta", "gamma"];
    let events = d.vec("events", 0usize..12, |d| {
        (
            d.draw("kind", 0u8..3),
            d.draw("name", 0usize..3),
            d.draw("value", 0u64..(1 << 48)),
        )
    });
    for (kind, name, value) in events {
        match kind {
            0 => r.counter(names[name]).add(value),
            1 => r.gauge(names[name]).record_max(value),
            _ => r.histogram(names[name]).record(value),
        }
    }
    r.snapshot()
}

#[test]
fn snapshot_merge_is_associative_and_commutative() {
    check("snapshot_merge_algebra", |d| {
        let a = arbitrary_snapshot(d);
        let b = arbitrary_snapshot(d);
        let c = arbitrary_snapshot(d);
        assert_eq!(a.merge(&b), b.merge(&a), "merge must commute");
        assert_eq!(
            a.merge(&b).merge(&c),
            a.merge(&b.merge(&c)),
            "merge must associate"
        );
        let empty = Snapshot::default();
        assert_eq!(a.merge(&empty), a, "empty snapshot is the identity");
    });
}

#[test]
fn merged_histograms_preserve_totals() {
    check("merged_histogram_totals", |d| {
        let a = arbitrary_snapshot(d);
        let b = arbitrary_snapshot(d);
        let m = a.merge(&b);
        for (name, h) in &m.histograms {
            let (ca, sa) = a
                .histograms
                .get(name)
                .map(|h| (h.count, h.sum))
                .unwrap_or((0, 0));
            let (cb, sb) = b
                .histograms
                .get(name)
                .map(|h| (h.count, h.sum))
                .unwrap_or((0, 0));
            assert_eq!(h.count, ca + cb, "count of {name}");
            assert_eq!(h.sum, sa + sb, "sum of {name}");
            assert_eq!(h.count, h.counts.iter().sum::<u64>(), "buckets of {name}");
        }
    });
}

#[test]
fn cross_thread_counter_updates_merge_to_the_serial_total() {
    check("cross_thread_counter_merge", |d| {
        let per_thread = d.vec("adds", 1usize..5, |d| {
            d.vec("thread_adds", 0usize..8, |d| d.draw("n", 0u64..1_000_000))
        });
        let r = Registry::new();
        std::thread::scope(|scope| {
            for adds in &per_thread {
                let counter = r.counter("t");
                scope.spawn(move || {
                    for &n in adds {
                        counter.add(n);
                    }
                });
            }
        });
        let expected: u64 = per_thread.iter().flatten().sum();
        assert_eq!(r.snapshot().counters.get("t"), Some(&expected));
    });
}

/// Builds a well-formed ASCII JSON object document from draws — every
/// *strict* prefix of an object document is invalid JSON, which makes
/// truncation outcomes decidable.
fn arbitrary_object_doc(d: &mut Draw) -> String {
    let pairs = d.vec("pairs", 1usize..6, |d| {
        let key = format!("k{}", d.draw("key", 0u32..100));
        let value = match d.draw("kind", 0u8..4) {
            0 => format!("{}", d.draw("num", -1_000_000i64..1_000_000)),
            1 => format!("\"s{}\"", d.draw("str", 0u32..100)),
            2 => format!("[{}, null, true]", d.draw("item", 0u32..100)),
            _ => "false".to_string(),
        };
        (key, value)
    });
    let body: Vec<String> = pairs.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", body.join(", "))
}

#[test]
fn truncated_records_error_without_panicking() {
    check("json_truncation", |d| {
        let doc = arbitrary_object_doc(d);
        assert!(parse_json(&doc).is_ok(), "fixture must parse: {doc}");
        let cut = d.draw("cut", 0usize..doc.len());
        assert!(
            parse_json(&doc[..cut]).is_err(),
            "strict prefix of an object doc parsed: {:?}",
            &doc[..cut]
        );
    });
}

#[test]
fn non_finite_numbers_are_rejected() {
    for bad in [
        "NaN",
        "nan",
        "Infinity",
        "-Infinity",
        "inf",
        "-inf",
        "1e999",
        "-1e999",
        "[1e999]",
        "{\"x\": 1e999}",
        "1e+400",
    ] {
        assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
    }
    // Boundary: the largest finite f64 magnitudes still parse.
    assert!(parse_json("1e308").is_ok());
    assert!(parse_json("-1e308").is_ok());
}

#[test]
fn deep_nesting_errors_instead_of_overflowing_the_stack() {
    check("json_deep_nesting", |d| {
        let depth = d.draw("depth", 1usize..10_000);
        let doc = format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
        let result = parse_json(&doc);
        if depth < MAX_DEPTH {
            assert!(result.is_ok(), "depth {depth} should parse");
        } else {
            let err = result.expect_err("past MAX_DEPTH must error");
            assert!(err.contains("nesting"), "unexpected error: {err}");
        }
    });
}

#[test]
fn duplicate_keys_resolve_to_the_first_occurrence() {
    check("json_duplicate_keys", |d| {
        let first = d.draw("first", -1000i64..1000);
        let second = d.draw("second", -1000i64..1000);
        let doc = format!("{{\"k\": {first}, \"k\": {second}, \"other\": 1}}");
        let parsed = parse_json(&doc).expect("duplicate keys still parse");
        assert_eq!(
            parsed.get("k").and_then(Json::as_num),
            Some(first as f64),
            "get must return the first occurrence"
        );
    });
}

#[test]
fn arbitrary_garbage_never_panics_the_parser() {
    check("json_garbage", |d| {
        let bytes = d.vec("bytes", 0usize..64, |d| d.draw("b", 0u8..=255));
        let text = String::from_utf8_lossy(&bytes);
        // The only contract on garbage: return, never panic.
        let _ = parse_json(&text);
        // Mutating one byte of a valid doc must also never panic.
        let mut doc = arbitrary_object_doc(d).into_bytes();
        if !doc.is_empty() {
            let at = d.draw("at", 0usize..doc.len());
            doc[at] = d.draw("to", 0u8..=255);
            let _ = parse_json(&String::from_utf8_lossy(&doc));
        }
    });
}
