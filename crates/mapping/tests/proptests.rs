//! Property-based tests for the mapping strategies (gopim-testkit).

use gopim_graph::DegreeProfile;
use gopim_mapping::{
    adaptive_theta, index_based, interleaved, update_load, SelectivePolicy, DENSE_THETA,
    SPARSE_THETA,
};
use gopim_testkit::prop::{check_with, Config};

#[test]
fn both_mappings_cover_every_vertex_exactly_once() {
    check_with(
        "both_mappings_cover_every_vertex_exactly_once",
        Config::cases(64),
        |d| {
            let degrees = d.vec("degrees", 1usize..400, |d| d.draw("deg", 0u32..2000));
            let capacity = d.draw("capacity", 1usize..100);
            let profile = DegreeProfile::from_degrees(degrees);
            let idx = index_based(profile.num_vertices(), capacity);
            let ivl = interleaved(&profile, capacity);
            assert!(idx.validate().is_ok());
            assert!(ivl.validate().is_ok());
            assert_eq!(idx.num_vertices(), profile.num_vertices());
            assert_eq!(ivl.num_vertices(), profile.num_vertices());
            // Same group count: interleaving never needs extra crossbars.
            assert_eq!(idx.num_groups(), ivl.num_groups());
        },
    );
}

#[test]
fn interleaved_degree_spread_never_exceeds_index_spread() {
    check_with(
        "interleaved_degree_spread_never_exceeds_index_spread",
        Config::cases(64),
        |d| {
            let degrees = d.vec("degrees", 64usize..500, |d| d.draw("deg", 0u32..5000));
            let capacity = d.pick("capacity", &[16usize, 32, 64]);
            // Sorted-by-degree input = worst-case index locality.
            let mut sorted = degrees;
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let profile = DegreeProfile::from_degrees(sorted);
            let idx = index_based(profile.num_vertices(), capacity).degree_summary(&profile);
            let ivl = interleaved(&profile, capacity).degree_summary(&profile);
            assert!(
                ivl.max_avg - ivl.min_avg <= idx.max_avg - idx.min_avg + 1e-9,
                "interleaved spread {} vs index {}",
                ivl.max_avg - ivl.min_avg,
                idx.max_avg - idx.min_avg
            );
            // With equal-size groups the mean of per-group averages is
            // arrangement-invariant (ragged tails weight groups unevenly).
            if profile.num_vertices().is_multiple_of(capacity) {
                assert!((ivl.mean_avg - idx.mean_avg).abs() < 1e-6);
            }
        },
    );
}

#[test]
fn selective_total_work_is_mapping_independent() {
    check_with(
        "selective_total_work_is_mapping_independent",
        Config::cases(64),
        |d| {
            let degrees = d.vec("degrees", 10usize..300, |d| d.draw("deg", 0u32..1000));
            let theta = d.draw("theta", 0.05f64..1.0);
            let profile = DegreeProfile::from_degrees(degrees);
            let policy = SelectivePolicy::with_theta(theta, 20);
            let mask = policy.important_vertices(&profile);
            let idx = update_load(&index_based(profile.num_vertices(), 64), &mask);
            let ivl = update_load(&interleaved(&profile, 64), &mask);
            assert_eq!(idx.total_rows, ivl.total_rows);
            assert!(ivl.max_rows_per_group <= idx.max_rows_per_group.max(1));
            // The selected count is exactly ⌈θ·n⌉.
            assert_eq!(
                idx.total_rows,
                policy
                    .num_important(profile.num_vertices())
                    .min(profile.num_vertices())
            );
        },
    );
}

#[test]
fn adaptive_rule_is_a_threshold_at_degree_eight() {
    check_with(
        "adaptive_rule_is_a_threshold_at_degree_eight",
        Config::cases(64),
        |d| {
            let avg_x10 = d.draw("avg_x10", 1u32..300);
            let avg = f64::from(avg_x10) / 10.0;
            let n = 100usize;
            let degrees = vec![avg.round() as u32; n];
            let profile = DegreeProfile::from_degrees(degrees);
            let theta = adaptive_theta(&profile);
            if profile.avg_degree() <= 8.0 {
                assert_eq!(theta, SPARSE_THETA);
            } else {
                assert_eq!(theta, DENSE_THETA);
            }
        },
    );
}

#[test]
fn remapping_never_maps_vertices_onto_a_dead_crossbar() {
    check_with(
        "remapping_never_maps_vertices_onto_a_dead_crossbar",
        Config::cases(64),
        |d| {
            let degrees = d.vec("degrees", 1usize..300, |d| d.draw("deg", 0u32..2000));
            let capacity = d.pick("capacity", &[8usize, 16, 32]);
            let profile = gopim_graph::DegreeProfile::from_degrees(degrees);
            let mapping = interleaved(&profile, capacity);
            let dead: Vec<bool> = (0..mapping.num_groups())
                .map(|_| d.bool_with("dead", 0.3))
                .collect();
            let spares = d.draw("spares", 0usize..6);
            let out = gopim_mapping::remap_to_spares(&mapping, &dead, spares);
            // Every vertex stays mapped exactly once within capacity.
            out.mapping.validate().unwrap();
            assert_eq!(out.mapping.num_vertices(), mapping.num_vertices());
            assert_eq!(out.physical.len(), out.mapping.num_groups());
            // No live vertex group is ever backed by a dead crossbar
            // (except the documented total-loss degenerate case).
            let total_loss = spares == 0 && dead.iter().all(|&x| x);
            if !total_loss {
                for &p in &out.physical {
                    let original = (p as usize) < mapping.num_groups();
                    assert!(
                        !original || !dead[p as usize],
                        "group backed by dead crossbar {p}"
                    );
                }
            }
            // Stranded vertices are exactly the dead groups' members.
            let stranded = gopim_mapping::stranded_vertices(&mapping, &dead);
            let expect: usize = mapping
                .groups()
                .iter()
                .enumerate()
                .filter(|(g, _)| dead[*g])
                .map(|(_, vs)| vs.len())
                .sum();
            assert_eq!(stranded.len(), expect);
        },
    );
}
