//! Vertex-to-crossbar-group assignment.

use gopim_graph::DegreeProfile;

/// An assignment of every vertex to a crossbar group (one group = the
/// set of wordlines of one crossbar holding vertex features).
///
/// Invariant: every vertex id `0..num_vertices` appears in exactly one
/// group, and no group exceeds `capacity`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexMapping {
    groups: Vec<Vec<u32>>,
    capacity: usize,
    num_vertices: usize,
}

/// Per-group degree summary used by the paper's Fig. 6 analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupDegreeSummary {
    /// Smallest per-group average degree.
    pub min_avg: f64,
    /// Largest per-group average degree.
    pub max_avg: f64,
    /// Mean of the per-group averages.
    pub mean_avg: f64,
}

impl VertexMapping {
    pub(crate) fn from_groups(groups: Vec<Vec<u32>>, capacity: usize) -> Self {
        let num_vertices = groups.iter().map(Vec::len).sum();
        VertexMapping {
            groups,
            capacity,
            num_vertices,
        }
    }

    /// The vertex groups, one per crossbar.
    pub fn groups(&self) -> &[Vec<u32>] {
        &self.groups
    }

    /// Number of crossbar groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Crossbar wordline capacity the mapping was built for.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total vertices mapped.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Average vertex degree of each group.
    ///
    /// # Panics
    ///
    /// Panics if `profile` covers fewer vertices than the mapping.
    pub fn group_avg_degrees(&self, profile: &DegreeProfile) -> Vec<f64> {
        self.groups
            .iter()
            .map(|g| {
                if g.is_empty() {
                    return 0.0;
                }
                let sum: u64 = g
                    .iter()
                    .map(|&v| u64::from(profile.degree(v as usize)))
                    .sum();
                sum as f64 / g.len() as f64
            })
            .collect()
    }

    /// Min/max/mean of the per-group average degrees (the quantity the
    /// paper plots in Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if the mapping is empty or `profile` is too small.
    pub fn degree_summary(&self, profile: &DegreeProfile) -> GroupDegreeSummary {
        let avgs = self.group_avg_degrees(profile);
        assert!(!avgs.is_empty(), "mapping has no groups");
        let min_avg = avgs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_avg = avgs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean_avg = avgs.iter().sum::<f64>() / avgs.len() as f64;
        GroupDegreeSummary {
            min_avg,
            max_avg,
            mean_avg,
        }
    }

    /// Checks the mapping invariants (cover exactly once, capacity).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.num_vertices];
        for (i, g) in self.groups.iter().enumerate() {
            if g.len() > self.capacity {
                return Err(format!("group {i} exceeds capacity"));
            }
            for &v in g {
                let vu = v as usize;
                if vu >= self.num_vertices {
                    return Err(format!("vertex {v} out of range"));
                }
                if seen[vu] {
                    return Err(format!("vertex {v} mapped twice"));
                }
                seen[vu] = true;
            }
        }
        if let Some(v) = seen.iter().position(|&s| !s) {
            return Err(format!("vertex {v} not mapped"));
        }
        Ok(())
    }
}

/// Index-based mapping (the ReGraphX / SlimGNN baseline): vertices in
/// index order, `capacity` per crossbar.
///
/// # Panics
///
/// Panics if `capacity == 0`.
pub fn index_based(num_vertices: usize, capacity: usize) -> VertexMapping {
    assert!(capacity > 0, "capacity must be positive");
    let groups = (0..num_vertices as u32)
        .collect::<Vec<u32>>()
        .chunks(capacity)
        .map(<[u32]>::to_vec)
        .collect();
    VertexMapping::from_groups(groups, capacity)
}

/// GoPIM's interleaved mapping (§VI-B): sort vertices by degree
/// descending, split the ranking into `capacity` scopes of `⌈N/K⌉`
/// vertices, then deal one vertex of each scope to every crossbar
/// round-robin. Every crossbar receives a balanced mix of degree
/// classes.
///
/// # Panics
///
/// Panics if `capacity == 0`.
pub fn interleaved(profile: &DegreeProfile, capacity: usize) -> VertexMapping {
    assert!(capacity > 0, "capacity must be positive");
    let n = profile.num_vertices();
    if n == 0 {
        return VertexMapping::from_groups(Vec::new(), capacity);
    }
    let ranked = profile.vertices_by_degree_desc();
    let num_groups = n.div_ceil(capacity);
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); num_groups];
    // Scope s = ranked[s*num_groups .. (s+1)*num_groups]; the j-th
    // element of every scope goes to group j.
    for (rank, &v) in ranked.iter().enumerate() {
        let group = rank % num_groups;
        groups[group].push(v);
    }
    VertexMapping::from_groups(groups, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_profile() -> DegreeProfile {
        // First half high-degree, second half low-degree — the index
        // locality of real OGB orderings.
        DegreeProfile::from_degrees((0..64u32).map(|i| if i < 32 { 1000 } else { 2 }).collect())
    }

    #[test]
    fn index_mapping_covers_all_vertices() {
        let m = index_based(100, 16);
        m.validate().unwrap();
        assert_eq!(m.num_groups(), 7);
        assert_eq!(m.groups()[6].len(), 4);
    }

    #[test]
    fn interleaved_mapping_covers_all_vertices() {
        let p = skewed_profile();
        let m = interleaved(&p, 16);
        m.validate().unwrap();
        assert_eq!(m.num_groups(), 4);
        assert!(m.groups().iter().all(|g| g.len() == 16));
    }

    #[test]
    fn index_mapping_is_skewed_on_local_profiles() {
        let p = skewed_profile();
        let m = index_based(p.num_vertices(), 16);
        let s = m.degree_summary(&p);
        assert_eq!(s.min_avg, 2.0);
        assert_eq!(s.max_avg, 1000.0);
    }

    #[test]
    fn interleaved_mapping_balances_degree_mass() {
        let p = skewed_profile();
        let m = interleaved(&p, 16);
        let s = m.degree_summary(&p);
        // Every group should get 8 high + 8 low ⇒ avg 501 everywhere.
        assert!((s.max_avg - s.min_avg).abs() < 1e-9, "{s:?}");
        assert!((s.mean_avg - 501.0).abs() < 1e-9);
    }

    #[test]
    fn interleaved_beats_index_on_balance() {
        let p = DegreeProfile::from_degrees((0..256u32).map(|i| 1 + (i * i) % 977).collect());
        let idx = index_based(p.num_vertices(), 32).degree_summary(&p);
        let ivl = interleaved(&p, 32).degree_summary(&p);
        let spread = |s: &GroupDegreeSummary| s.max_avg - s.min_avg;
        assert!(spread(&ivl) < spread(&idx));
    }

    #[test]
    fn ragged_tail_keeps_groups_within_capacity() {
        let p = DegreeProfile::from_degrees((0..13u32).map(|i| i + 1).collect());
        let m = interleaved(&p, 4);
        m.validate().unwrap();
        assert_eq!(m.num_groups(), 4);
    }

    #[test]
    fn empty_profile_yields_no_groups() {
        let p = DegreeProfile::from_degrees(vec![]);
        assert_eq!(interleaved(&p, 4).num_groups(), 0);
        assert_eq!(index_based(0, 4).num_groups(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        index_based(4, 0);
    }
}
