//! Remapping vertex groups around dead crossbars.
//!
//! When the fault layer kills a crossbar, its vertex rows become
//! unwritable. The graceful path moves each dead group's vertex list
//! wholesale onto one of the allocator's reserved *spare* crossbars —
//! a pure physical re-steer that keeps the logical (interleaved)
//! mapping, and with it ISU's balanced update profile, intact. When
//! more groups die than spares exist, we fall back to a fresh
//! index-based logical mapping packed round-robin over the surviving
//! physical crossbars (matching the paper's baseline mapping): ISU's
//! balance is sacrificed, but every vertex stays mapped and no dead
//! crossbar is ever written again.

use crate::mapping::{index_based, VertexMapping};

/// Result of remapping a [`VertexMapping`] around a dead mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemapOutcome {
    /// The logical mapping after remap (unchanged on the spare path,
    /// rebuilt index-based on the fallback path).
    pub mapping: VertexMapping,
    /// Physical crossbar id backing each logical group. Original
    /// groups occupy physical ids `0..G`, spares `G..G+spares`.
    /// Never contains a dead id (unless nothing is left alive).
    pub physical: Vec<u32>,
    /// Vertices whose physical crossbar changed.
    pub moved_vertices: usize,
    /// Spare crossbars consumed.
    pub spares_used: usize,
    /// Whether the index-based fallback was taken.
    pub fallback: bool,
}

/// Remaps `mapping` around `dead` physical crossbars (indexed by
/// group id; shorter masks treat missing entries as alive), using up
/// to `spare_groups` spare crossbars with physical ids starting at
/// `mapping.num_groups()`.
///
/// Degenerate case: if every group is dead and there are no spares,
/// there is nothing to remap onto — the identity outcome is returned
/// with `fallback = true` (total loss; callers should treat every
/// vertex as frozen).
pub fn remap_to_spares(
    mapping: &VertexMapping,
    dead: &[bool],
    spare_groups: usize,
) -> RemapOutcome {
    let num_groups = mapping.num_groups();
    let is_dead = |g: usize| dead.get(g).copied().unwrap_or(false);
    let dead_ids: Vec<usize> = (0..num_groups).filter(|&g| is_dead(g)).collect();

    if dead_ids.is_empty() {
        return RemapOutcome {
            mapping: mapping.clone(),
            physical: (0..num_groups as u32).collect(),
            moved_vertices: 0,
            spares_used: 0,
            fallback: false,
        };
    }

    if dead_ids.len() <= spare_groups {
        // Spare path: re-steer each dead group to its own spare.
        let mut physical: Vec<u32> = (0..num_groups as u32).collect();
        let mut moved = 0;
        for (i, &g) in dead_ids.iter().enumerate() {
            physical[g] = (num_groups + i) as u32;
            moved += mapping.groups()[g].len();
        }
        return RemapOutcome {
            mapping: mapping.clone(),
            physical,
            moved_vertices: moved,
            spares_used: dead_ids.len(),
            fallback: false,
        };
    }

    // Fallback: rebuild index-based and pack the logical groups
    // round-robin over live originals plus all spares. Physical ids
    // may repeat (time-multiplexed crossbars) but are never dead.
    let avail: Vec<u32> = (0..num_groups as u32)
        .filter(|&g| !is_dead(g as usize))
        .chain((num_groups as u32..).take(spare_groups))
        .collect();
    if avail.is_empty() {
        return RemapOutcome {
            mapping: mapping.clone(),
            physical: (0..num_groups as u32).collect(),
            moved_vertices: 0,
            spares_used: 0,
            fallback: true,
        };
    }
    let rebuilt = index_based(mapping.num_vertices(), mapping.capacity());
    let physical: Vec<u32> = (0..rebuilt.num_groups())
        .map(|g| avail[g % avail.len()])
        .collect();
    RemapOutcome {
        mapping: rebuilt,
        physical,
        moved_vertices: mapping.num_vertices(),
        spares_used: spare_groups,
        fallback: true,
    }
}

/// Vertices stranded on dead crossbars when *no* remapping happens
/// (the baseline/retry policies): their feature rows can never be
/// rewritten, so training must treat them as frozen.
pub fn stranded_vertices(mapping: &VertexMapping, dead: &[bool]) -> Vec<u32> {
    let mut stranded: Vec<u32> = mapping
        .groups()
        .iter()
        .enumerate()
        .filter(|(g, _)| dead.get(*g).copied().unwrap_or(false))
        .flat_map(|(_, vs)| vs.iter().copied())
        .collect();
    stranded.sort_unstable();
    stranded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::interleaved;
    use gopim_graph::DegreeProfile;

    fn mapping_64() -> VertexMapping {
        let p = DegreeProfile::from_degrees((0..64u32).map(|i| 1 + i * 7 % 301).collect());
        interleaved(&p, 16)
    }

    #[test]
    fn no_dead_groups_is_the_identity() {
        let m = mapping_64();
        let out = remap_to_spares(&m, &[false; 4], 2);
        assert_eq!(out.mapping, m);
        assert_eq!(out.physical, vec![0, 1, 2, 3]);
        assert_eq!(out.moved_vertices, 0);
        assert!(!out.fallback);
    }

    #[test]
    fn dead_groups_move_wholesale_to_spares() {
        let m = mapping_64();
        let out = remap_to_spares(&m, &[false, true, false, true], 2);
        assert!(!out.fallback);
        assert_eq!(out.spares_used, 2);
        // Logical mapping untouched — ISU balance preserved.
        assert_eq!(out.mapping, m);
        // Physical: group 1 → spare 4, group 3 → spare 5.
        assert_eq!(out.physical, vec![0, 4, 2, 5]);
        assert_eq!(out.moved_vertices, 32);
    }

    #[test]
    fn exhausted_spares_fall_back_to_index_based_on_survivors() {
        let m = mapping_64();
        let out = remap_to_spares(&m, &[true, true, true, false], 1);
        assert!(out.fallback);
        assert_eq!(out.moved_vertices, 64);
        out.mapping.validate().unwrap();
        // Only live original (3) and the one spare (4) are used.
        assert!(!out.physical.is_empty());
        for &p in &out.physical {
            assert!(p == 3 || p == 4, "physical {p} should be live or spare");
        }
    }

    #[test]
    fn total_loss_keeps_identity_and_flags_fallback() {
        let m = mapping_64();
        let out = remap_to_spares(&m, &[true; 4], 0);
        assert!(out.fallback);
        assert_eq!(out.moved_vertices, 0);
        assert_eq!(out.physical, vec![0, 1, 2, 3]);
    }

    #[test]
    fn stranded_vertices_cover_exactly_the_dead_groups() {
        let m = mapping_64();
        let dead = [false, true, false, false];
        let stranded = stranded_vertices(&m, &dead);
        assert_eq!(stranded.len(), m.groups()[1].len());
        let mut expect: Vec<u32> = m.groups()[1].clone();
        expect.sort_unstable();
        assert_eq!(stranded, expect);
        assert!(stranded_vertices(&m, &[false; 4]).is_empty());
    }
}
