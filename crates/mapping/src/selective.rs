//! Selective vertex updating (the paper's §VI-A and §VI-C).

use gopim_graph::DegreeProfile;

use crate::mapping::VertexMapping;

/// Update threshold for dense graphs (average degree > 8): top 50 % of
/// vertices refresh every epoch (§VI-C).
pub const DENSE_THETA: f64 = 0.5;

/// Update threshold for sparse graphs (average degree ≤ 8): top 80 %.
pub const SPARSE_THETA: f64 = 0.8;

/// Less-important vertices are refreshed once every this many epochs
/// (§VI-A).
pub const STALE_PERIOD_EPOCHS: usize = 20;

/// The paper's adaptive-θ rule: [`SPARSE_THETA`] for sparse graphs,
/// [`DENSE_THETA`] for dense ones.
pub fn adaptive_theta(profile: &DegreeProfile) -> f64 {
    if profile.is_sparse() {
        SPARSE_THETA
    } else {
        DENSE_THETA
    }
}

/// A selective-updating policy: which vertices are *important* (updated
/// every epoch) and how often the rest refresh.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectivePolicy {
    theta: f64,
    stale_period: usize,
}

impl SelectivePolicy {
    /// Policy with an explicit threshold.
    ///
    /// # Panics
    ///
    /// Panics if `theta ∉ [0, 1]` or `stale_period == 0`.
    pub fn with_theta(theta: f64, stale_period: usize) -> Self {
        assert!((0.0..=1.0).contains(&theta), "theta must be in [0, 1]");
        assert!(stale_period > 0, "stale period must be positive");
        SelectivePolicy {
            theta,
            stale_period,
        }
    }

    /// Policy using the paper's adaptive threshold for `profile`.
    pub fn adaptive(profile: &DegreeProfile) -> Self {
        SelectivePolicy::with_theta(adaptive_theta(profile), STALE_PERIOD_EPOCHS)
    }

    /// The policy that updates everything every epoch (no
    /// sparsification — the GoPIM-Vanilla and baseline behaviour).
    pub fn update_all() -> Self {
        SelectivePolicy {
            theta: 1.0,
            stale_period: 1,
        }
    }

    /// Update threshold θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Refresh period of less-important vertices, epochs.
    pub fn stale_period(&self) -> usize {
        self.stale_period
    }

    /// Number of important vertices for a graph of `n` vertices
    /// (`⌈θ·n⌉`).
    pub fn num_important(&self, n: usize) -> usize {
        (self.theta * n as f64).ceil() as usize
    }

    /// The important vertex set: the top `⌈θ·n⌉` vertices by degree.
    /// Returned as a boolean mask indexed by vertex id.
    pub fn important_vertices(&self, profile: &DegreeProfile) -> Vec<bool> {
        let n = profile.num_vertices();
        let k = self.num_important(n).min(n);
        let ranked = profile.vertices_by_degree_desc();
        let mut mask = vec![false; n];
        for &v in &ranked[..k] {
            mask[v as usize] = true;
        }
        mask
    }

    /// Whether vertex importance mask `important` makes the vertex
    /// refresh in `epoch` (0-based): important vertices every epoch,
    /// others when `epoch % stale_period == 0`.
    pub fn updates_in_epoch(&self, important: bool, epoch: usize) -> bool {
        important || epoch.is_multiple_of(self.stale_period)
    }

    /// Amortized per-epoch update fraction:
    /// `θ + (1 − θ) / stale_period`.
    pub fn amortized_update_fraction(&self) -> f64 {
        self.theta + (1.0 - self.theta) / self.stale_period as f64
    }
}

/// Per-crossbar update workload under a mapping + selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateLoad {
    /// Rows written on the most-loaded crossbar (the pacing quantity:
    /// intra-crossbar writes are serial).
    pub max_rows_per_group: usize,
    /// Total rows written across all crossbars.
    pub total_rows: usize,
}

/// Rows each crossbar group must rewrite for the selected vertex mask.
///
/// # Panics
///
/// Panics if `selected.len() < mapping.num_vertices()`.
pub fn update_rows_per_group(mapping: &VertexMapping, selected: &[bool]) -> Vec<usize> {
    assert!(
        selected.len() >= mapping.num_vertices(),
        "selection mask too short"
    );
    mapping
        .groups()
        .iter()
        .map(|g| g.iter().filter(|&&v| selected[v as usize]).count())
        .collect()
}

/// Aggregate update workload for a selection mask.
///
/// # Panics
///
/// Panics if `selected.len() < mapping.num_vertices()`.
pub fn update_load(mapping: &VertexMapping, selected: &[bool]) -> UpdateLoad {
    let rows = update_rows_per_group(mapping, selected);
    UpdateLoad {
        max_rows_per_group: rows.iter().copied().max().unwrap_or(0),
        total_rows: rows.iter().sum(),
    }
}

impl gopim_cache::CanonicalHash for SelectivePolicy {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("mapping.selective/v1");
        h.write_f64(self.theta);
        h.write_usize(self.stale_period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{index_based, interleaved};

    /// The paper's Fig. 7 / Fig. 12 worked example.
    fn fig7_profile() -> DegreeProfile {
        DegreeProfile::from_degrees(vec![300, 500, 250, 450, 2, 15, 10, 1])
    }

    #[test]
    fn adaptive_theta_matches_paper_rule() {
        let sparse = DegreeProfile::from_degrees(vec![4, 4, 4]);
        let dense = DegreeProfile::from_degrees(vec![100, 100]);
        assert_eq!(adaptive_theta(&sparse), SPARSE_THETA);
        assert_eq!(adaptive_theta(&dense), DENSE_THETA);
    }

    #[test]
    fn important_set_is_top_theta_by_degree() {
        let p = fig7_profile();
        let policy = SelectivePolicy::with_theta(0.5, 20);
        let mask = policy.important_vertices(&p);
        // Degrees 300, 500, 250, 450 are the top four.
        assert_eq!(
            mask,
            vec![true, true, true, true, false, false, false, false]
        );
    }

    #[test]
    fn osu_keeps_max_load_at_capacity_fig7() {
        // Index mapping: V1–V4 on crossbar 0, V5–V8 on crossbar 1.
        let p = fig7_profile();
        let policy = SelectivePolicy::with_theta(0.5, 20);
        let mask = policy.important_vertices(&p);
        let osu = index_based(8, 4);
        let rows = update_rows_per_group(&osu, &mask);
        assert_eq!(rows, vec![4, 0]);
        assert_eq!(update_load(&osu, &mask).max_rows_per_group, 4);
    }

    #[test]
    fn isu_halves_max_load_fig12() {
        let p = fig7_profile();
        let policy = SelectivePolicy::with_theta(0.5, 20);
        let mask = policy.important_vertices(&p);
        let isu = interleaved(&p, 4);
        let load = update_load(&isu, &mask);
        assert_eq!(load.max_rows_per_group, 2);
        assert_eq!(load.total_rows, 4);
    }

    #[test]
    fn update_all_selects_everything_every_epoch() {
        let policy = SelectivePolicy::update_all();
        assert_eq!(policy.amortized_update_fraction(), 1.0);
        assert!(policy.updates_in_epoch(false, 13));
    }

    #[test]
    fn epoch_schedule_refreshes_stale_vertices_periodically() {
        let policy = SelectivePolicy::with_theta(0.5, 20);
        assert!(policy.updates_in_epoch(true, 7));
        assert!(!policy.updates_in_epoch(false, 7));
        assert!(policy.updates_in_epoch(false, 40));
    }

    #[test]
    fn amortized_fraction_formula() {
        let policy = SelectivePolicy::with_theta(0.5, 20);
        assert!((policy.amortized_update_fraction() - 0.525).abs() < 1e-12);
    }

    #[test]
    fn theta_one_marks_everything_important() {
        let p = fig7_profile();
        let mask = SelectivePolicy::with_theta(1.0, 20).important_vertices(&p);
        assert!(mask.iter().all(|&m| m));
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn invalid_theta_rejected() {
        SelectivePolicy::with_theta(1.5, 20);
    }
}
