//! Vertex-to-crossbar mapping strategies and selective vertex updating
//! (the paper's §III Challenge 2 and §VI).
//!
//! A GCN's *Aggregation* stage keeps the vertex-feature matrix mapped on
//! crossbars; every feature refresh is a ReRAM write, serial within a
//! crossbar. Which vertices share a crossbar therefore determines the
//! update-time profile:
//!
//! - [`index_based`] mapping (ReGraphX/SlimGNN style) places vertices in
//!   index order — per-crossbar degree averages end up wildly skewed
//!   (paper Fig. 6), so *selective* updating saves little: some crossbar
//!   keeps all its high-degree vertices (paper Fig. 7, "OSU").
//! - [`interleaved`] mapping (GoPIM's ISU, §VI-B) sorts vertices by
//!   degree, splits them into `K` equal scopes and deals one vertex from
//!   each scope to every crossbar round-robin — balancing both degree
//!   mass and the update reduction (paper Fig. 11/12).
//!
//! [`SelectivePolicy`] implements the adaptive-θ updating rule (§VI-C):
//! the top θ of vertices by degree refresh every epoch, the rest every
//! 20 epochs; θ = 50 % for dense graphs, 80 % for sparse ones.
//!
//! # Example: the paper's Fig. 7 / Fig. 12 worked example
//!
//! ```
//! use gopim_graph::DegreeProfile;
//! use gopim_mapping::{index_based, interleaved, SelectivePolicy, update_rows_per_group};
//!
//! let profile = DegreeProfile::from_degrees(vec![300, 500, 250, 450, 2, 15, 10, 1]);
//! let policy = SelectivePolicy::with_theta(0.5, 20);
//! let selected = policy.important_vertices(&profile);
//!
//! // OSU: V1–V4 all land on crossbar 0 ⇒ it still writes 4 rows.
//! let osu = index_based(profile.num_vertices(), 4);
//! assert_eq!(update_rows_per_group(&osu, &selected).iter().max(), Some(&4));
//!
//! // ISU: interleaving spreads them 2 + 2 ⇒ max 2 rows.
//! let isu = interleaved(&profile, 4);
//! assert_eq!(update_rows_per_group(&isu, &selected).iter().max(), Some(&2));
//! ```

#![warn(missing_docs)]

mod mapping;
mod remap;
mod selective;

pub use mapping::{index_based, interleaved, GroupDegreeSummary, VertexMapping};
pub use remap::{remap_to_spares, stranded_vertices, RemapOutcome};
pub use selective::{
    adaptive_theta, update_load, update_rows_per_group, SelectivePolicy, UpdateLoad, DENSE_THETA,
    SPARSE_THETA, STALE_PERIOD_EPOCHS,
};
