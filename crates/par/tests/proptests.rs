//! Property-based tests for the deterministic parallel runtime: the
//! `par_*` primitives must agree with their serial definitions for
//! arbitrary inputs, partition sizes and pool sizes.

use gopim_par::{par_chunks_mut, par_map, par_map_reduce, Pool};
use gopim_testkit::prop::{check_with, Config};

#[test]
fn par_map_reduce_equals_serial_fold_for_any_partition() {
    check_with(
        "par_map_reduce_equals_serial_fold_for_any_partition",
        Config::cases(48),
        |d| {
            let items = d.vec("items", 0usize..200, |d| d.draw("x", 0u64..1 << 40));
            let chunk_len = d.draw("chunk_len", 1usize..64);
            let threads = d.pick("threads", &[1usize, 2, 4, 8]);
            let serial = items.iter().fold(0u64, |acc, &x| acc.wrapping_add(x));
            let got = Pool::new(threads).install(|| {
                par_map_reduce(
                    &items,
                    chunk_len,
                    0u64,
                    |acc, &x| acc.wrapping_add(x),
                    |a, b| a.wrapping_add(b),
                )
            });
            assert_eq!(got, serial, "wrapping-sum diverged from serial fold");
        },
    );
}

#[test]
fn par_map_reduce_max_and_count_agree_with_serial() {
    check_with(
        "par_map_reduce_max_and_count_agree_with_serial",
        Config::cases(48),
        |d| {
            let items = d.vec("items", 0usize..150, |d| d.draw("x", -1000i64..1000));
            let chunk_len = d.draw("chunk_len", 1usize..40);
            let threads = d.pick("threads", &[1usize, 3, 7]);
            let pool = Pool::new(threads);
            let max = pool.install(|| {
                par_map_reduce(
                    &items,
                    chunk_len,
                    i64::MIN,
                    |a, &x| a.max(x),
                    |a, b| a.max(b),
                )
            });
            assert_eq!(max, items.iter().copied().fold(i64::MIN, i64::max));
            let evens = pool.install(|| {
                par_map_reduce(
                    &items,
                    chunk_len,
                    0usize,
                    |acc, &x| acc + usize::from(x % 2 == 0),
                    |a, b| a + b,
                )
            });
            assert_eq!(evens, items.iter().filter(|&&x| x % 2 == 0).count());
        },
    );
}

#[test]
fn par_map_reduce_is_partition_invariant_even_when_not_associative() {
    // For a *fixed* chunk_len the result must not depend on the pool
    // size, even for float folds where regrouping would change bits.
    check_with(
        "par_map_reduce_is_partition_invariant_even_when_not_associative",
        Config::cases(32),
        |d| {
            let items = d.vec("items", 0usize..120, |d| d.draw("x", -1.0f64..1.0));
            let chunk_len = d.draw("chunk_len", 1usize..32);
            let sum = |threads: usize| {
                Pool::new(threads).install(|| {
                    par_map_reduce(&items, chunk_len, 0.0f64, |a, &x| a + x, |a, b| a + b)
                })
            };
            let reference = sum(1);
            for threads in [2, 5, 8] {
                assert_eq!(
                    sum(threads).to_bits(),
                    reference.to_bits(),
                    "float sum changed bits between 1 and {threads} threads"
                );
            }
        },
    );
}

#[test]
fn par_map_agrees_with_serial_map_at_any_pool_size() {
    check_with(
        "par_map_agrees_with_serial_map_at_any_pool_size",
        Config::cases(32),
        |d| {
            let items = d.vec("items", 0usize..100, |d| d.draw("x", 0u32..1 << 20));
            let threads = d.pick("threads", &[1usize, 2, 6]);
            let serial: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3 + 1).collect();
            let got = Pool::new(threads).install(|| par_map(&items, |&x| u64::from(x) * 3 + 1));
            assert_eq!(got, serial);
        },
    );
}

#[test]
fn par_chunks_mut_equals_serial_chunked_update() {
    check_with(
        "par_chunks_mut_equals_serial_chunked_update",
        Config::cases(32),
        |d| {
            let mut data = d.vec("data", 0usize..150, |d| d.draw("x", 0u64..1 << 30));
            let chunk_len = d.draw("chunk_len", 1usize..50);
            let threads = d.pick("threads", &[1usize, 4]);
            let mut expected = data.clone();
            for (i, chunk) in expected.chunks_mut(chunk_len).enumerate() {
                for x in chunk.iter_mut() {
                    *x = x.wrapping_mul(31).wrapping_add(i as u64);
                }
            }
            Pool::new(threads).install(|| {
                par_chunks_mut(&mut data, chunk_len, |i, chunk| {
                    for x in chunk.iter_mut() {
                        *x = x.wrapping_mul(31).wrapping_add(i as u64);
                    }
                });
            });
            assert_eq!(data, expected);
        },
    );
}
