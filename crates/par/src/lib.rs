//! Dependency-free, deterministic parallel runtime for the GoPIM
//! reproduction.
//!
//! Every hot path in the workspace — dense matmul, sparse Â·X
//! aggregation, the per-configuration DES sweeps — fans out through
//! the primitives here. Two rules make that safe for a simulator
//! whose tests pin bit-exact outputs:
//!
//! 1. **Fixed work partitioning.** What gets computed, and in which
//!    units, never depends on the thread count. Chunk boundaries come
//!    from the caller (or from the input size alone); threads only
//!    decide *who* computes a unit, never *what* a unit is.
//! 2. **Ordered reduction.** Whenever partial results are combined,
//!    they are combined serially in index order. Floating-point
//!    addition is not associative, so an unordered reduction would
//!    make the answer a function of scheduling.
//!
//! Together these guarantee: any kernel built on this module returns
//! bit-identical results at `GOPIM_THREADS=1` and `GOPIM_THREADS=64`
//! (`tests/determinism.rs` pins this for matmul, propagation and the
//! DES sweeps).
//!
//! The global pool is created lazily on first use, sized by the
//! `GOPIM_THREADS` environment variable (default: available
//! parallelism). Tests compare thread counts in-process by running
//! the same kernel under [`Pool::install`] with differently-sized
//! pools.

#![warn(missing_docs)]

pub mod pool;

pub use pool::{current, env_threads, Pool};

/// Parallelism of the pool the primitives would dispatch to right now.
pub fn num_threads() -> usize {
    current().threads()
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
pub fn par_join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    // Spans open before the serial fast-path branch and carry only
    // input-shape args, so the traced event set is identical at every
    // thread count (pinned by tests/trace_determinism.rs).
    let _span = gopim_obs::span!("par.join");
    let pool = current();
    if pool.threads() <= 1 {
        return (a(), b());
    }
    let mut ra = None;
    let mut rb = None;
    {
        let slot_a = &mut ra;
        let slot_b = &mut rb;
        pool.scope(vec![
            Box::new(move || *slot_a = Some(a())),
            Box::new(move || *slot_b = Some(b())),
        ]);
    }
    // lint:allow(no-panic-in-lib): scope returns only after both tasks ran, so both slots are filled
    (ra.unwrap(), rb.unwrap())
}

/// Applies `f` to consecutive `chunk_len`-sized mutable chunks of
/// `data` in parallel. `f` receives the chunk index and the chunk;
/// chunk boundaries depend only on `chunk_len` and `data.len()`, so a
/// per-chunk-pure `f` yields thread-count-independent results.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "chunk_len must be positive");
    let elems = data.len();
    // Shape-only args: callers often derive `chunk_len` from the pool
    // width, which would break trace thread-count invariance.
    let _span = gopim_obs::span!("par.chunks_mut", elems);
    let pool = current();
    if pool.threads() <= 1 || data.len() <= chunk_len {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(i, chunk)| Box::new(move || f(i, chunk)) as Box<dyn FnOnce() + Send + '_>)
        .collect();
    pool.scope(tasks);
}

/// Runs `f` over `0..count` split into contiguous index ranges, in
/// parallel. The range boundaries scale with the pool size, which is
/// safe exactly when `f` is independent per index (each index's
/// result must not depend on which range it landed in) — the
/// row-partitioned kernels' contract.
pub fn par_index_ranges(count: usize, f: impl Fn(std::ops::Range<usize>) + Sync) {
    let _span = gopim_obs::span!("par.index_ranges", count);
    let pool = current();
    let threads = pool.threads();
    if threads <= 1 || count <= 1 {
        f(0..count);
        return;
    }
    // Oversubscribe modestly so uneven ranges (e.g. skewed CSR rows)
    // still load-balance.
    let chunk = count.div_ceil(threads * 4).max(1);
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..count)
        .step_by(chunk)
        .map(|start| {
            let end = (start + chunk).min(count);
            Box::new(move || f(start..end)) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool.scope(tasks);
}

/// Maps `f` over `items` in parallel, preserving order. Each item is
/// mapped independently, so the output is identical at any thread
/// count — this is the fan-out primitive for the independent
/// configuration/replica sweeps behind the figure harness.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let _span = gopim_obs::span!("par.map", n);
    let pool = current();
    if pool.threads() <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    {
        let f = &f;
        // One task per item: sweep items are few and heavy, and a
        // FIFO keeps the long ones from serializing behind a block.
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
            .iter_mut()
            .zip(items)
            .map(|(slot, item)| {
                Box::new(move || *slot = Some(f(item))) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.scope(tasks);
    }
    out.into_iter()
        // lint:allow(no-panic-in-lib): scope returns only after every task ran, so every slot is filled
        .map(|slot| slot.expect("scope ran every task"))
        .collect()
}

/// Deterministic parallel map-reduce: folds `items` in fixed
/// `chunk_len`-sized chunks (each chunk folded serially, in order,
/// from a clone of `identity`), then reduces the per-chunk
/// accumulators serially in chunk order.
///
/// The partitioning is fixed by `chunk_len` alone, so for any `fold`
/// / `reduce` pair the result is bit-identical at every thread count.
/// When `reduce` is associative with `fold` (e.g. integer sums, max,
/// set union), the result also equals the plain serial fold — the
/// property `gopim-par`'s test suite pins for arbitrary `chunk_len`.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn par_map_reduce<T, A>(
    items: &[T],
    chunk_len: usize,
    identity: A,
    fold: impl Fn(A, &T) -> A + Sync,
    reduce: impl Fn(A, A) -> A,
) -> A
where
    T: Sync,
    A: Send + Clone,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let items_len = items.len();
    // Shape-only args (see par_chunks_mut): `chunk_len` may be derived
    // from the pool width by callers.
    let _span = gopim_obs::span!("par.map_reduce", items_len);
    let pool = current();
    let accs: Vec<A> = if pool.threads() <= 1 || items.len() <= chunk_len {
        items
            .chunks(chunk_len)
            .map(|chunk| chunk.iter().fold(identity.clone(), &fold))
            .collect()
    } else {
        let n_chunks = items.len().div_ceil(chunk_len);
        let mut out: Vec<Option<A>> = (0..n_chunks).map(|_| None).collect();
        {
            let fold = &fold;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
                .iter_mut()
                .zip(items.chunks(chunk_len))
                .map(|(slot, chunk)| {
                    // Each task folds from its own clone of the
                    // identity, made here so `A` need not be `Sync`.
                    let seed = identity.clone();
                    Box::new(move || *slot = Some(chunk.iter().fold(seed, fold)))
                        as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.scope(tasks);
        }
        out.into_iter()
            // lint:allow(no-panic-in-lib): scope returns only after every task ran, so every slot is filled
            .map(|slot| slot.expect("scope ran every task"))
            .collect()
    };
    // Ordered reduction: strictly left-to-right in chunk order.
    accs.into_iter().fold(identity, |acc, a| reduce(acc, a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_join_returns_both() {
        let (a, b) = par_join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 4] {
            let out = Pool::new(threads).install(|| par_map(&items, |&x| x * x));
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunks_mut_covers_every_element() {
        let mut data = vec![0u32; 103];
        Pool::new(4).install(|| {
            par_chunks_mut(&mut data, 10, |i, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = (i * 10 + j) as u32;
                }
            });
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn par_index_ranges_covers_exactly_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let hits: Vec<AtomicU32> = (0..57).map(|_| AtomicU32::new(0)).collect();
        Pool::new(3).install(|| {
            par_index_ranges(hits.len(), |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_map_reduce_matches_serial_sum() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: u64 = items.iter().sum();
        for chunk_len in [1, 3, 64, 1000, 5000] {
            for threads in [1, 4] {
                let got = Pool::new(threads).install(|| {
                    par_map_reduce(&items, chunk_len, 0u64, |acc, &x| acc + x, |a, b| a + b)
                });
                assert_eq!(got, serial, "chunk_len={chunk_len} threads={threads}");
            }
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: [u64; 0] = [];
        assert_eq!(par_map(&empty, |&x| x), Vec::<u64>::new());
        assert_eq!(
            par_map_reduce(&empty, 8, 7u64, |acc, &x| acc + x, |a, b| a + b),
            7
        );
        par_index_ranges(0, |r| assert!(r.is_empty()));
    }
}
