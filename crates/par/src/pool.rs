//! The work-sharing executor behind the `par_*` primitives.
//!
//! A [`Pool`] owns `threads − 1` detached worker threads plus the
//! calling thread, all draining one shared FIFO of jobs. Work enters
//! only through [`Pool::scope`], which blocks until every submitted
//! task has finished — that barrier is what makes the lifetime
//! erasure of borrowed closures sound, and it means a pool never
//! holds work for a caller that has already returned.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
// lint:allow(no-nondeterministic-time): pool busy/idle telemetry below is metrics-gated wall-clock only
use std::time::Instant;

use gopim_obs::metrics::{LazyCounter, LazyGauge};
use gopim_obs::{DepCondvar, DepMutex};

// Pool-internal telemetry is metrics-only (no spans): task placement
// and queue dynamics are inherently thread-count-dependent, and the
// trace contract is that the span set does not vary with GOPIM_THREADS.
static SCOPE_TASKS: LazyCounter = LazyCounter::new("par.scope.tasks");
static SCOPES: LazyCounter = LazyCounter::new("par.scope.calls");
static QUEUE_HIWATER: LazyGauge = LazyGauge::new("par.queue_depth.hiwater");
static WORKER_BUSY_NS: LazyCounter = LazyCounter::new("par.worker.busy_ns");
static WORKER_IDLE_NS: LazyCounter = LazyCounter::new("par.worker.idle_ns");

/// A type-erased unit of work. Jobs are `'static` only after the
/// lifetime erasure in [`Pool::scope`]; the scope barrier restores the
/// borrow discipline the type system can no longer see.
type Job = Box<dyn FnOnce() + Send>;

// Every lock in this module sits on `gopim_obs::DepMutex`, which
// recovers from poisoning (state here stays structurally valid
// mid-update, and `scope` already forwards the first task panic) and
// feeds the `GOPIM_LOCKDEP=1` order witness.
struct Shared {
    queue: DepMutex<VecDeque<Job>>,
    work_ready: DepCondvar,
    shutdown: AtomicBool,
}

struct Inner {
    shared: Arc<Shared>,
    threads: usize,
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_ready.notify_all();
    }
}

/// A fixed-size thread pool executing scoped, borrow-friendly tasks.
///
/// `threads` counts the calling thread: `Pool::new(1)` spawns no
/// workers and runs everything inline, which is also the serial
/// reference the determinism tests compare against.
#[derive(Clone)]
pub struct Pool {
    inner: Arc<Inner>,
}

/// Tracks one scope's outstanding tasks and its first panic.
struct ScopeState {
    remaining: DepMutex<usize>,
    all_done: DepCondvar,
    panic: DepMutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Pool {
    /// Creates a pool with `threads` total execution contexts
    /// (`threads − 1` spawned workers; 0 or 1 means fully inline).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: DepMutex::new("par::queue", VecDeque::new()),
            work_ready: DepCondvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut contexts = 1;
        for i in 1..threads {
            let worker_shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("gopim-par-{i}"))
                .spawn(move || worker(worker_shared))
            {
                Ok(_) => contexts += 1,
                // Resource exhaustion: degrade to however many workers
                // exist. The calling thread always participates, so a
                // pool with zero workers still completes every scope —
                // just serially.
                Err(_) => break,
            }
        }
        Pool {
            inner: Arc::new(Inner {
                shared,
                threads: contexts,
            }),
        }
    }

    /// Total execution contexts (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Runs every task to completion, using the pool's workers plus
    /// the calling thread, and returns only once all have finished.
    /// Tasks may borrow from the caller's stack. If any task panics,
    /// the scope still waits for the rest, then resumes the first
    /// panic on the caller.
    pub fn scope<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        SCOPES.add(1);
        SCOPE_TASKS.add(tasks.len() as u64);
        if self.inner.threads <= 1 || tasks.len() <= 1 {
            for task in tasks {
                task();
            }
            return;
        }
        let state = Arc::new(ScopeState {
            remaining: DepMutex::new("par::remaining", tasks.len()),
            all_done: DepCondvar::new(),
            panic: DepMutex::new("par::panic", None),
        });
        {
            let mut queue = self.inner.shared.queue.lock();
            for task in tasks {
                let state = Arc::clone(&state);
                let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                        let mut slot = state.panic.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                    let mut remaining = state.remaining.lock();
                    *remaining -= 1;
                    if *remaining == 0 {
                        state.all_done.notify_all();
                    }
                });
                // SAFETY: the job only differs from `Job` in its
                // borrow lifetime. This function does not return until
                // `remaining == 0`, i.e. until every job has run to
                // completion, so no borrow outlives its referent.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
                queue.push_back(job);
            }
            QUEUE_HIWATER.record_max(queue.len() as u64);
            self.inner.shared.work_ready.notify_all();
        }
        // The caller participates: drain jobs (possibly from sibling
        // scopes — work conservation) until this scope's tasks are
        // done and the queue offers nothing else to help with.
        loop {
            let job = self.inner.shared.queue.lock().pop_front();
            match job {
                Some(job) => job(),
                None => {
                    let mut remaining = state.remaining.lock();
                    while *remaining != 0 {
                        remaining = state.all_done.wait(remaining);
                    }
                    break;
                }
            }
        }
        let payload = state.panic.lock().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Makes this pool the one the `par_*` free functions use on the
    /// current thread for the duration of `f` (nested installs stack).
    /// This is how tests compare thread counts in-process: run the
    /// same kernel under `Pool::new(1)` and `Pool::new(8)` installs
    /// and assert bit equality.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        OVERRIDE.with(|stack| stack.borrow_mut().push(self.clone()));
        let _guard = InstallGuard;
        f()
    }
}

fn worker(shared: Arc<Shared>) {
    loop {
        // Clock reads happen only when metrics collection is on; the
        // default path stays free of Instant syscalls.
        // lint:allow(no-nondeterministic-time): metrics-gated wall-clock telemetry, never feeds simulation state
        let idle_from = gopim_obs::metrics_enabled().then(Instant::now);
        let job = {
            let mut queue = shared.queue.lock();
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.work_ready.wait(queue);
            }
        };
        if let Some(t) = idle_from {
            WORKER_IDLE_NS.add(t.elapsed().as_nanos() as u64);
        }
        match job {
            Some(job) => {
                // lint:allow(no-nondeterministic-time): metrics-gated wall-clock telemetry, never feeds simulation state
                let busy_from = gopim_obs::metrics_enabled().then(Instant::now);
                job();
                if let Some(t) = busy_from {
                    WORKER_BUSY_NS.add(t.elapsed().as_nanos() as u64);
                }
            }
            None => return,
        }
    }
}

thread_local! {
    static OVERRIDE: RefCell<Vec<Pool>> = const { RefCell::new(Vec::new()) };
}

struct InstallGuard;

impl Drop for InstallGuard {
    fn drop(&mut self) {
        OVERRIDE.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// Pool size from the environment: `GOPIM_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn env_threads() -> usize {
    match std::env::var("GOPIM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => available(),
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The pool the `par_*` primitives dispatch to: the innermost
/// [`Pool::install`] on this thread, else the lazily-created global
/// pool (sized by [`env_threads`] on first use).
pub fn current() -> Pool {
    if let Some(pool) = OVERRIDE.with(|stack| stack.borrow().last().cloned()) {
        return pool;
    }
    GLOBAL
        .get_or_init(|| {
            let n = env_threads();
            // One-time fact for the run manifest (no-op unless
            // GOPIM_MANIFEST is set).
            gopim_obs::manifest::record_u64("par.threads", n as u64);
            Pool::new(n)
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scope_runs_every_task_exactly_once() {
        let pool = Pool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..64)
            .map(|_| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.scope(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_tasks_may_borrow_the_stack() {
        let pool = Pool::new(3);
        let mut slots = vec![0u64; 8];
        let tasks: Vec<Box<dyn FnOnce() + Send>> = slots
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move || {
                    *slot = i as u64 * 10;
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool.scope(tasks);
        assert_eq!(slots, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(vec![
                Box::new(|| panic!("task boom")) as Box<dyn FnOnce() + Send>,
                Box::new(|| {}) as Box<dyn FnOnce() + Send>,
            ]);
        }));
        assert!(result.is_err());
        // The pool stays usable after a propagated panic.
        let ok = AtomicUsize::new(0);
        pool.scope(vec![Box::new(|| {
            ok.fetch_add(1, Ordering::Relaxed);
        }) as Box<dyn FnOnce() + Send>]);
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn install_overrides_the_current_pool() {
        let one = Pool::new(1);
        let four = Pool::new(4);
        assert_eq!(one.install(|| current().threads()), 1);
        assert_eq!(four.install(|| current().threads()), 4);
        // Installs nest innermost-wins.
        let nested = four.install(|| one.install(|| current().threads()));
        assert_eq!(nested, 1);
    }
}
