//! Multi-tenant job serving for the GoPIM reproduction.
//!
//! A reproduction sweep is traditionally a batch affair: one process,
//! one figure, results on stdout. This crate turns the same entry
//! points into a **persistent service**: a TCP server accepting
//! simulation, allocation and prediction jobs from many concurrent
//! clients, with the properties a shared instance needs —
//!
//! - a **versioned, checksummed wire protocol** ([`frame`], [`proto`])
//!   whose decoder is total: malformed bytes produce a clean per-
//!   connection error, never a panic and never the server's death;
//! - **admission control** ([`server`]): a bounded queue with explicit
//!   `Busy` backpressure instead of unbounded memory growth;
//! - **fair-share scheduling** ([`queue`]): start-time fair queuing
//!   ordered by the predictor's runtime estimates, so one client's
//!   burst cannot starve another's interactive request, and cheap jobs
//!   are not stuck behind expensive ones;
//! - **deadlines and cancellation**: a job whose deadline lapses in
//!   the queue is answered `Expired` without burning a worker; a
//!   client can cancel queued (slot freed immediately) or running
//!   (result discarded) jobs;
//! - **result reuse**: jobs carry canonical request hashes into the
//!   `gopim-cache` store, so a repeated request is served from cache —
//!   bitwise identical to fresh computation, per the differential
//!   harness in `tests/serve_differential.rs`.
//!
//! The crate is deliberately **policy, not physics**: it knows nothing
//! about GCNs or PIM. Job semantics enter through the [`JobHandler`]
//! trait, which `gopim-core` implements over its runner/experiments
//! entry points (`gopim serve` subcommand). That keeps the dependency
//! arrow core → serve and lets the robustness tests drive the server
//! with toy handlers.
//!
//! Determinism contract: serving changes *where* a result is computed,
//! never *what* it is. Job payloads and results travel as the same
//! codec bytes the in-process APIs produce, and the cache key is the
//! same canonical hash — so a socket round-trip is byte-identical to a
//! local call.

pub mod client;
pub mod frame;
pub mod proto;
pub mod queue;
pub mod server;

pub use client::{Client, ClientError};
pub use frame::{decode_frame, encode_frame, DecodeStep, Frame, FrameError};
pub use proto::{Request, Response, ServerStats, PROTO_SCHEMA};
pub use queue::{FairQueue, Popped};
pub use server::{JobHandler, Server, ServerConfig};
