//! The message layer: typed requests and responses over [`crate::frame`].
//!
//! Bodies reuse the cache crate's length-prefixed byte codec
//! ([`gopim_cache::Encoder`]/[`Decoder`]) — the same total, panic-free
//! decode discipline the disk cache uses, so a malformed body is a
//! typed [`FrameError::Malformed`], never a crash. Job payloads and
//! job results are opaque byte strings at this layer; the server's
//! [`crate::server::JobHandler`] gives them meaning.

use gopim_cache::{Decoder, Encoder};

use crate::frame::{decode_frame, encode_frame, DecodeStep, Frame, FrameError};

/// Schema tag folded into every Hello exchange; bump when message
/// bodies change shape.
pub const PROTO_SCHEMA: u32 = 1;

// Request opcodes (client → server).
const OP_HELLO: u8 = 0x01;
const OP_SUBMIT: u8 = 0x02;
const OP_CANCEL: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_SHUTDOWN: u8 = 0x05;

// Response opcodes (server → client).
const OP_HELLO_ACK: u8 = 0x81;
const OP_ACCEPTED: u8 = 0x82;
const OP_BUSY: u8 = 0x83;
const OP_DONE: u8 = 0x84;
const OP_FAILED: u8 = 0x85;
const OP_CANCELLED: u8 = 0x86;
const OP_EXPIRED: u8 = 0x87;
const OP_STATS_REPLY: u8 = 0x88;
const OP_SHUTTING_DOWN: u8 = 0x89;
const OP_PROTO_ERROR: u8 = 0x8a;

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Connection handshake; must be the first frame on a connection.
    Hello {
        /// Client-chosen display name (metrics/log labeling only).
        client_name: String,
        /// The client's [`PROTO_SCHEMA`].
        schema: u32,
    },
    /// Submit one job.
    Submit {
        /// Client-side correlation id, echoed in every reply about
        /// this job.
        client_job_id: u64,
        /// Milliseconds from admission until the job expires; 0 means
        /// no deadline.
        deadline_ms: u64,
        /// Opaque job payload (decoded by the server's job handler).
        payload: Vec<u8>,
    },
    /// Cancel a previously accepted job by its server-assigned id.
    Cancel {
        /// Server-assigned job id from `Accepted`.
        job_id: u64,
    },
    /// Request a point-in-time server statistics snapshot.
    Stats,
    /// Ask the server to drain accepted jobs and exit.
    Shutdown,
}

/// Point-in-time server statistics carried by [`Response::StatsReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Jobs currently queued (admission-relevant depth).
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs accepted since startup.
    pub submitted: u64,
    /// Jobs completed successfully (including cache-served).
    pub completed: u64,
    /// Jobs answered straight from the result cache.
    pub cache_served: u64,
    /// Submissions rejected with `Busy`.
    pub busy_rejections: u64,
    /// Jobs cancelled by clients.
    pub cancelled: u64,
    /// Jobs that missed their deadline.
    pub expired: u64,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Handshake acknowledgment.
    HelloAck {
        /// The server's [`PROTO_SCHEMA`].
        schema: u32,
        /// Server display name.
        server_name: String,
    },
    /// The job was admitted to the queue (or served from cache — a
    /// `Done` follows immediately in that case).
    Accepted {
        /// Echoed client correlation id.
        client_job_id: u64,
        /// Server-assigned job id (use for `Cancel`).
        job_id: u64,
    },
    /// Admission control rejected the submission; retry later.
    Busy {
        /// Echoed client correlation id.
        client_job_id: u64,
        /// Queue depth at rejection time.
        queue_depth: u64,
    },
    /// The job finished; `result` is the handler's encoded output.
    Done {
        /// Server-assigned job id.
        job_id: u64,
        /// Echoed client correlation id.
        client_job_id: u64,
        /// Whether the result came from the canonical-hash cache
        /// without executing.
        cache_served: bool,
        /// Handler-encoded result bytes.
        result: Vec<u8>,
    },
    /// The job's handler returned an error.
    Failed {
        /// Server-assigned job id (0 when the failure precedes
        /// admission, e.g. an unknown `Cancel` target).
        job_id: u64,
        /// Echoed client correlation id (0 when not job-scoped).
        client_job_id: u64,
        /// Human-readable reason.
        message: String,
    },
    /// The job was cancelled before a result was delivered.
    Cancelled {
        /// Server-assigned job id.
        job_id: u64,
        /// Echoed client correlation id.
        client_job_id: u64,
    },
    /// The job missed its deadline and was dropped.
    Expired {
        /// Server-assigned job id.
        job_id: u64,
        /// Echoed client correlation id.
        client_job_id: u64,
    },
    /// Statistics snapshot.
    StatsReply(ServerStats),
    /// The server is draining and accepts no further submissions.
    ShuttingDown,
    /// The peer sent a frame or body this server could not parse; the
    /// connection closes after this reply.
    ProtoError {
        /// Human-readable description of the decode failure.
        message: String,
    },
}

impl Request {
    /// Encodes this request into one wire frame.
    pub fn to_frame_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        let opcode = match self {
            Request::Hello {
                client_name,
                schema,
            } => {
                e.put_str(client_name);
                e.put_u32(*schema);
                OP_HELLO
            }
            Request::Submit {
                client_job_id,
                deadline_ms,
                payload,
            } => {
                e.put_u64(*client_job_id);
                e.put_u64(*deadline_ms);
                e.put_bytes(payload);
                OP_SUBMIT
            }
            Request::Cancel { job_id } => {
                e.put_u64(*job_id);
                OP_CANCEL
            }
            Request::Stats => OP_STATS,
            Request::Shutdown => OP_SHUTDOWN,
        };
        encode_frame(opcode, &e.into_bytes())
    }

    /// Decodes a request from a frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadOpcode`] for response/unknown opcodes,
    /// [`FrameError::Malformed`] when the body does not decode.
    pub fn from_frame(frame: &Frame) -> Result<Request, FrameError> {
        let mut d = Decoder::new(&frame.payload);
        let req = match frame.opcode {
            OP_HELLO => Request::Hello {
                client_name: d.take_str().ok_or(FrameError::Malformed("Hello"))?,
                schema: d.take_u32().ok_or(FrameError::Malformed("Hello"))?,
            },
            OP_SUBMIT => Request::Submit {
                client_job_id: d.take_u64().ok_or(FrameError::Malformed("Submit"))?,
                deadline_ms: d.take_u64().ok_or(FrameError::Malformed("Submit"))?,
                payload: d
                    .take_bytes()
                    .ok_or(FrameError::Malformed("Submit"))?
                    .to_vec(),
            },
            OP_CANCEL => Request::Cancel {
                job_id: d.take_u64().ok_or(FrameError::Malformed("Cancel"))?,
            },
            OP_STATS => Request::Stats,
            OP_SHUTDOWN => Request::Shutdown,
            op => return Err(FrameError::BadOpcode(op)),
        };
        if !d.is_exhausted() {
            return Err(FrameError::Malformed("request trailing bytes"));
        }
        Ok(req)
    }
}

impl ServerStats {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(self.queued);
        e.put_u64(self.running);
        e.put_u64(self.submitted);
        e.put_u64(self.completed);
        e.put_u64(self.cache_served);
        e.put_u64(self.busy_rejections);
        e.put_u64(self.cancelled);
        e.put_u64(self.expired);
    }

    fn decode(d: &mut Decoder<'_>) -> Option<ServerStats> {
        Some(ServerStats {
            queued: d.take_u64()?,
            running: d.take_u64()?,
            submitted: d.take_u64()?,
            completed: d.take_u64()?,
            cache_served: d.take_u64()?,
            busy_rejections: d.take_u64()?,
            cancelled: d.take_u64()?,
            expired: d.take_u64()?,
        })
    }
}

impl Response {
    /// Encodes this response into one wire frame.
    pub fn to_frame_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        let opcode = match self {
            Response::HelloAck {
                schema,
                server_name,
            } => {
                e.put_u32(*schema);
                e.put_str(server_name);
                OP_HELLO_ACK
            }
            Response::Accepted {
                client_job_id,
                job_id,
            } => {
                e.put_u64(*client_job_id);
                e.put_u64(*job_id);
                OP_ACCEPTED
            }
            Response::Busy {
                client_job_id,
                queue_depth,
            } => {
                e.put_u64(*client_job_id);
                e.put_u64(*queue_depth);
                OP_BUSY
            }
            Response::Done {
                job_id,
                client_job_id,
                cache_served,
                result,
            } => {
                e.put_u64(*job_id);
                e.put_u64(*client_job_id);
                e.put_bool(*cache_served);
                e.put_bytes(result);
                OP_DONE
            }
            Response::Failed {
                job_id,
                client_job_id,
                message,
            } => {
                e.put_u64(*job_id);
                e.put_u64(*client_job_id);
                e.put_str(message);
                OP_FAILED
            }
            Response::Cancelled {
                job_id,
                client_job_id,
            } => {
                e.put_u64(*job_id);
                e.put_u64(*client_job_id);
                OP_CANCELLED
            }
            Response::Expired {
                job_id,
                client_job_id,
            } => {
                e.put_u64(*job_id);
                e.put_u64(*client_job_id);
                OP_EXPIRED
            }
            Response::StatsReply(stats) => {
                stats.encode(&mut e);
                OP_STATS_REPLY
            }
            Response::ShuttingDown => OP_SHUTTING_DOWN,
            Response::ProtoError { message } => {
                e.put_str(message);
                OP_PROTO_ERROR
            }
        };
        encode_frame(opcode, &e.into_bytes())
    }

    /// Decodes a response from a frame.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadOpcode`] for request/unknown opcodes,
    /// [`FrameError::Malformed`] when the body does not decode.
    pub fn from_frame(frame: &Frame) -> Result<Response, FrameError> {
        let mut d = Decoder::new(&frame.payload);
        let resp = match frame.opcode {
            OP_HELLO_ACK => Response::HelloAck {
                schema: d.take_u32().ok_or(FrameError::Malformed("HelloAck"))?,
                server_name: d.take_str().ok_or(FrameError::Malformed("HelloAck"))?,
            },
            OP_ACCEPTED => Response::Accepted {
                client_job_id: d.take_u64().ok_or(FrameError::Malformed("Accepted"))?,
                job_id: d.take_u64().ok_or(FrameError::Malformed("Accepted"))?,
            },
            OP_BUSY => Response::Busy {
                client_job_id: d.take_u64().ok_or(FrameError::Malformed("Busy"))?,
                queue_depth: d.take_u64().ok_or(FrameError::Malformed("Busy"))?,
            },
            OP_DONE => Response::Done {
                job_id: d.take_u64().ok_or(FrameError::Malformed("Done"))?,
                client_job_id: d.take_u64().ok_or(FrameError::Malformed("Done"))?,
                cache_served: d.take_bool().ok_or(FrameError::Malformed("Done"))?,
                result: d
                    .take_bytes()
                    .ok_or(FrameError::Malformed("Done"))?
                    .to_vec(),
            },
            OP_FAILED => Response::Failed {
                job_id: d.take_u64().ok_or(FrameError::Malformed("Failed"))?,
                client_job_id: d.take_u64().ok_or(FrameError::Malformed("Failed"))?,
                message: d.take_str().ok_or(FrameError::Malformed("Failed"))?,
            },
            OP_CANCELLED => Response::Cancelled {
                job_id: d.take_u64().ok_or(FrameError::Malformed("Cancelled"))?,
                client_job_id: d.take_u64().ok_or(FrameError::Malformed("Cancelled"))?,
            },
            OP_EXPIRED => Response::Expired {
                job_id: d.take_u64().ok_or(FrameError::Malformed("Expired"))?,
                client_job_id: d.take_u64().ok_or(FrameError::Malformed("Expired"))?,
            },
            OP_STATS_REPLY => Response::StatsReply(
                ServerStats::decode(&mut d).ok_or(FrameError::Malformed("StatsReply"))?,
            ),
            OP_SHUTTING_DOWN => Response::ShuttingDown,
            OP_PROTO_ERROR => Response::ProtoError {
                message: d.take_str().ok_or(FrameError::Malformed("ProtoError"))?,
            },
            op => return Err(FrameError::BadOpcode(op)),
        };
        if !d.is_exhausted() {
            return Err(FrameError::Malformed("response trailing bytes"));
        }
        Ok(resp)
    }
}

/// Decodes the first complete frame of `buf` as a request (the
/// server-side read path in one call, shared with the fuzz suite).
///
/// # Errors
///
/// Propagates frame- and message-layer errors unchanged.
pub fn decode_request(buf: &[u8]) -> Result<Option<(Request, usize)>, FrameError> {
    match decode_frame(buf)? {
        DecodeStep::Incomplete { .. } => Ok(None),
        DecodeStep::Complete { frame, consumed } => {
            Ok(Some((Request::from_frame(&frame)?, consumed)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let bytes = req.to_frame_bytes();
        let (back, consumed) = decode_request(&bytes).unwrap().unwrap();
        assert_eq!(back, req);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello {
            client_name: "loadgen-3".into(),
            schema: PROTO_SCHEMA,
        });
        round_trip_request(Request::Submit {
            client_job_id: 42,
            deadline_ms: 1500,
            payload: vec![1, 2, 3, 255],
        });
        round_trip_request(Request::Cancel { job_id: 7 });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::HelloAck {
                schema: PROTO_SCHEMA,
                server_name: "gopim-serve".into(),
            },
            Response::Accepted {
                client_job_id: 1,
                job_id: 2,
            },
            Response::Busy {
                client_job_id: 1,
                queue_depth: 128,
            },
            Response::Done {
                job_id: 2,
                client_job_id: 1,
                cache_served: true,
                result: vec![9; 100],
            },
            Response::Failed {
                job_id: 2,
                client_job_id: 1,
                message: "no such dataset".into(),
            },
            Response::Cancelled {
                job_id: 2,
                client_job_id: 1,
            },
            Response::Expired {
                job_id: 2,
                client_job_id: 1,
            },
            Response::StatsReply(ServerStats {
                queued: 3,
                running: 2,
                submitted: 40,
                completed: 35,
                cache_served: 12,
                busy_rejections: 4,
                cancelled: 1,
                expired: 2,
            }),
            Response::ShuttingDown,
            Response::ProtoError {
                message: "checksum mismatch".into(),
            },
        ];
        for resp in cases {
            let bytes = resp.to_frame_bytes();
            match decode_frame(&bytes).unwrap() {
                DecodeStep::Complete { frame, .. } => {
                    assert_eq!(Response::from_frame(&frame).unwrap(), resp);
                }
                other => panic!("expected frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn opcode_layers_do_not_cross() {
        let req_frame = Request::Stats.to_frame_bytes();
        match decode_frame(&req_frame).unwrap() {
            DecodeStep::Complete { frame, .. } => {
                assert!(matches!(
                    Response::from_frame(&frame),
                    Err(FrameError::BadOpcode(_))
                ));
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut e = Encoder::new();
        e.put_u64(7);
        e.put_u8(99); // one byte too many for Cancel
        let frame = Frame {
            opcode: OP_CANCEL,
            payload: e.into_bytes(),
        };
        assert!(matches!(
            Request::from_frame(&frame),
            Err(FrameError::Malformed(_))
        ));
    }
}
