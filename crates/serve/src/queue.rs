//! Fair-share priority queue ordered by predicted runtime.
//!
//! Start-time fair queuing (the same predicted-priority shape
//! spark-sched applies to pod scheduling): each client accumulates a
//! *virtual finish time*; a submitted job is stamped
//! `vft = max(global_vt, client_vt) + predicted_cost` and the queue
//! always yields the smallest stamp. Two consequences the unit tests
//! pin:
//!
//! - **Fair share.** A client that bursts 100 jobs cannot starve a
//!   client that submits one: the burst's stamps stack up while the
//!   newcomer's first job starts at the global virtual clock and
//!   interleaves near the front.
//! - **Predicted-runtime ordering.** Within one client, cheap jobs
//!   predicted by the cost model finish their virtual interval sooner
//!   and run first (shortest-predicted-job-first within a share).
//!
//! Ties break on `(cost, seq)` — deterministic for a fixed submission
//! order. Cancellation is lazy: cancelled entries stay in the heap but
//! stop counting toward [`FairQueue::depth`] (the admission-relevant
//! number) and are skipped at pop, so cancelling a queued job frees
//! its queue slot immediately without an O(n) heap rebuild.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

struct Entry<T> {
    vft: f64,
    cost: f64,
    seq: u64,
    client: u64,
    job_id: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the smallest stamp
        // surfaces first. `total_cmp` keeps the order total even for
        // hostile cost inputs (NaN sorts deterministically).
        other
            .vft
            .total_cmp(&self.vft)
            .then_with(|| other.cost.total_cmp(&self.cost))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A popped queue entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Popped<T> {
    /// Submitting client.
    pub client: u64,
    /// Server-assigned job id.
    pub job_id: u64,
    /// The queued item.
    pub item: T,
}

/// The fair-share, predicted-runtime priority queue.
pub struct FairQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    /// Per-client virtual finish time of the last stamped job.
    client_vt: std::collections::BTreeMap<u64, f64>,
    /// Global virtual clock: advances to the start tag of each popped
    /// job, so idle clients re-enter at "now", not at zero.
    global_vt: f64,
    seq: u64,
    cancelled: BTreeSet<u64>,
    live: usize,
}

impl<T> Default for FairQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FairQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        FairQueue {
            heap: BinaryHeap::new(),
            client_vt: std::collections::BTreeMap::new(),
            global_vt: 0.0,
            seq: 0,
            cancelled: BTreeSet::new(),
            live: 0,
        }
    }

    /// Jobs that would run if workers were free — excludes entries
    /// already cancelled. This is the admission-control depth.
    pub fn depth(&self) -> usize {
        self.live
    }

    /// Stamps and enqueues one job for `client` with the cost model's
    /// `predicted_cost_ns`.
    pub fn push(&mut self, client: u64, job_id: u64, predicted_cost_ns: f64, item: T) {
        // Hostile or broken predictions (negative, NaN) are clamped so
        // one client cannot wind the virtual clock backwards.
        let cost = if predicted_cost_ns.is_finite() {
            predicted_cost_ns.max(1.0)
        } else {
            1.0
        };
        let vt = self
            .client_vt
            .get(&client)
            .copied()
            .unwrap_or(self.global_vt)
            .max(self.global_vt);
        let vft = vt + cost;
        self.client_vt.insert(client, vft);
        self.seq += 1;
        self.heap.push(Entry {
            vft,
            cost,
            seq: self.seq,
            client,
            job_id,
            item,
        });
        self.live += 1;
    }

    /// Marks a queued job cancelled; returns whether it was present
    /// and live. The slot is freed immediately ([`FairQueue::depth`]
    /// drops); the entry itself is skipped lazily at pop time.
    pub fn cancel(&mut self, job_id: u64) -> bool {
        let live =
            self.heap.iter().any(|e| e.job_id == job_id) && !self.cancelled.contains(&job_id);
        if live {
            self.cancelled.insert(job_id);
            self.live -= 1;
        }
        live
    }

    /// Pops the job with the smallest virtual finish stamp, skipping
    /// cancelled entries, and advances the global virtual clock to the
    /// popped job's start tag.
    pub fn pop(&mut self) -> Option<Popped<T>> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.job_id) {
                continue;
            }
            self.live -= 1;
            let start = entry.vft - entry.cost;
            if start > self.global_vt {
                self.global_vt = start;
            }
            return Some(Popped {
                client: entry.client,
                job_id: entry.job_id,
                item: entry.item,
            });
        }
        None
    }

    /// Drains every live entry in priority order (used on shutdown).
    pub fn drain(&mut self) -> Vec<Popped<T>> {
        let mut out = Vec::with_capacity(self.live);
        while let Some(p) = self.pop() {
            out.push(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop_order(q: &mut FairQueue<&'static str>) -> Vec<&'static str> {
        q.drain().into_iter().map(|p| p.item).collect()
    }

    #[test]
    fn burst_does_not_starve_newcomer() {
        let mut q = FairQueue::new();
        for i in 0..10 {
            q.push(1, i, 1000.0, "burst");
        }
        q.push(2, 100, 1000.0, "newcomer");
        let mut order = Vec::new();
        while let Some(p) = q.pop() {
            order.push(p.item);
        }
        // The newcomer's single job lands near the front (position 1:
        // one burst job has an equal stamp and an earlier seq).
        let pos = order.iter().position(|&s| s == "newcomer").unwrap();
        assert!(pos <= 1, "newcomer ran at position {pos} behind a burst");
    }

    #[test]
    fn equal_cost_clients_interleave() {
        let mut q = FairQueue::new();
        for i in 0..4 {
            q.push(1, i, 500.0, "a");
        }
        for i in 4..8 {
            q.push(2, i, 500.0, "b");
        }
        let order = pop_order(&mut q);
        // Perfect alternation after the first pair: never two "a"s in
        // a row beyond adjacent equal stamps. Check the interleave by
        // prefix counts: after any prefix of length 2k, each client
        // ran exactly k jobs.
        for k in 1..=4 {
            let prefix = &order[..2 * k];
            let a = prefix.iter().filter(|&&s| s == "a").count();
            assert_eq!(a, k, "prefix {prefix:?} unfair");
        }
    }

    #[test]
    fn cheap_jobs_run_before_expensive_for_one_client() {
        let mut q = FairQueue::new();
        q.push(1, 0, 1_000_000.0, "big");
        q.push(2, 1, 10.0, "small");
        assert_eq!(q.pop().unwrap().item, "small");
        assert_eq!(q.pop().unwrap().item, "big");
    }

    #[test]
    fn fifo_within_client_for_equal_costs() {
        let mut q = FairQueue::new();
        q.push(1, 0, 100.0, "first");
        q.push(1, 1, 100.0, "second");
        q.push(1, 2, 100.0, "third");
        assert_eq!(pop_order(&mut q), vec!["first", "second", "third"]);
    }

    #[test]
    fn cancel_frees_the_slot_and_skips_the_entry() {
        let mut q = FairQueue::new();
        q.push(1, 10, 100.0, "keep-a");
        q.push(1, 11, 100.0, "drop");
        q.push(1, 12, 100.0, "keep-b");
        assert_eq!(q.depth(), 3);
        assert!(q.cancel(11));
        assert_eq!(q.depth(), 2, "cancel frees the admission slot");
        assert!(!q.cancel(11), "double cancel is a no-op");
        assert!(!q.cancel(999), "unknown job is a no-op");
        assert_eq!(pop_order(&mut q), vec!["keep-a", "keep-b"]);
    }

    #[test]
    fn idle_client_reenters_at_the_global_clock() {
        let mut q = FairQueue::new();
        for i in 0..8 {
            q.push(1, i, 100.0, "old");
        }
        // Drain most of the backlog, advancing the global clock.
        for _ in 0..7 {
            q.pop();
        }
        // A client that was idle the whole time starts at "now" —
        // its stamp competes with the backlog's tail, not behind it.
        q.push(2, 100, 100.0, "fresh");
        let next_two: Vec<_> = (0..2).filter_map(|_| q.pop()).map(|p| p.item).collect();
        assert!(next_two.contains(&"fresh"), "fresh job stuck: {next_two:?}");
    }

    #[test]
    fn hostile_costs_cannot_wind_the_clock_backwards() {
        let mut q = FairQueue::new();
        q.push(1, 0, f64::NAN, "nan");
        q.push(1, 1, -5.0e9, "negative");
        q.push(2, 2, 100.0, "sane");
        // All three pop exactly once, no panic, no infinite loop.
        assert_eq!(q.drain().len(), 3);
    }
}
