//! A blocking client for the serve wire protocol.
//!
//! The protocol is asynchronous on the wire: a `Done` for an earlier
//! job may arrive between a `Submit` and its `Accepted`. The client
//! therefore exposes the honest primitive pair — [`Client::send`]
//! writes one request, [`Client::recv`] reads the next response,
//! whatever it is — plus small conveniences ([`Client::connect`]
//! performs the `Hello` handshake, [`Client::recv_matching`] skips
//! interleaved traffic) that loadgen, the differential harness and the
//! robustness tests build on.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::frame::{decode_frame, DecodeStep, FrameError};
use crate::proto::{Request, Response, PROTO_SCHEMA};

/// Every way a client call can fail.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server sent bytes that do not parse as a response frame.
    Frame(FrameError),
    /// The server closed the connection mid-stream.
    Disconnected,
    /// The handshake failed: the server replied something other than
    /// `HelloAck` (its message is carried verbatim).
    Handshake(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Handshake(msg) => write!(f, "handshake rejected: {msg}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// One connection to a job server.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to `addr` and performs the `Hello` handshake.
    ///
    /// # Errors
    ///
    /// [`ClientError::Handshake`] when the server rejects the schema;
    /// I/O and frame errors propagate.
    pub fn connect(addr: &str, client_name: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            stream,
            buf: Vec::new(),
        };
        client.send(&Request::Hello {
            client_name: client_name.to_string(),
            schema: PROTO_SCHEMA,
        })?;
        match client.recv()? {
            Response::HelloAck { .. } => Ok(client),
            Response::ProtoError { message } => Err(ClientError::Handshake(message)),
            other => Err(ClientError::Handshake(format!(
                "unexpected handshake reply: {other:?}"
            ))),
        }
    }

    /// Sets a receive timeout for subsequent [`Client::recv`] calls
    /// (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Writes one request frame.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        self.stream.write_all(&req.to_frame_bytes())?;
        self.stream.flush()?;
        Ok(())
    }

    /// Reads the next response, whichever job it belongs to.
    ///
    /// # Errors
    ///
    /// [`ClientError::Disconnected`] on EOF; I/O and frame errors
    /// propagate.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut tmp = [0u8; 16 * 1024];
        loop {
            match decode_frame(&self.buf)? {
                DecodeStep::Complete { frame, consumed } => {
                    self.buf.drain(..consumed);
                    return Ok(Response::from_frame(&frame)?);
                }
                DecodeStep::Incomplete { .. } => {
                    let n = self.stream.read(&mut tmp)?;
                    if n == 0 {
                        return Err(ClientError::Disconnected);
                    }
                    self.buf.extend_from_slice(&tmp[..n]);
                }
            }
        }
    }

    /// Reads responses until `pred` accepts one, returning it.
    /// Interleaved responses for other jobs are handed to `spill` in
    /// arrival order so the caller never loses them.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::recv`] failures.
    pub fn recv_matching(
        &mut self,
        mut pred: impl FnMut(&Response) -> bool,
        mut spill: impl FnMut(Response),
    ) -> Result<Response, ClientError> {
        loop {
            let resp = self.recv()?;
            if pred(&resp) {
                return Ok(resp);
            }
            spill(resp);
        }
    }

    /// Submits one job and blocks until its terminal response (`Done`,
    /// `Failed`, `Cancelled`, `Expired`) or an admission refusal
    /// (`Busy`, `ShuttingDown`). Interleaved responses for other jobs
    /// go to `spill`. The simple path for sequential callers.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`] / [`Client::recv`] failures.
    pub fn submit_blocking(
        &mut self,
        client_job_id: u64,
        deadline_ms: u64,
        payload: Vec<u8>,
        mut spill: impl FnMut(Response),
    ) -> Result<Response, ClientError> {
        self.send(&Request::Submit {
            client_job_id,
            deadline_ms,
            payload,
        })?;
        let mine = |r: &Response| match r {
            Response::Accepted {
                client_job_id: c, ..
            }
            | Response::Busy {
                client_job_id: c, ..
            }
            | Response::Done {
                client_job_id: c, ..
            }
            | Response::Failed {
                client_job_id: c, ..
            }
            | Response::Cancelled {
                client_job_id: c, ..
            }
            | Response::Expired {
                client_job_id: c, ..
            } => *c == client_job_id,
            Response::ShuttingDown | Response::ProtoError { .. } => true,
            _ => false,
        };
        loop {
            let resp = self.recv_matching(mine, &mut spill)?;
            match resp {
                // Acceptance is an interim reply; keep waiting for the
                // terminal one.
                Response::Accepted { .. } => continue,
                other => return Ok(other),
            }
        }
    }

    /// Requests server statistics, spilling interleaved job traffic.
    ///
    /// # Errors
    ///
    /// Propagates send/recv failures.
    pub fn stats(
        &mut self,
        mut spill: impl FnMut(Response),
    ) -> Result<crate::proto::ServerStats, ClientError> {
        self.send(&Request::Stats)?;
        match self.recv_matching(|r| matches!(r, Response::StatsReply(_)), &mut spill)? {
            Response::StatsReply(s) => Ok(s),
            // recv_matching only returns on the predicate.
            _ => Err(ClientError::Disconnected),
        }
    }

    /// Asks the server to shut down and waits for acknowledgement.
    ///
    /// # Errors
    ///
    /// Propagates send/recv failures.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        let _ = self.recv_matching(|r| matches!(r, Response::ShuttingDown), |_| {})?;
        Ok(())
    }
}
