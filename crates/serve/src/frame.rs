//! The length-prefixed, checksummed wire frame.
//!
//! Every message on a serve connection travels inside one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"GPS1"
//! 4       2     wire version, little-endian (WIRE_VERSION)
//! 6       1     opcode (message discriminant, see proto.rs)
//! 7       1     flags (reserved, must be 0)
//! 8       4     payload length, little-endian (≤ MAX_PAYLOAD)
//! 12      n     payload bytes
//! 12+n    8     FNV-1a 64 checksum over bytes 4..12+n, little-endian
//! ```
//!
//! Decoding is **total**: any byte sequence either yields a frame, a
//! typed [`FrameError`], or an `Incomplete{needed}` request for more
//! bytes — never a panic, never an allocation proportional to a
//! length field that the checksum has not vouched for (the length cap
//! is enforced *before* the payload is read). The adversarial property
//! suite in `crates/serve/tests/codec_props.rs` pins this on random
//! valid frames, truncations, oversized lengths, duplicated magic and
//! garbage streams.

/// Frame magic: "GoPim Serve v1".
pub const MAGIC: [u8; 4] = *b"GPS1";

/// Wire protocol version carried in every frame.
pub const WIRE_VERSION: u16 = 1;

/// Hard cap on a frame payload (16 MiB). A length field beyond this is
/// rejected before any payload is read, so a hostile 4 GiB length
/// cannot drive allocation.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Bytes before the payload (magic + version + opcode + flags + len).
pub const HEADER_LEN: usize = 12;

/// Trailing checksum bytes.
pub const TRAILER_LEN: usize = 8;

/// One decoded frame: an opcode plus its payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message discriminant (interpreted by `proto.rs`).
    pub opcode: u8,
    /// Message body (interpreted by `proto.rs`).
    pub payload: Vec<u8>,
}

/// Every way a byte stream can fail to be a frame. Each variant maps
/// to a clean per-connection error; none of them can take the server
/// down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version field names a protocol we do not speak.
    BadVersion(u16),
    /// The flags byte is nonzero (reserved for future use).
    BadFlags(u8),
    /// The length field exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The trailing checksum does not match the frame contents.
    BadChecksum {
        /// Checksum the frame carried.
        found: u64,
        /// Checksum the bytes actually hash to.
        computed: u64,
    },
    /// The opcode is not a known message discriminant (raised by the
    /// message layer, shares the frame error namespace).
    BadOpcode(u8),
    /// The payload does not decode as the message its opcode names
    /// (raised by the message layer).
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(found) => write!(f, "bad frame magic {found:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            FrameError::BadFlags(b) => write!(f, "nonzero reserved flags {b:#04x}"),
            FrameError::Oversized(n) => {
                write!(f, "payload length {n} exceeds cap {MAX_PAYLOAD}")
            }
            FrameError::BadChecksum { found, computed } => {
                write!(
                    f,
                    "checksum mismatch: frame {found:#018x}, computed {computed:#018x}"
                )
            }
            FrameError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            FrameError::Malformed(what) => write!(f, "malformed {what} body"),
        }
    }
}

/// Outcome of [`decode_frame`] on a prefix of a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeStep {
    /// Not enough bytes yet; at least `needed` total bytes are
    /// required before decoding can progress past the current field.
    Incomplete {
        /// Minimum total buffer length needed for the next decision.
        needed: usize,
    },
    /// A full frame decoded, consuming `consumed` bytes.
    Complete {
        /// The decoded frame.
        frame: Frame,
        /// Bytes of the buffer the frame occupied.
        consumed: usize,
    },
}

/// FNV-1a 64 over a byte slice — the same construction the cache's
/// disk records use; cheap, dependency-free and adequate for
/// corruption (not adversary) detection.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes one frame: header, payload, trailing checksum.
///
/// Oversized payloads are truncation-proofed at the type level by the
/// caller contract (`proto.rs` bodies are far below the cap); should a
/// caller ever exceed it, the peer rejects the frame with
/// [`FrameError::Oversized`] rather than misparsing.
pub fn encode_frame(opcode: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.push(opcode);
    out.push(0); // flags
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a(&out[4..]);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Decodes the first frame from `buf`.
///
/// Field checks run in stream order so garbage is rejected at the
/// earliest byte that proves it garbage: magic before version, version
/// before length, length cap before the payload is awaited, checksum
/// last. Total over all inputs: returns [`DecodeStep::Incomplete`]
/// when `buf` is a (possibly empty) prefix of some well-formed frame.
///
/// # Errors
///
/// Returns a typed [`FrameError`] for any prefix that can never extend
/// to a valid frame.
pub fn decode_frame(buf: &[u8]) -> Result<DecodeStep, FrameError> {
    // Magic: checked byte-by-byte so a wrong byte fails even before
    // four bytes arrive.
    for (i, &expect) in MAGIC.iter().enumerate() {
        match buf.get(i) {
            None => return Ok(DecodeStep::Incomplete { needed: HEADER_LEN }),
            Some(&got) if got != expect => {
                let mut found = [0u8; 4];
                for (slot, &b) in found.iter_mut().zip(buf.iter()) {
                    *slot = b;
                }
                return Err(FrameError::BadMagic(found));
            }
            Some(_) => {}
        }
    }
    if buf.len() < HEADER_LEN {
        return Ok(DecodeStep::Incomplete { needed: HEADER_LEN });
    }
    let version = le_u16(&buf[4..6]);
    if version != WIRE_VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let opcode = buf[6];
    let flags = buf[7];
    if flags != 0 {
        return Err(FrameError::BadFlags(flags));
    }
    let len = le_u32(&buf[8..12]);
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let total = HEADER_LEN + len as usize + TRAILER_LEN;
    if buf.len() < total {
        return Ok(DecodeStep::Incomplete { needed: total });
    }
    let body_end = HEADER_LEN + len as usize;
    let computed = fnv1a(&buf[4..body_end]);
    let found = le_u64(&buf[body_end..total]);
    if computed != found {
        return Err(FrameError::BadChecksum { found, computed });
    }
    Ok(DecodeStep::Complete {
        frame: Frame {
            opcode,
            payload: buf[HEADER_LEN..body_end].to_vec(),
        },
        consumed: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let bytes = encode_frame(0x42, b"hello");
        match decode_frame(&bytes).unwrap() {
            DecodeStep::Complete { frame, consumed } => {
                assert_eq!(frame.opcode, 0x42);
                assert_eq!(frame.payload, b"hello");
                assert_eq!(consumed, bytes.len());
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn empty_payload_round_trips() {
        let bytes = encode_frame(0, b"");
        assert!(matches!(
            decode_frame(&bytes),
            Ok(DecodeStep::Complete { consumed, .. }) if consumed == bytes.len()
        ));
    }

    #[test]
    fn every_prefix_is_incomplete() {
        let bytes = encode_frame(7, b"prefix-safety");
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    decode_frame(&bytes[..cut]),
                    Ok(DecodeStep::Incomplete { .. })
                ),
                "prefix of {cut} bytes must be incomplete, not an error"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let mut bytes = encode_frame(7, b"payload");
        bytes[HEADER_LEN] ^= 0x01;
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::BadChecksum { .. })
        ));
    }

    #[test]
    fn wrong_magic_rejected_early() {
        assert!(matches!(
            decode_frame(b"XPS1whatever"),
            Err(FrameError::BadMagic(_))
        ));
        // A wrong byte fails before the full header arrives.
        assert!(matches!(decode_frame(b"GX"), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn oversized_length_rejected_before_payload() {
        let mut bytes = encode_frame(7, b"x");
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes[..HEADER_LEN]),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_frame(7, b"x");
        bytes[4..6].copy_from_slice(&9999u16.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::BadVersion(9999))
        ));
    }

    #[test]
    fn magic_inside_payload_is_fine() {
        let payload = [&MAGIC[..], &MAGIC[..], b"tail"].concat();
        let bytes = encode_frame(1, &payload);
        match decode_frame(&bytes).unwrap() {
            DecodeStep::Complete { frame, .. } => assert_eq!(frame.payload, payload),
            other => panic!("expected frame, got {other:?}"),
        }
    }
}
