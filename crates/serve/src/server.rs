//! The multi-tenant job server: admission control, fair-share
//! scheduling, deadlines, cancellation, graceful drain.
//!
//! Thread model (all std, no async runtime):
//!
//! - one **accept** thread turning connections into reader/writer
//!   thread pairs;
//! - one **reader** per connection parsing frames (with a read
//!   timeout: a stalled mid-frame peer — a slow loris — is cut off
//!   without touching other connections);
//! - one **writer** per connection draining an mpsc channel of encoded
//!   response frames, so workers never block on a slow consumer's
//!   socket;
//! - `workers` **executor** threads popping the [`FairQueue`]. The
//!   executors only orchestrate: a job's actual simulation fans out on
//!   the process-wide `gopim-par` pool inside the handler, exactly as
//!   an in-process run would.
//!
//! Every admitted job is answered exactly once with `Done`, `Failed`,
//! `Cancelled` or `Expired`; shutdown drains the queue before the
//! workers exit, so acceptance is a delivery promise (modulo the
//! client hanging up first).

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gopim_cache::CacheKey;
use gopim_obs::metrics::{LazyCounter, LazyGauge, LazyHistogram};
use gopim_obs::{DepCondvar, DepMutex};

use crate::frame::{decode_frame, DecodeStep};
use crate::proto::{Request, Response, ServerStats, PROTO_SCHEMA};
use crate::queue::FairQueue;

static SUBMITTED: LazyCounter = LazyCounter::new("serve.jobs_submitted");
static COMPLETED: LazyCounter = LazyCounter::new("serve.jobs_completed");
static FAILED: LazyCounter = LazyCounter::new("serve.jobs_failed");
static CANCELLED: LazyCounter = LazyCounter::new("serve.jobs_cancelled");
static ABANDONED: LazyCounter = LazyCounter::new("serve.jobs_abandoned");
static EXPIRED: LazyCounter = LazyCounter::new("serve.jobs_expired");
static BUSY: LazyCounter = LazyCounter::new("serve.busy_rejections");
static CACHE_SERVED: LazyCounter = LazyCounter::new("serve.cache_served");
static BAD_FRAMES: LazyCounter = LazyCounter::new("serve.frames_rejected");
static CONNECTIONS: LazyCounter = LazyCounter::new("serve.connections");
static QUEUE_DEPTH: LazyGauge = LazyGauge::new("serve.queue_depth");
static INFLIGHT: LazyGauge = LazyGauge::new("serve.inflight");
static WAIT_NS: LazyHistogram = LazyHistogram::new("serve.wait_ns");
static EXEC_NS: LazyHistogram = LazyHistogram::new("serve.exec_ns");
static LATENCY_NS: LazyHistogram = LazyHistogram::new("serve.latency_ns");

/// Executes jobs and prices them for the scheduler. Implemented by
/// `gopim::jobs` over the runner/experiments entry points; tests plug
/// in toy handlers.
pub trait JobHandler: Send + Sync + 'static {
    /// Predicted host runtime of this job in nanoseconds — the cost
    /// model feeding fair-share ordering (`gopim-predictor`'s runtime
    /// estimates in production). Must be cheap: it runs at admission.
    fn predicted_cost_ns(&self, payload: &[u8]) -> f64;

    /// Canonical request hash for result reuse; `None` marks the job
    /// uncacheable (it always executes).
    fn cache_key(&self, _payload: &[u8]) -> Option<CacheKey> {
        None
    }

    /// Runs the job, returning encoded result bytes or a message for a
    /// `Failed` reply.
    ///
    /// # Errors
    ///
    /// The returned string travels to the client verbatim.
    fn execute(&self, payload: &[u8]) -> Result<Vec<u8>, String>;
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Executor threads (max jobs in flight).
    pub workers: usize,
    /// Queue-depth cap; submissions beyond it get a `Busy` reply.
    pub max_queue: usize,
    /// Per-connection read timeout. A peer stalled mid-frame longer
    /// than this is disconnected (slow-loris mitigation); an idle peer
    /// between frames is unaffected.
    pub read_timeout: Duration,
    /// Display name echoed in `HelloAck`.
    pub server_name: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            max_queue: 256,
            read_timeout: Duration::from_millis(5000),
            server_name: "gopim-serve".to_string(),
        }
    }
}

impl ServerConfig {
    /// Defaults overridden by `GOPIM_SERVE_WORKERS`,
    /// `GOPIM_SERVE_QUEUE` and `GOPIM_SERVE_READ_TIMEOUT_MS`
    /// (unparsable values fall back silently — a server must come up).
    pub fn from_env() -> Self {
        let mut cfg = ServerConfig::default();
        let get = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&v| v > 0)
        };
        if let Some(v) = get("GOPIM_SERVE_WORKERS") {
            cfg.workers = v as usize;
        }
        if let Some(v) = get("GOPIM_SERVE_QUEUE") {
            cfg.max_queue = v as usize;
        }
        if let Some(v) = get("GOPIM_SERVE_READ_TIMEOUT_MS") {
            cfg.read_timeout = Duration::from_millis(v);
        }
        cfg
    }
}

/// What phase an admitted, unanswered job is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    /// Cancelled while running: the `Cancelled` reply already went
    /// out; the eventual handler result is discarded.
    CancelRunning,
}

struct JobMeta {
    conn: u64,
    client_job_id: u64,
    phase: Phase,
}

struct QueuedJob {
    client_job_id: u64,
    conn: u64,
    payload: Vec<u8>,
    deadline: Option<Instant>,
    key: Option<CacheKey>,
    submitted_at: Instant,
}

struct SchedState {
    queue: FairQueue<QueuedJob>,
    jobs: BTreeMap<u64, JobMeta>,
    running: usize,
    accepting: bool,
}

struct ConnHandle {
    tx: Sender<Vec<u8>>,
    stream: TcpStream,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_served: AtomicU64,
    busy: AtomicU64,
    cancelled: AtomicU64,
    expired: AtomicU64,
}

struct Handles {
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    readers: Vec<JoinHandle<()>>,
    writers: Vec<JoinHandle<()>>,
}

struct Core {
    cfg: ServerConfig,
    handler: Arc<dyn JobHandler>,
    // Every lock sits on `gopim_obs::DepMutex`: poison recovery (a
    // poisoned lock means a handler panicked; every multi-field
    // transition completes before its guard drops, so the state is
    // never torn) plus the `GOPIM_LOCKDEP=1` order witness.
    state: DepMutex<SchedState>,
    work_cv: DepCondvar,
    conns: DepMutex<BTreeMap<u64, ConnHandle>>,
    handles: DepMutex<Handles>,
    counters: Counters,
    addr: SocketAddr,
    shutting_down: AtomicBool,
    next_job: AtomicU64,
    next_conn: AtomicU64,
    done: DepMutex<bool>,
    done_cv: DepCondvar,
}

/// A running job server. Bind with [`Server::bind`], stop with
/// [`Server::shutdown`] (drains accepted jobs) or let a client send
/// the protocol `Shutdown` message and [`Server::wait`] for it.
pub struct Server {
    core: Arc<Core>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// spawns the accept and executor threads.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(
        addr: &str,
        handler: Arc<dyn JobHandler>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let core = Arc::new(Core {
            cfg: cfg.clone(),
            handler,
            state: DepMutex::new(
                "serve::state",
                SchedState {
                    queue: FairQueue::new(),
                    jobs: BTreeMap::new(),
                    running: 0,
                    accepting: true,
                },
            ),
            work_cv: DepCondvar::new(),
            conns: DepMutex::new("serve::conns", BTreeMap::new()),
            handles: DepMutex::new(
                "serve::handles",
                Handles {
                    accept: None,
                    workers: Vec::new(),
                    readers: Vec::new(),
                    writers: Vec::new(),
                },
            ),
            counters: Counters::default(),
            addr: local,
            shutting_down: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
            next_conn: AtomicU64::new(1),
            done: DepMutex::new("serve::done", false),
            done_cv: DepCondvar::new(),
        });
        if gopim_obs::manifest_enabled() {
            gopim_obs::manifest::record_u64("serve.workers", cfg.workers as u64);
            gopim_obs::manifest::record_u64("serve.max_queue", cfg.max_queue as u64);
            gopim_obs::manifest::record_str("serve.addr", local.to_string());
        }
        {
            let mut handles = core.handles.lock();
            for i in 0..cfg.workers.max(1) {
                let c = Arc::clone(&core);
                handles.workers.push(
                    std::thread::Builder::new()
                        .name(format!("serve-worker-{i}"))
                        .spawn(move || worker_loop(&c))
                        .map_err(|e| std::io::Error::other(format!("spawn worker: {e}")))?,
                );
            }
            let c = Arc::clone(&core);
            handles.accept = Some(
                std::thread::Builder::new()
                    .name("serve-accept".to_string())
                    .spawn(move || accept_loop(&c, listener))
                    .map_err(|e| std::io::Error::other(format!("spawn accept: {e}")))?,
            );
        }
        gopim_obs::log_info!(
            "serve: listening on {local} ({} workers, queue cap {})",
            cfg.workers,
            cfg.max_queue
        );
        Ok(Server { core })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.core.addr
    }

    /// Point-in-time statistics (the same numbers `Stats` serves).
    pub fn stats(&self) -> ServerStats {
        self.core.stats()
    }

    /// Drains accepted jobs, stops every thread, and returns once the
    /// server is fully torn down. Idempotent; concurrent callers block
    /// until the first teardown completes.
    pub fn shutdown(&self) {
        self.core.shutdown();
    }

    /// Blocks until the server shuts down — via [`Server::shutdown`]
    /// or a client's protocol `Shutdown` message.
    pub fn wait(&self) {
        let mut done = self.core.done.lock();
        while !*done {
            done = self.core.done_cv.wait(done);
        }
    }
}

impl Core {
    fn stats(&self) -> ServerStats {
        let (queued, running) = {
            let st = self.state.lock();
            (st.queue.depth() as u64, st.running as u64)
        };
        ServerStats {
            queued,
            running,
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            cache_served: self.counters.cache_served.load(Ordering::Relaxed),
            busy_rejections: self.counters.busy.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            expired: self.counters.expired.load(Ordering::Relaxed),
        }
    }

    /// Queues `resp` for delivery on `conn`; silently dropped when the
    /// connection is gone (the client hung up — nobody is listening).
    fn send(&self, conn: u64, resp: &Response) {
        let bytes = resp.to_frame_bytes();
        let tx = self.conns.lock().get(&conn).map(|c| c.tx.clone());
        if let Some(tx) = tx {
            let _ = tx.send(bytes);
        }
    }

    fn shutdown(&self) {
        // First caller performs the teardown; later callers (including
        // protocol-triggered ones racing an explicit shutdown) just
        // wait for `done`.
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            let mut done = self.done.lock();
            while !*done {
                done = self.done_cv.wait(done);
            }
            return;
        }
        {
            let mut st = self.state.lock();
            st.accepting = false;
        }
        self.work_cv.notify_all();
        // Workers drain the queue, answering every accepted job, then
        // exit on the shutdown flag.
        let workers = std::mem::take(&mut self.handles.lock().workers);
        for w in workers {
            let _ = w.join();
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let accept = self.handles.lock().accept.take();
        if let Some(a) = accept {
            let _ = a.join();
        }
        // Drop every connection's reply sender (keeping the streams
        // alive), then join the writers: each one drains its channel,
        // flushes, and exits — so every reply a worker produced reaches
        // the wire before any socket is cut. Acceptance stays a
        // delivery promise through shutdown.
        let streams: Vec<TcpStream> = {
            let mut conns = self.conns.lock();
            std::mem::take(&mut *conns)
                .into_values()
                .map(|h| h.stream)
                .collect()
        };
        let writers = std::mem::take(&mut self.handles.lock().writers);
        for w in writers {
            let _ = w.join();
        }
        // Only now cut the sockets, unblocking readers parked in read.
        for s in &streams {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        let readers = std::mem::take(&mut self.handles.lock().readers);
        for r in readers {
            let _ = r.join();
        }
        gopim_obs::log_info!("serve: drained and shut down");
        let mut done = self.done.lock();
        *done = true;
        self.done_cv.notify_all();
    }
}

fn accept_loop(core: &Arc<Core>, listener: TcpListener) {
    for stream in listener.incoming() {
        if core.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Job replies are small frames; without nodelay they sit in
        // Nagle/delayed-ACK purgatory for tens of milliseconds.
        let _ = stream.set_nodelay(true);
        let conn_id = core.next_conn.fetch_add(1, Ordering::Relaxed);
        CONNECTIONS.add(1);
        let (tx, rx) = channel::<Vec<u8>>();
        let write_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        // Clone before taking the lock: cloning inside the `insert`
        // argument would re-enter `core.conns` on the failure path (a
        // single-thread self-deadlock, caught by lock-order-inversion).
        let handle_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        core.conns.lock().insert(
            conn_id,
            ConnHandle {
                tx,
                stream: handle_stream,
            },
        );
        let c = Arc::clone(core);
        let reader = std::thread::Builder::new()
            .name(format!("serve-conn-{conn_id}"))
            .spawn(move || conn_loop(&c, conn_id, stream));
        let writer = std::thread::Builder::new()
            .name(format!("serve-write-{conn_id}"))
            .spawn(move || {
                let mut stream = write_stream;
                while let Ok(bytes) = rx.recv() {
                    if stream.write_all(&bytes).is_err() {
                        break;
                    }
                }
                let _ = stream.flush();
            });
        let mut handles = core.handles.lock();
        if let Ok(r) = reader {
            handles.readers.push(r);
        }
        if let Ok(w) = writer {
            handles.writers.push(w);
        }
    }
}

/// Per-connection read loop: accumulate bytes, decode frames, dispatch
/// requests. Returns when the peer disconnects, misbehaves, or the
/// server shuts the stream down.
fn conn_loop(core: &Arc<Core>, conn_id: u64, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(core.cfg.read_timeout));
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    let mut hello_seen = false;
    'conn: loop {
        // Drain every complete frame currently buffered.
        loop {
            match decode_frame(&buf) {
                Ok(DecodeStep::Incomplete { .. }) => break,
                Ok(DecodeStep::Complete { frame, consumed }) => {
                    buf.drain(..consumed);
                    match Request::from_frame(&frame) {
                        Ok(req) => {
                            if !handle_request(core, conn_id, &mut hello_seen, req) {
                                break 'conn;
                            }
                        }
                        Err(e) => {
                            BAD_FRAMES.add(1);
                            core.send(
                                conn_id,
                                &Response::ProtoError {
                                    message: e.to_string(),
                                },
                            );
                            break 'conn;
                        }
                    }
                }
                Err(e) => {
                    BAD_FRAMES.add(1);
                    core.send(
                        conn_id,
                        &Response::ProtoError {
                            message: e.to_string(),
                        },
                    );
                    break 'conn;
                }
            }
        }
        match stream.read(&mut tmp) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if core.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                if buf.is_empty() {
                    // Idle between frames: a client waiting for results
                    // legitimately sends nothing. Keep listening.
                    continue;
                }
                // Mid-frame stall past the read timeout: slow loris.
                BAD_FRAMES.add(1);
                core.send(
                    conn_id,
                    &Response::ProtoError {
                        message: format!(
                            "read timeout with {} byte(s) of a partial frame",
                            buf.len()
                        ),
                    },
                );
                break;
            }
            Err(_) => break,
        }
    }
    disconnect(core, conn_id);
    // No explicit socket shutdown here: a final ProtoError may still
    // sit in the writer's channel. `disconnect` dropped the reply
    // sender, so the writer drains, flushes and exits; the socket
    // closes when the last clone (this one, the writer's) drops —
    // after the reply reached the wire, never before.
    drop(stream);
}

/// Removes the connection and abandons its still-queued jobs so a dead
/// client's backlog stops consuming queue slots and worker time.
fn disconnect(core: &Arc<Core>, conn_id: u64) {
    let removed = core.conns.lock().remove(&conn_id);
    drop(removed); // closes the writer channel once job senders drain
    let mut st = core.state.lock();
    let orphaned: Vec<u64> = st
        .jobs
        .iter()
        .filter(|(_, m)| m.conn == conn_id && m.phase == Phase::Queued)
        .map(|(&id, _)| id)
        .collect();
    for job_id in orphaned {
        if st.queue.cancel(job_id) {
            st.jobs.remove(&job_id);
            ABANDONED.add(1);
        }
    }
}

/// Handles one request; returns `false` when the connection must
/// close (protocol violation before `Hello`).
fn handle_request(core: &Arc<Core>, conn_id: u64, hello_seen: &mut bool, req: Request) -> bool {
    if !*hello_seen && !matches!(req, Request::Hello { .. }) {
        core.send(
            conn_id,
            &Response::ProtoError {
                message: "first frame must be Hello".to_string(),
            },
        );
        return false;
    }
    match req {
        Request::Hello {
            client_name,
            schema,
        } => {
            if schema != PROTO_SCHEMA {
                core.send(
                    conn_id,
                    &Response::ProtoError {
                        message: format!("schema mismatch: client {schema}, server {PROTO_SCHEMA}"),
                    },
                );
                return false;
            }
            *hello_seen = true;
            gopim_obs::log_debug!("serve: conn {conn_id} hello from '{client_name}'");
            core.send(
                conn_id,
                &Response::HelloAck {
                    schema: PROTO_SCHEMA,
                    server_name: core.cfg.server_name.clone(),
                },
            );
        }
        Request::Submit {
            client_job_id,
            deadline_ms,
            payload,
        } => submit(core, conn_id, client_job_id, deadline_ms, payload),
        Request::Cancel { job_id } => cancel(core, conn_id, job_id),
        Request::Stats => {
            let stats = core.stats();
            core.send(conn_id, &Response::StatsReply(stats));
        }
        Request::Shutdown => {
            core.send(conn_id, &Response::ShuttingDown);
            // Tear down from a detached thread: this reader is among
            // the threads the teardown joins.
            let c = Arc::clone(core);
            let _ = std::thread::Builder::new()
                .name("serve-shutdown".to_string())
                .spawn(move || c.shutdown());
        }
    }
    true
}

fn submit(core: &Arc<Core>, conn_id: u64, client_job_id: u64, deadline_ms: u64, payload: Vec<u8>) {
    if core.shutting_down.load(Ordering::SeqCst) {
        core.send(conn_id, &Response::ShuttingDown);
        return;
    }
    let key = core.handler.cache_key(&payload);
    // Cache fast path: a repeated request is answered inline without
    // consuming a queue slot or a worker.
    if let Some(key) = key {
        if let Some(bytes) = gopim_cache::global().get_bytes(key) {
            let job_id = core.next_job.fetch_add(1, Ordering::Relaxed);
            SUBMITTED.add(1);
            CACHE_SERVED.add(1);
            COMPLETED.add(1);
            core.counters.submitted.fetch_add(1, Ordering::Relaxed);
            core.counters.cache_served.fetch_add(1, Ordering::Relaxed);
            core.counters.completed.fetch_add(1, Ordering::Relaxed);
            core.send(
                conn_id,
                &Response::Accepted {
                    client_job_id,
                    job_id,
                },
            );
            core.send(
                conn_id,
                &Response::Done {
                    job_id,
                    client_job_id,
                    cache_served: true,
                    result: bytes.to_vec(),
                },
            );
            return;
        }
    }
    let cost = core.handler.predicted_cost_ns(&payload);
    let deadline = (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(deadline_ms));
    let (verdict, depth) = {
        let mut st = core.state.lock();
        if !st.accepting {
            (None, 0)
        } else if st.queue.depth() >= core.cfg.max_queue {
            (Some(false), st.queue.depth())
        } else {
            let job_id = core.next_job.fetch_add(1, Ordering::Relaxed);
            st.jobs.insert(
                job_id,
                JobMeta {
                    conn: conn_id,
                    client_job_id,
                    phase: Phase::Queued,
                },
            );
            st.queue.push(
                conn_id,
                job_id,
                cost,
                QueuedJob {
                    client_job_id,
                    conn: conn_id,
                    payload,
                    deadline,
                    key,
                    submitted_at: Instant::now(),
                },
            );
            let depth = st.queue.depth();
            QUEUE_DEPTH.record_max(depth as u64);
            (Some(true), job_id as usize)
        }
    };
    match verdict {
        None => core.send(conn_id, &Response::ShuttingDown),
        Some(false) => {
            BUSY.add(1);
            core.counters.busy.fetch_add(1, Ordering::Relaxed);
            core.send(
                conn_id,
                &Response::Busy {
                    client_job_id,
                    queue_depth: depth as u64,
                },
            );
        }
        Some(true) => {
            SUBMITTED.add(1);
            core.counters.submitted.fetch_add(1, Ordering::Relaxed);
            core.send(
                conn_id,
                &Response::Accepted {
                    client_job_id,
                    job_id: depth as u64,
                },
            );
            core.work_cv.notify_one();
        }
    }
}

fn cancel(core: &Arc<Core>, conn_id: u64, job_id: u64) {
    let reply = {
        let mut st = core.state.lock();
        match st.jobs.get_mut(&job_id) {
            Some(meta) if meta.phase == Phase::Queued => {
                let client_job_id = meta.client_job_id;
                st.queue.cancel(job_id);
                st.jobs.remove(&job_id);
                Some(client_job_id)
            }
            Some(meta) if meta.phase == Phase::Running => {
                meta.phase = Phase::CancelRunning;
                Some(meta.client_job_id)
            }
            _ => None,
        }
    };
    match reply {
        Some(client_job_id) => {
            CANCELLED.add(1);
            core.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            core.send(
                conn_id,
                &Response::Cancelled {
                    job_id,
                    client_job_id,
                },
            );
        }
        None => core.send(
            conn_id,
            &Response::Failed {
                job_id,
                client_job_id: 0,
                message: format!("cancel: job {job_id} unknown or already completed"),
            },
        ),
    }
}

fn worker_loop(core: &Arc<Core>) {
    loop {
        let popped = {
            let mut st = core.state.lock();
            loop {
                if let Some(p) = st.queue.pop() {
                    break Some(p);
                }
                if core.shutting_down.load(Ordering::SeqCst) {
                    break None;
                }
                st = core.work_cv.wait(st);
            }
        };
        let Some(popped) = popped else { return };
        let job_id = popped.job_id;
        let job = popped.item;
        // The queued-phase check already happened: a cancelled entry
        // never pops. Deadline check happens at dispatch — a job that
        // waited past its deadline is dropped with a typed reply
        // instead of burning a worker.
        if job.deadline.is_some_and(|d| Instant::now() > d) {
            core.state.lock().jobs.remove(&job_id);
            EXPIRED.add(1);
            core.counters.expired.fetch_add(1, Ordering::Relaxed);
            core.send(
                job.conn,
                &Response::Expired {
                    job_id,
                    client_job_id: job.client_job_id,
                },
            );
            continue;
        }
        {
            let mut st = core.state.lock();
            match st.jobs.get_mut(&job_id) {
                Some(meta) => {
                    meta.phase = Phase::Running;
                    st.running += 1;
                    INFLIGHT.record_max(st.running as u64);
                }
                // Disconnect raced the pop: the job is already gone.
                None => continue,
            }
        }
        WAIT_NS.record_ns(job.submitted_at.elapsed().as_nanos() as f64);
        let exec_start = Instant::now();
        let result = {
            let _span = gopim_obs::span!("serve.execute");
            match job.key {
                // Another identical job may have populated the cache
                // while this one queued; re-check, then execute and
                // publish the bytes for every later repeat.
                Some(key) => match gopim_cache::global().get_bytes(key) {
                    Some(bytes) => {
                        CACHE_SERVED.add(1);
                        core.counters.cache_served.fetch_add(1, Ordering::Relaxed);
                        Ok(bytes.to_vec())
                    }
                    None => {
                        let r = core.handler.execute(&job.payload);
                        if let Ok(bytes) = &r {
                            gopim_cache::global().store(key, std::sync::Arc::new(bytes.clone()));
                        }
                        r
                    }
                },
                None => core.handler.execute(&job.payload),
            }
        };
        EXEC_NS.record_ns(exec_start.elapsed().as_nanos() as f64);
        let meta = {
            let mut st = core.state.lock();
            st.running -= 1;
            st.jobs.remove(&job_id)
        };
        let Some(meta) = meta else { continue };
        if meta.phase == Phase::CancelRunning {
            // The Cancelled reply went out when the client asked;
            // the late result is discarded.
            continue;
        }
        LATENCY_NS.record_ns(job.submitted_at.elapsed().as_nanos() as f64);
        match result {
            Ok(bytes) => {
                COMPLETED.add(1);
                core.counters.completed.fetch_add(1, Ordering::Relaxed);
                core.send(
                    meta.conn,
                    &Response::Done {
                        job_id,
                        client_job_id: meta.client_job_id,
                        cache_served: false,
                        result: bytes,
                    },
                );
            }
            Err(message) => {
                FAILED.add(1);
                core.send(
                    meta.conn,
                    &Response::Failed {
                        job_id,
                        client_job_id: meta.client_job_id,
                        message,
                    },
                );
            }
        }
    }
}
