//! Adversarial property suite for the serve wire codec.
//!
//! The frame decoder claims to be **total**: every byte sequence maps
//! to a frame, a typed [`FrameError`], or an `Incomplete{needed}` —
//! never a panic, never an allocation a hostile length field controls.
//! These properties attack that claim with the testkit harness
//! (`gopim_testkit::prop`, seeded and shrinkable via `GOPIM_PT_SEED` /
//! `GOPIM_PT_CASES`): random valid frames must round-trip bit-exactly;
//! truncations, oversized lengths, duplicated magic, single-byte
//! corruption and pure garbage must come back as typed errors or
//! honest incompleteness.
//!
//! The message layer rides the same discipline: random requests and
//! responses round-trip through frames; bodies with trailing or
//! missing bytes are `Malformed`, not misparsed.

use gopim_serve::frame::{HEADER_LEN, MAGIC, MAX_PAYLOAD, TRAILER_LEN, WIRE_VERSION};
use gopim_serve::{
    decode_frame, encode_frame, DecodeStep, Frame, FrameError, Request, Response, ServerStats,
    PROTO_SCHEMA,
};
use gopim_testkit::prop::{check, check_with, Config, Draw};

/// Draws a payload with adversarial structure: empty, magic-laden, or
/// plain random bytes. Shrinks toward empty.
fn draw_payload(d: &mut Draw, max_len: usize) -> Vec<u8> {
    if d.bool_with("embed_magic", 0.3) {
        // Payloads that contain the frame magic (possibly repeatedly)
        // probe resynchronization bugs: a decoder that scans for magic
        // instead of tracking frame boundaries would desync here.
        let reps = d.draw("magic_reps", 1usize..4);
        let mut p = Vec::new();
        for _ in 0..reps {
            p.extend_from_slice(&MAGIC);
            p.extend(d.vec("filler", 0usize..8, |d| d.draw("b", 0u8..=255)));
        }
        p
    } else {
        d.vec("payload", 0..max_len.max(1), |d| d.draw("b", 0u8..=255))
    }
}

#[test]
fn arbitrary_valid_frames_round_trip() {
    check("frame_round_trip", |d| {
        let opcode = d.draw("opcode", 0u8..=255);
        let payload = draw_payload(d, 2048);
        let bytes = encode_frame(opcode, &payload);
        match decode_frame(&bytes) {
            Ok(DecodeStep::Complete { frame, consumed }) => {
                assert_eq!(frame.opcode, opcode);
                assert_eq!(frame.payload, payload);
                assert_eq!(consumed, bytes.len());
            }
            other => panic!("valid frame did not decode: {other:?}"),
        }
    });
}

#[test]
fn every_truncation_of_a_valid_frame_is_incomplete() {
    check("truncation_is_incomplete", |d| {
        let opcode = d.draw("opcode", 0u8..=255);
        let payload = draw_payload(d, 512);
        let bytes = encode_frame(opcode, &payload);
        let cut = d.draw("cut", 0..bytes.len());
        match decode_frame(&bytes[..cut]) {
            Ok(DecodeStep::Incomplete { needed }) => {
                // The decoder may ask for the next field boundary
                // rather than the whole frame, but never for less than
                // it already has, and never beyond the true total.
                assert!(needed > cut, "needed {needed} <= have {cut}");
                assert!(
                    needed <= bytes.len(),
                    "needed {needed} > frame {}",
                    bytes.len()
                );
            }
            other => panic!("truncation at {cut} must be Incomplete, got {other:?}"),
        }
    });
}

#[test]
fn concatenated_frame_streams_decode_in_order() {
    check_with("stream_decodes_in_order", Config::cases(48), |d| {
        // A stream of K frames delivered in adversarial chunk sizes
        // must come back as exactly those K frames, in order — the
        // accumulate/drain loop both server and client run.
        let frames: Vec<(u8, Vec<u8>)> = (0..d.draw("k", 1usize..5))
            .map(|_| (d.draw("opcode", 0u8..=255), draw_payload(d, 128)))
            .collect();
        let mut wire = Vec::new();
        for (op, p) in &frames {
            wire.extend_from_slice(&encode_frame(*op, p));
        }
        let mut buf: Vec<u8> = Vec::new();
        let mut decoded: Vec<Frame> = Vec::new();
        let mut fed = 0;
        while fed < wire.len() || !buf.is_empty() {
            match decode_frame(&buf).expect("valid stream never errors") {
                DecodeStep::Complete { frame, consumed } => {
                    buf.drain(..consumed);
                    decoded.push(frame);
                }
                DecodeStep::Incomplete { .. } => {
                    if fed == wire.len() {
                        break;
                    }
                    let chunk = d.draw("chunk", 1usize..64).min(wire.len() - fed);
                    buf.extend_from_slice(&wire[fed..fed + chunk]);
                    fed += chunk;
                }
            }
        }
        assert_eq!(decoded.len(), frames.len());
        for (got, (op, p)) in decoded.iter().zip(&frames) {
            assert_eq!(got.opcode, *op);
            assert_eq!(&got.payload, p);
        }
        assert!(buf.is_empty(), "trailing bytes after a whole stream");
    });
}

#[test]
fn single_byte_corruption_never_yields_a_frame() {
    check("corruption_is_typed", |d| {
        let opcode = d.draw("opcode", 0u8..=255);
        let payload = draw_payload(d, 256);
        let mut bytes = encode_frame(opcode, &payload);
        let pos = d.draw("pos", 0..bytes.len());
        let flip = d.draw("flip", 1u8..=255);
        bytes[pos] ^= flip;
        // A corrupted frame must surface as a typed error or (when the
        // flip inflates the length field within the cap) an Incomplete
        // that asks for more bytes — never a successfully decoded
        // frame, and never a panic.
        match decode_frame(&bytes) {
            Err(_) => {}
            Ok(DecodeStep::Incomplete { .. }) => {
                assert!(
                    (8..12).contains(&pos),
                    "only a length-field flip may extend the frame; flipped byte {pos}"
                );
            }
            Ok(DecodeStep::Complete { .. }) => {
                panic!("corrupted byte {pos} (xor {flip:#04x}) still decoded")
            }
        }
    });
}

#[test]
fn oversized_length_is_rejected_before_the_payload_exists() {
    check("oversized_rejected_early", |d| {
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        header.push(d.draw("opcode", 0u8..=255));
        header.push(0);
        let len = d.draw("len", MAX_PAYLOAD + 1..=u32::MAX);
        header.extend_from_slice(&len.to_le_bytes());
        // Only the 12 header bytes exist — a decoder that believed the
        // length field would wait for (or allocate) gigabytes.
        assert_eq!(header.len(), HEADER_LEN);
        assert!(matches!(
            decode_frame(&header),
            Err(FrameError::Oversized(n)) if n == len
        ));
    });
}

#[test]
fn garbage_streams_never_panic_and_errors_are_stable() {
    check("garbage_is_total", |d| {
        let bytes = d.vec("garbage", 0usize..256, |d| d.draw("b", 0u8..=255));
        // Totality: any outcome is fine, panicking is not (the harness
        // converts a panic into a counterexample). Determinism: the
        // same bytes must decode to the same outcome.
        let first = decode_frame(&bytes);
        let second = decode_frame(&bytes);
        assert_eq!(first, second, "decode is not a pure function");
        if let Ok(DecodeStep::Complete { consumed, .. }) = first {
            assert!(consumed <= bytes.len());
        }
    });
}

#[test]
fn duplicate_magic_prefix_is_a_typed_error() {
    check_with("duplicate_magic", Config::cases(32), |d| {
        // b"GPS1GPS1…" puts magic where the version belongs; the
        // second copy must not be mistaken for a frame start.
        let reps = d.draw("reps", 2usize..6);
        let mut bytes = Vec::new();
        for _ in 0..reps {
            bytes.extend_from_slice(&MAGIC);
        }
        bytes.extend(d.vec("tail", 0usize..32, |d| d.draw("b", 0u8..=255)));
        if bytes.len() < HEADER_LEN {
            // Until the header is whole the stream is an honest prefix;
            // the version field cannot be judged yet.
            assert!(matches!(
                decode_frame(&bytes),
                Ok(DecodeStep::Incomplete { .. })
            ));
        } else {
            assert!(
                matches!(decode_frame(&bytes), Err(FrameError::BadVersion(_))),
                "magic-where-version-belongs must be BadVersion"
            );
        }
    });
}

#[test]
fn wrong_magic_fails_at_the_earliest_proving_byte() {
    check("magic_fails_early", |d| {
        let pos = d.draw("pos", 0usize..4);
        let mut bytes = MAGIC[..=pos].to_vec();
        let wrong = d.draw("wrong", 1u8..=255) ^ MAGIC[pos];
        // xor with a nonzero value guarantees a mismatch at `pos`.
        bytes[pos] = wrong;
        assert!(
            matches!(decode_frame(&bytes), Err(FrameError::BadMagic(_))),
            "a provably-wrong magic byte must fail without waiting for a full header"
        );
    });
}

fn draw_request(d: &mut Draw) -> Request {
    match d.draw("req_kind", 0u32..5) {
        0 => Request::Hello {
            client_name: String::from_utf8_lossy(
                &d.vec("name", 0usize..24, |d| d.draw("c", b'a'..=b'z')),
            )
            .into_owned(),
            schema: d.draw("schema", 0u32..=u32::MAX),
        },
        1 => Request::Submit {
            client_job_id: d.draw("cjid", 0u64..=u64::MAX),
            deadline_ms: d.draw("deadline", 0u64..100_000),
            payload: d.vec("job", 0usize..512, |d| d.draw("b", 0u8..=255)),
        },
        2 => Request::Cancel {
            job_id: d.draw("job_id", 0u64..=u64::MAX),
        },
        3 => Request::Stats,
        _ => Request::Shutdown,
    }
}

fn draw_response(d: &mut Draw) -> Response {
    let ids = |d: &mut Draw| {
        (
            d.draw("job_id", 0u64..=u64::MAX),
            d.draw("cjid", 0u64..=u64::MAX),
        )
    };
    match d.draw("resp_kind", 0u32..10) {
        0 => Response::HelloAck {
            schema: PROTO_SCHEMA,
            server_name: "prop".to_string(),
        },
        1 => {
            let (job_id, client_job_id) = ids(d);
            Response::Accepted {
                client_job_id,
                job_id,
            }
        }
        2 => Response::Busy {
            client_job_id: d.draw("cjid", 0u64..=u64::MAX),
            queue_depth: d.draw("depth", 0u64..10_000),
        },
        3 => {
            let (job_id, client_job_id) = ids(d);
            Response::Done {
                job_id,
                client_job_id,
                cache_served: d.any_bool("cache_served"),
                result: d.vec("result", 0usize..512, |d| d.draw("b", 0u8..=255)),
            }
        }
        4 => {
            let (job_id, client_job_id) = ids(d);
            Response::Failed {
                job_id,
                client_job_id,
                message: "x".repeat(d.draw("msg_len", 0usize..64)),
            }
        }
        5 => {
            let (job_id, client_job_id) = ids(d);
            Response::Cancelled {
                job_id,
                client_job_id,
            }
        }
        6 => {
            let (job_id, client_job_id) = ids(d);
            Response::Expired {
                job_id,
                client_job_id,
            }
        }
        7 => Response::StatsReply(ServerStats {
            queued: d.draw("queued", 0u64..1000),
            running: d.draw("running", 0u64..64),
            submitted: d.draw("submitted", 0u64..=u64::MAX),
            completed: d.draw("completed", 0u64..=u64::MAX),
            cache_served: d.draw("cache_served", 0u64..=u64::MAX),
            busy_rejections: d.draw("busy", 0u64..=u64::MAX),
            cancelled: d.draw("cancelled", 0u64..=u64::MAX),
            expired: d.draw("expired", 0u64..=u64::MAX),
        }),
        8 => Response::ShuttingDown,
        _ => Response::ProtoError {
            message: "y".repeat(d.draw("msg_len", 0usize..64)),
        },
    }
}

fn complete(bytes: &[u8]) -> Frame {
    match decode_frame(bytes) {
        Ok(DecodeStep::Complete { frame, consumed }) => {
            assert_eq!(consumed, bytes.len());
            frame
        }
        other => panic!("message frame did not decode: {other:?}"),
    }
}

#[test]
fn arbitrary_requests_and_responses_round_trip() {
    check("messages_round_trip", |d| {
        let req = draw_request(d);
        assert_eq!(
            Request::from_frame(&complete(&req.to_frame_bytes())).expect("request decodes"),
            req
        );
        let resp = draw_response(d);
        assert_eq!(
            Response::from_frame(&complete(&resp.to_frame_bytes())).expect("response decodes"),
            resp
        );
    });
}

#[test]
fn truncated_or_padded_message_bodies_are_malformed() {
    check("mutated_bodies_are_malformed", |d| {
        let (opcode, body) = {
            let req = draw_request(d);
            let f = complete(&req.to_frame_bytes());
            (f.opcode, f.payload)
        };
        let mutated = if d.any_bool("pad") {
            let mut b = body.clone();
            b.extend(d.vec("padding", 1usize..16, |d| d.draw("b", 0u8..=255)));
            Some(b)
        } else if body.is_empty() {
            // Stats/Shutdown carry no body; nothing to truncate.
            None
        } else {
            Some(body[..d.draw("keep", 0..body.len())].to_vec())
        };
        if let Some(payload) = mutated {
            match Request::from_frame(&Frame { opcode, payload }) {
                Err(FrameError::Malformed(_)) => {}
                Ok(req) => panic!("mutated body still parsed as {req:?}"),
                Err(e) => panic!("expected Malformed, got {e:?}"),
            }
        }
    });
}

#[test]
fn request_and_response_opcode_spaces_are_disjoint() {
    check_with("opcode_spaces_disjoint", Config::cases(32), |d| {
        let req_frame = complete(&draw_request(d).to_frame_bytes());
        assert!(
            matches!(
                Response::from_frame(&req_frame),
                Err(FrameError::BadOpcode(_))
            ),
            "a request opcode parsed as a response"
        );
        let resp_frame = complete(&draw_response(d).to_frame_bytes());
        assert!(
            matches!(
                Request::from_frame(&resp_frame),
                Err(FrameError::BadOpcode(_))
            ),
            "a response opcode parsed as a request"
        );
    });
}

#[test]
fn frame_overhead_is_exactly_header_plus_trailer() {
    check_with("overhead_is_constant", Config::cases(16), |d| {
        let payload = draw_payload(d, 1024);
        let bytes = encode_frame(0, &payload);
        assert_eq!(bytes.len(), HEADER_LEN + payload.len() + TRAILER_LEN);
    });
}
