//! Concurrency and robustness battery for the job server, driven by a
//! toy handler so nothing here depends on simulation physics:
//!
//! - a **slow loris** (bytes of a frame, then silence) is cut off by
//!   the read timeout with a typed `ProtoError` while a well-behaved
//!   client on another connection keeps completing jobs;
//! - **garbage** and pre-`Hello` traffic close only the offending
//!   connection;
//! - cancelling a **queued** job frees its admission slot immediately
//!   (`Busy` before the cancel, `Accepted` after); cancelling a
//!   **running** job answers `Cancelled` and discards the late result;
//! - a job whose **deadline** lapses in the queue is answered
//!   `Expired` without executing;
//! - **shutdown drains**: every job accepted before the drain gets its
//!   terminal reply delivered before the sockets close.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gopim_serve::{
    decode_frame, Client, DecodeStep, JobHandler, Request, Response, Server, ServerConfig,
};

/// Toy handler: byte 0 of the payload is a sleep in milliseconds, the
/// rest echoes back reversed. A payload starting with 0xFF fails.
struct Echo {
    started: AtomicU64,
    executed: AtomicU64,
}

impl Echo {
    fn new() -> Echo {
        Echo {
            started: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        }
    }

    /// Spins until at least `n` executions have *started* — the only
    /// way a test can order "the worker popped job X" against its own
    /// next submission without racing the scheduler.
    fn wait_started(&self, n: u64) {
        let mut spins = 0u32;
        while self.started.load(Ordering::SeqCst) < n {
            std::thread::sleep(Duration::from_millis(1));
            spins += 1;
            assert!(spins < 10_000, "worker never started job {n}");
        }
    }
}

impl JobHandler for Echo {
    fn predicted_cost_ns(&self, payload: &[u8]) -> f64 {
        payload.first().map_or(1.0, |&ms| f64::from(ms) * 1e6) + 1.0
    }

    fn execute(&self, payload: &[u8]) -> Result<Vec<u8>, String> {
        self.started.fetch_add(1, Ordering::SeqCst);
        match payload.first() {
            Some(&0xFF) => Err("boom".to_string()),
            Some(&ms) => {
                std::thread::sleep(Duration::from_millis(u64::from(ms)));
                self.executed.fetch_add(1, Ordering::SeqCst);
                let mut out: Vec<u8> = payload[1..].to_vec();
                out.reverse();
                Ok(out)
            }
            None => Ok(Vec::new()),
        }
    }
}

fn job(sleep_ms: u8, data: &[u8]) -> Vec<u8> {
    let mut p = vec![sleep_ms];
    p.extend_from_slice(data);
    p
}

/// Returns the first response matching `pred`, looking in the spill of
/// earlier reads before touching the socket (an interleaved reply may
/// already have been consumed by a previous wait).
fn take_or_recv(
    client: &mut Client,
    spill: &mut Vec<Response>,
    pred: impl Fn(&Response) -> bool,
) -> Response {
    if let Some(i) = spill.iter().position(&pred) {
        return spill.remove(i);
    }
    client
        .recv_matching(|r| pred(r), |r| spill.push(r))
        .expect("recv matching")
}

fn server_with(cfg: ServerConfig) -> (Server, Arc<Echo>, String) {
    let handler = Arc::new(Echo::new());
    let server = Server::bind("127.0.0.1:0", Arc::<Echo>::clone(&handler), cfg)
        .expect("bind ephemeral server");
    let addr = server.local_addr().to_string();
    (server, handler, addr)
}

fn tiny_timeouts() -> ServerConfig {
    ServerConfig {
        workers: 1,
        max_queue: 1,
        read_timeout: Duration::from_millis(150),
        server_name: "robustness".to_string(),
    }
}

#[test]
fn echo_round_trip_and_failure_paths() {
    let (server, _, addr) = server_with(ServerConfig {
        workers: 2,
        ..tiny_timeouts()
    });
    let mut client = Client::connect(&addr, "echo").expect("connect");
    match client
        .submit_blocking(1, 0, job(0, b"abc"), |_| {})
        .expect("submit")
    {
        Response::Done {
            cache_served,
            result,
            ..
        } => {
            assert_eq!(result, b"cba");
            assert!(!cache_served, "Echo declares no cache key");
        }
        other => panic!("expected Done, got {other:?}"),
    }
    match client
        .submit_blocking(2, 0, vec![0xFF], |_| {})
        .expect("submit failing job")
    {
        Response::Failed { message, .. } => assert_eq!(message, "boom"),
        other => panic!("expected Failed, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn slow_loris_is_cut_off_without_wedging_other_connections() {
    let (server, _, addr) = server_with(ServerConfig {
        workers: 2,
        max_queue: 16,
        ..tiny_timeouts()
    });

    // The loris: a few bytes of a genuine frame, then silence.
    let mut loris = TcpStream::connect(&addr).expect("loris connect");
    loris.write_all(b"GPS1\x01\x00").expect("partial frame");
    loris.flush().expect("flush");

    // While the loris stalls, a normal client completes jobs on its
    // own connection — proving the stall consumes no shared capacity.
    let mut client = Client::connect(&addr, "victim").expect("connect");
    for i in 0..5 {
        let reply = client
            .submit_blocking(i, 0, job(1, b"fine"), |_| {})
            .expect("victim submit");
        assert!(matches!(reply, Response::Done { .. }), "got {reply:?}");
    }

    // The server must answer the loris with a typed ProtoError naming
    // the partial frame, then close that connection.
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut buf = Vec::new();
    let mut tmp = [0u8; 1024];
    let reply = loop {
        match decode_frame(&buf).expect("server reply decodes") {
            DecodeStep::Complete { frame, .. } => {
                break Response::from_frame(&frame).expect("server reply parses")
            }
            DecodeStep::Incomplete { .. } => {
                let n = loris.read(&mut tmp).expect("read loris reply");
                assert!(n > 0, "connection closed without a ProtoError");
                buf.extend_from_slice(&tmp[..n]);
            }
        }
    };
    match reply {
        Response::ProtoError { message } => {
            assert!(
                message.contains("read timeout"),
                "unexpected ProtoError: {message}"
            );
        }
        other => panic!("expected ProtoError, got {other:?}"),
    }
    // EOF follows: the connection is gone, the server is not.
    loop {
        match loris.read(&mut tmp) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => panic!("expected EOF after ProtoError, got {e}"),
        }
    }
    let reply = client
        .submit_blocking(99, 0, job(0, b"still up"), |_| {})
        .expect("post-loris submit");
    assert!(matches!(reply, Response::Done { .. }));
    server.shutdown();
}

#[test]
fn garbage_and_pre_hello_traffic_close_only_that_connection() {
    let (server, _, addr) = server_with(ServerConfig {
        workers: 1,
        max_queue: 16,
        ..tiny_timeouts()
    });

    // Pure garbage: rejected at the frame layer.
    let mut garbage = TcpStream::connect(&addr).expect("connect");
    garbage.write_all(b"XXXXXXXXXXXXXXXX").expect("write");
    let mut tail = Vec::new();
    garbage
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    garbage.read_to_end(&mut tail).expect("read until EOF");
    let reply = match decode_frame(&tail).expect("reply decodes") {
        DecodeStep::Complete { frame, .. } => Response::from_frame(&frame).expect("reply parses"),
        other => panic!("expected a ProtoError frame, got {other:?}"),
    };
    assert!(matches!(reply, Response::ProtoError { .. }), "{reply:?}");

    // A well-formed frame before Hello: rejected at the session layer.
    let mut rude = TcpStream::connect(&addr).expect("connect");
    rude.write_all(&Request::Stats.to_frame_bytes())
        .expect("write");
    let mut tail = Vec::new();
    rude.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    rude.read_to_end(&mut tail).expect("read until EOF");
    match decode_frame(&tail).expect("reply decodes") {
        DecodeStep::Complete { frame, .. } => {
            match Response::from_frame(&frame).expect("reply parses") {
                Response::ProtoError { message } => {
                    assert!(message.contains("Hello"), "unexpected: {message}")
                }
                other => panic!("expected ProtoError, got {other:?}"),
            }
        }
        other => panic!("expected a ProtoError frame, got {other:?}"),
    }

    // The server survives both rejections.
    let mut client = Client::connect(&addr, "survivor").expect("connect");
    let reply = client
        .submit_blocking(1, 0, job(0, b"ok"), |_| {})
        .expect("submit");
    assert!(matches!(reply, Response::Done { .. }));
    server.shutdown();
}

#[test]
fn cancelling_a_queued_job_frees_its_admission_slot() {
    // One worker, one queue slot: a long job occupies the worker, the
    // next submission takes the only slot, the one after that is Busy.
    let (server, handler, addr) = server_with(tiny_timeouts());
    let mut client = Client::connect(&addr, "canceller").expect("connect");
    let mut spilled: Vec<Response> = Vec::new();

    client
        .send(&Request::Submit {
            client_job_id: 1,
            deadline_ms: 0,
            payload: job(200, b"blocker"),
        })
        .expect("submit blocker");
    // The blocker must be *running* (not queued) before the next
    // submission, or it would still hold the single queue slot.
    handler.wait_started(1);
    client
        .send(&Request::Submit {
            client_job_id: 2,
            deadline_ms: 0,
            payload: job(0, b"queued"),
        })
        .expect("submit queued");
    // Wait for both acceptances; remember the queued job's server id.
    let mut queued_id = None;
    for _ in 0..2 {
        match client
            .recv_matching(
                |r| matches!(r, Response::Accepted { .. }),
                |r| spilled.push(r),
            )
            .expect("accepted")
        {
            Response::Accepted {
                client_job_id: 2,
                job_id,
            } => queued_id = Some(job_id),
            Response::Accepted { .. } => {}
            other => panic!("expected Accepted, got {other:?}"),
        }
    }
    let queued_id = queued_id.expect("queued job accepted");

    // Queue full (the blocker is *running*, job 2 holds the slot).
    let reply = client
        .submit_blocking(3, 0, job(0, b"rejected"), |r| spilled.push(r))
        .expect("submit over capacity");
    assert!(matches!(reply, Response::Busy { .. }), "got {reply:?}");

    // Cancel the queued job: slot freed, typed Cancelled reply.
    client
        .send(&Request::Cancel { job_id: queued_id })
        .expect("cancel");
    let reply = client
        .recv_matching(
            |r| matches!(r, Response::Cancelled { .. }),
            |r| spilled.push(r),
        )
        .expect("cancelled reply");
    assert!(
        matches!(
            reply,
            Response::Cancelled {
                client_job_id: 2,
                ..
            }
        ),
        "got {reply:?}"
    );

    // The freed slot admits a new job, which then completes.
    let reply = client
        .submit_blocking(4, 0, job(0, b"admitted"), |r| spilled.push(r))
        .expect("submit into freed slot");
    match reply {
        Response::Done { result, .. } => assert_eq!(result, b"dettimda"),
        other => panic!("expected Done, got {other:?}"),
    }
    // The blocker still finishes (its Done may already sit in the
    // spill); the cancelled job never executed.
    let reply = take_or_recv(&mut client, &mut spilled, |r| {
        matches!(
            r,
            Response::Done {
                client_job_id: 1,
                ..
            }
        )
    });
    assert!(matches!(reply, Response::Done { .. }));
    server.shutdown();
    assert_eq!(
        handler.executed.load(Ordering::SeqCst),
        2,
        "exactly blocker + admitted may execute; spilled traffic: {spilled:?}"
    );
    let stats = server.stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.busy_rejections, 1);
}

#[test]
fn cancelling_a_running_job_discards_its_late_result() {
    let (server, handler, addr) = server_with(ServerConfig {
        max_queue: 4,
        ..tiny_timeouts()
    });
    let mut client = Client::connect(&addr, "mid-cancel").expect("connect");
    client
        .send(&Request::Submit {
            client_job_id: 1,
            deadline_ms: 0,
            payload: job(150, b"long"),
        })
        .expect("submit");
    let running_id = match client
        .recv_matching(|r| matches!(r, Response::Accepted { .. }), |_| {})
        .expect("accepted")
    {
        Response::Accepted { job_id, .. } => job_id,
        other => panic!("expected Accepted, got {other:?}"),
    };
    // Cancel only once the job is provably mid-execution.
    handler.wait_started(1);
    client
        .send(&Request::Cancel { job_id: running_id })
        .expect("cancel");
    let mut late = Vec::new();
    let reply = client
        .recv_matching(
            |r| matches!(r, Response::Cancelled { .. }),
            |r| late.push(r),
        )
        .expect("cancelled");
    assert!(
        matches!(
            reply,
            Response::Cancelled {
                client_job_id: 1,
                ..
            }
        ),
        "got {reply:?}"
    );
    // The handler finishes 100ms later; its result must be discarded,
    // so the next reply on this connection is for the next job.
    let reply = client
        .submit_blocking(2, 0, job(0, b"after"), |r| late.push(r))
        .expect("follow-up");
    match reply {
        Response::Done { client_job_id, .. } => assert_eq!(client_job_id, 2),
        other => panic!("expected Done, got {other:?}"),
    }
    assert!(
        late.iter().all(|r| !matches!(
            r,
            Response::Done {
                client_job_id: 1,
                ..
            }
        )),
        "cancelled job leaked a Done: {late:?}"
    );
    server.shutdown();
    assert_eq!(server.stats().cancelled, 1);
}

#[test]
fn cancelling_an_unknown_job_is_a_typed_failure() {
    let (server, _, addr) = server_with(tiny_timeouts());
    let mut client = Client::connect(&addr, "confused").expect("connect");
    client
        .send(&Request::Cancel { job_id: 12345 })
        .expect("cancel nothing");
    match client.recv().expect("reply") {
        Response::Failed { message, .. } => {
            assert!(message.contains("12345"), "unexpected: {message}")
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn a_deadline_lapsed_in_the_queue_is_answered_expired() {
    // One worker: a 200ms blocker guarantees the deadlined job waits
    // longer than its 50ms budget before a worker sees it.
    let (server, handler, addr) = server_with(ServerConfig {
        max_queue: 4,
        ..tiny_timeouts()
    });
    let mut client = Client::connect(&addr, "deadline").expect("connect");
    client
        .send(&Request::Submit {
            client_job_id: 1,
            deadline_ms: 0,
            payload: job(200, b"blocker"),
        })
        .expect("submit blocker");
    client
        .send(&Request::Submit {
            client_job_id: 2,
            deadline_ms: 50,
            payload: job(0, b"doomed"),
        })
        .expect("submit doomed");
    let mut spill = Vec::new();
    let reply = take_or_recv(&mut client, &mut spill, |r| {
        matches!(r, Response::Expired { .. })
    });
    assert!(
        matches!(
            reply,
            Response::Expired {
                client_job_id: 2,
                ..
            }
        ),
        "got {reply:?}"
    );
    // The blocker's own Done also arrives — the single worker sends it
    // just before the Expired, so it is usually in the spill already.
    let reply = take_or_recv(&mut client, &mut spill, |r| {
        matches!(
            r,
            Response::Done {
                client_job_id: 1,
                ..
            }
        )
    });
    assert!(matches!(reply, Response::Done { .. }));
    assert!(
        !spill.iter().any(|r| matches!(
            r,
            Response::Done {
                client_job_id: 2,
                ..
            }
        )),
        "the expired job must not also complete: {spill:?}"
    );
    server.shutdown();
    assert_eq!(server.stats().expired, 1);
    assert_eq!(
        handler.executed.load(Ordering::SeqCst),
        1,
        "the expired job must never execute"
    );
}

#[test]
fn shutdown_drains_accepted_jobs_and_delivers_every_reply() {
    // Accept a burst, then shut down while most of it is still queued:
    // every accepted job must still get its terminal Done, delivered
    // before the server cuts the sockets.
    let (server, _, addr) = server_with(ServerConfig {
        workers: 2,
        max_queue: 32,
        read_timeout: Duration::from_millis(150),
        server_name: "drain".to_string(),
    });
    let mut client = Client::connect(&addr, "drainee").expect("connect");
    const N: u64 = 8;
    for i in 0..N {
        client
            .send(&Request::Submit {
                client_job_id: i,
                deadline_ms: 0,
                payload: job(10, &i.to_le_bytes()),
            })
            .expect("submit");
    }
    let mut accepted = 0;
    let mut done = 0;
    while accepted < N {
        match client.recv().expect("acceptance") {
            Response::Accepted { .. } => accepted += 1,
            Response::Done { .. } => done += 1,
            other => panic!("unexpected during submit burst: {other:?}"),
        }
    }
    // Drain from another thread while replies are still outstanding.
    let drainer = {
        let server = &server;
        std::thread::scope(|s| {
            let h = s.spawn(|| server.shutdown());
            // Collect the remaining Dones; the drain guarantee says all
            // N arrive even though shutdown raced the queue.
            while done < N {
                match client.recv().expect("drained reply") {
                    Response::Done { .. } => done += 1,
                    other => panic!("unexpected during drain: {other:?}"),
                }
            }
            h.join().expect("shutdown thread");
            done
        })
    };
    assert_eq!(drainer, N);
    let stats = server.stats();
    assert_eq!(stats.completed, N, "drain must answer every accepted job");
    assert_eq!(stats.queued, 0);
    // New connections are refused outright once the server is down.
    assert!(Client::connect(&addr, "late").is_err());
}
