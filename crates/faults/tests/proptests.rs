//! Property-based tests for the fault layer (gopim-testkit).

use gopim_faults::{FaultConfig, FaultPlan, FaultSession, MitigationPolicy, SessionConfig};
use gopim_testkit::prop::{check_with, Config};

fn event_key(e: &gopim_faults::FaultEvent) -> (u64, usize, u32) {
    (e.time_ns.to_bits(), e.stage, e.group)
}

#[test]
fn higher_fault_rate_injects_a_superset_of_events() {
    check_with(
        "higher_fault_rate_injects_a_superset_of_events",
        Config::cases(64),
        |d| {
            let seed = d.draw("seed", 0u64..1_000_000);
            let shape = d.vec("stage_groups", 1usize..5, |d| d.draw("groups", 0usize..64));
            let lo_rate = d.draw("lo_rate", 0.0f64..0.5);
            let hi_rate = lo_rate + d.draw("rate_gap", 0.0f64..0.5);
            let cfg = |rate| FaultConfig {
                seed,
                stuck_rate: rate,
                transient_rate: 0.0,
                horizon_ns: 1e6,
            };
            let lo = FaultPlan::generate(cfg(lo_rate), &shape);
            let hi = FaultPlan::generate(cfg(hi_rate), &shape);
            let hi_keys: Vec<_> = hi.events().iter().map(event_key).collect();
            for e in lo.events() {
                assert!(
                    hi_keys.contains(&event_key(e)),
                    "event {e:?} from rate {lo_rate} missing at rate {hi_rate}"
                );
            }
            // Superset of events ⇒ no fewer dead groups at any time,
            // at every spare-column budget.
            for (stage, _) in shape.iter().enumerate() {
                for spare_cols in [0u32, 2, 8] {
                    for t in [0.0, 3e5, 1e6] {
                        assert!(
                            hi.dead_groups(stage, t, spare_cols).len()
                                >= lo.dead_groups(stage, t, spare_cols).len()
                        );
                    }
                }
            }
        },
    );
}

#[test]
fn plans_and_sessions_replay_bit_identically_from_the_seed() {
    check_with(
        "plans_and_sessions_replay_bit_identically_from_the_seed",
        Config::cases(48),
        |d| {
            let seed = d.draw("seed", 0u64..1_000_000);
            let shape = d.vec("stage_groups", 1usize..4, |d| d.draw("groups", 1usize..32));
            let cfg = FaultConfig {
                seed,
                stuck_rate: d.draw("stuck_rate", 0.0f64..1.0),
                transient_rate: d.draw("transient_rate", 0.0f64..0.3),
                horizon_ns: 1e6,
            };
            let policy = d.pick("policy", &MitigationPolicy::ALL);
            assert_eq!(
                FaultPlan::generate(cfg, &shape),
                FaultPlan::generate(cfg, &shape)
            );
            let mut scfg = SessionConfig::new(policy);
            scfg.spare_groups = d.draw("spares", 0usize..4);
            let mk = || FaultSession::new(FaultPlan::generate(cfg, &shape), scfg, &shape);
            let (mut a, mut b) = (mk(), mk());
            for mb in 0..24usize {
                let stage = mb % shape.len();
                let now = mb as f64 * 5e4;
                let x = a.write(stage, mb, now, 700.0);
                let y = b.write(stage, mb, now, 700.0);
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.stats(), b.stats());
        },
    );
}

#[test]
fn mitigation_only_adds_write_time_so_write_energy_is_conserved() {
    check_with(
        "mitigation_only_adds_write_time_so_write_energy_is_conserved",
        Config::cases(48),
        |d| {
            let shape = d.vec("stage_groups", 1usize..4, |d| d.draw("groups", 1usize..32));
            let cfg = FaultConfig {
                seed: d.draw("seed", 0u64..1_000_000),
                stuck_rate: d.draw("stuck_rate", 0.0f64..1.0),
                transient_rate: d.draw("transient_rate", 0.0f64..0.5),
                horizon_ns: 1e6,
            };
            let policy = d.pick("policy", &MitigationPolicy::ALL);
            let mut scfg = SessionConfig::new(policy);
            scfg.spare_groups = d.draw("spares", 0usize..3);
            let mut s = FaultSession::new(FaultPlan::generate(cfg, &shape), scfg, &shape);
            let mut base_total = 0.0;
            let mut eff_total = 0.0;
            for mb in 0..32usize {
                let stage = mb % shape.len();
                let base = d.draw("base_ns", 1.0f64..5000.0);
                let eff = s.write(stage, mb, mb as f64 * 4e4, base);
                assert!(eff >= base, "write got cheaper: {eff} < {base}");
                base_total += base;
                eff_total += eff;
            }
            assert!(eff_total >= base_total);
            let stats = s.stats();
            assert!((eff_total - base_total - stats.extra_write_ns).abs() < 1e-6);
            assert!(stats.extra_rows >= 0.0);
        },
    );
}

#[test]
fn zero_rate_plans_are_inert_regardless_of_shape() {
    check_with(
        "zero_rate_plans_are_inert_regardless_of_shape",
        Config::cases(32),
        |d| {
            let shape = d.vec("stage_groups", 1usize..6, |d| d.draw("groups", 0usize..128));
            let cfg = FaultConfig {
                seed: d.draw("seed", 0u64..1_000_000),
                stuck_rate: 0.0,
                transient_rate: 0.0,
                horizon_ns: 1e9,
            };
            let plan = FaultPlan::generate(cfg, &shape);
            assert!(plan.is_inert());
            let mut s =
                FaultSession::new(plan, SessionConfig::new(MitigationPolicy::Remap), &shape);
            let base = d.draw("base_ns", 0.0f64..1e6);
            let out = s.write(0, 0, 1e18, base);
            assert_eq!(out.to_bits(), base.to_bits());
        },
    );
}
