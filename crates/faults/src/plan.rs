//! Deterministic, prefix-monotone fault schedules.
//!
//! A [`FaultPlan`] is generated once per campaign point from a
//! [`FaultConfig`] and the `stages × groups` shape of the workload.
//! Generation draws a *full* permutation of candidate (group, time,
//! kind) tuples per stage from a seeded stream, then keeps the first
//! `round(stuck_rate · groups)` of them. Two plans that differ only in
//! `stuck_rate` therefore share a common prefix: the higher-rate plan
//! injects a strict superset of the lower-rate plan's events. That
//! construction is what makes "more faults ⇒ no fewer dead groups"
//! hold by design rather than by accident.

use gopim_rng::rngs::SmallRng;
use gopim_rng::seq::SliceRandom;
use gopim_rng::{mix_seed, Rng, SeedableRng};

/// Per-stage RNG stream tag, XORed into [`mix_seed`] so fault draws
/// never alias other seeded streams in the workspace.
const STREAM_TAG: u64 = 0xFA17;

/// Maximum number of stuck columns a single stuck-at event covers.
/// Events at or below the crossbar's spare-column budget are absorbed
/// without killing the group.
pub const MAX_STUCK_COLS: u32 = 8;

/// What went wrong with a crossbar group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `cols` bitline columns read as all-zero conductance.
    StuckAtZero {
        /// Number of affected columns (1..=[`MAX_STUCK_COLS`]).
        cols: u32,
    },
    /// `cols` bitline columns read as full-scale conductance.
    StuckAtOne {
        /// Number of affected columns (1..=[`MAX_STUCK_COLS`]).
        cols: u32,
    },
    /// The group exhausted its endurance write budget; the whole
    /// crossbar is considered dead regardless of spare columns.
    WearOut,
}

impl FaultKind {
    /// Whether the event kills its group outright given `spare_cols`
    /// spare columns available for in-crossbar remapping.
    pub fn is_fatal(&self, spare_cols: u32) -> bool {
        match *self {
            FaultKind::StuckAtZero { cols } | FaultKind::StuckAtOne { cols } => cols > spare_cols,
            FaultKind::WearOut => true,
        }
    }
}

/// One fault striking one crossbar group at one simulated instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulated time at which the fault manifests.
    pub time_ns: f64,
    /// Pipeline stage index the group belongs to.
    pub stage: usize,
    /// Crossbar-group index within the stage.
    pub group: u32,
    /// Failure mode.
    pub kind: FaultKind,
}

/// Campaign knobs for one fault plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for every fault draw (plan events and transient failures).
    pub seed: u64,
    /// Fraction of each stage's groups struck by a stuck-at event
    /// within the horizon (0.0 disables stuck-at injection).
    pub stuck_rate: f64,
    /// Per-write-attempt probability of a transient programming
    /// failure (0.0 disables; drawn lazily by the session).
    pub transient_rate: f64,
    /// Simulated window over which event times are drawn, ns.
    pub horizon_ns: f64,
}

impl FaultConfig {
    /// A config that injects nothing — the zero-cost disabled path.
    pub fn disabled() -> Self {
        FaultConfig {
            seed: 0,
            stuck_rate: 0.0,
            transient_rate: 0.0,
            horizon_ns: 0.0,
        }
    }
}

/// A time-sorted, replayable schedule of fault events.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    config: FaultConfig,
    events: Vec<FaultEvent>,
    stages: usize,
}

impl FaultPlan {
    /// The empty plan: no events, no transient failures.
    pub fn disabled() -> Self {
        FaultPlan {
            config: FaultConfig::disabled(),
            events: Vec::new(),
            stages: 0,
        }
    }

    /// Generates the schedule for a workload with `stage_groups[i]`
    /// crossbar groups at stage `i` (0 for stages with no mapped
    /// substrate, e.g. combination-only stages).
    ///
    /// Prefix-monotone: with `seed`, `horizon_ns` and `stage_groups`
    /// fixed, raising `stuck_rate` yields a superset of events.
    pub fn generate(config: FaultConfig, stage_groups: &[usize]) -> Self {
        let mut events = Vec::new();
        if config.stuck_rate > 0.0 && config.horizon_ns > 0.0 {
            for (stage, &groups) in stage_groups.iter().enumerate() {
                if groups == 0 {
                    continue;
                }
                let stream = mix_seed(config.seed, (stage as u64) ^ STREAM_TAG);
                let mut rng = SmallRng::seed_from_u64(stream);
                let mut order: Vec<u32> = (0..groups as u32).collect();
                order.shuffle(&mut rng);
                // Draw time and kind for EVERY candidate in the fixed
                // shuffled order, then truncate: this is the prefix
                // that makes superset plans supersets.
                let draws: Vec<FaultEvent> = order
                    .iter()
                    .map(|&group| {
                        let time_ns = rng.gen_range(0.0..config.horizon_ns);
                        let cols = rng.gen_range(1..=MAX_STUCK_COLS);
                        let kind = if rng.gen::<f64>() < 0.5 {
                            FaultKind::StuckAtZero { cols }
                        } else {
                            FaultKind::StuckAtOne { cols }
                        };
                        FaultEvent {
                            time_ns,
                            stage,
                            group,
                            kind,
                        }
                    })
                    .collect();
                let struck = ((config.stuck_rate * groups as f64).round() as usize).min(groups);
                events.extend_from_slice(&draws[..struck]);
            }
        }
        let mut plan = FaultPlan {
            config,
            events,
            stages: stage_groups.len(),
        };
        plan.sort_events();
        plan
    }

    /// Appends a wear-out death for `group` at `stage`, e.g. computed
    /// from endurance counters crossing their write budget.
    pub fn with_wearout(mut self, stage: usize, group: u32, time_ns: f64) -> Self {
        self.push_event(FaultEvent {
            time_ns,
            stage,
            group,
            kind: FaultKind::WearOut,
        });
        self
    }

    /// Inserts an event, keeping the schedule time-sorted.
    pub fn push_event(&mut self, event: FaultEvent) {
        self.stages = self.stages.max(event.stage + 1);
        self.events.push(event);
        self.sort_events();
    }

    fn sort_events(&mut self) {
        self.events.sort_by(|a, b| {
            a.time_ns
                .total_cmp(&b.time_ns)
                .then(a.stage.cmp(&b.stage))
                .then(a.group.cmp(&b.group))
        });
    }

    /// The config this plan was generated from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// All scheduled events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of stages the plan spans.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// True when the plan can never perturb a run: no events and no
    /// transient failures. Sessions over an inert plan return write
    /// latencies bitwise unchanged.
    pub fn is_inert(&self) -> bool {
        self.events.is_empty() && self.config.transient_rate == 0.0
    }

    /// Groups of `stage` killed by events at `time_ns` or earlier,
    /// given `spare_cols` spare columns per crossbar (sorted, dedup).
    pub fn dead_groups(&self, stage: usize, time_ns: f64, spare_cols: u32) -> Vec<u32> {
        let mut dead: Vec<u32> = self
            .events
            .iter()
            .filter(|e| e.stage == stage && e.time_ns <= time_ns && e.kind.is_fatal(spare_cols))
            .map(|e| e.group)
            .collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }
}

impl gopim_cache::CanonicalHash for FaultConfig {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("faults.config/v1");
        h.write_u64(self.seed);
        h.write_f64(self.stuck_rate);
        h.write_f64(self.transient_rate);
        h.write_f64(self.horizon_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: f64) -> FaultConfig {
        FaultConfig {
            seed: 42,
            stuck_rate: rate,
            transient_rate: 0.0,
            horizon_ns: 1e6,
        }
    }

    #[test]
    fn disabled_plan_is_inert() {
        let plan = FaultPlan::disabled();
        assert!(plan.is_inert());
        assert!(plan.events().is_empty());
        let zero_rate = FaultPlan::generate(cfg(0.0), &[4, 8, 8, 8]);
        assert!(zero_rate.is_inert());
    }

    #[test]
    fn generation_replays_bit_identically() {
        let a = FaultPlan::generate(cfg(0.3), &[0, 16, 16, 16]);
        let b = FaultPlan::generate(cfg(0.3), &[0, 16, 16, 16]);
        assert_eq!(a, b);
        assert!(!a.events().is_empty());
    }

    #[test]
    fn event_count_tracks_rate_and_skips_empty_stages() {
        let plan = FaultPlan::generate(cfg(0.25), &[0, 16, 8, 0]);
        assert_eq!(plan.events().len(), 4 + 2);
        assert!(plan.events().iter().all(|e| e.stage == 1 || e.stage == 2));
        assert!(plan
            .events()
            .windows(2)
            .all(|w| w[0].time_ns <= w[1].time_ns));
    }

    #[test]
    fn higher_rate_is_a_superset() {
        let lo = FaultPlan::generate(cfg(0.2), &[32, 32]);
        let hi = FaultPlan::generate(cfg(0.7), &[32, 32]);
        for e in lo.events() {
            assert!(hi.events().contains(e), "missing {e:?}");
        }
        assert!(hi.events().len() > lo.events().len());
    }

    #[test]
    fn dead_groups_respects_time_and_spares() {
        let mut plan = FaultPlan::disabled();
        plan.push_event(FaultEvent {
            time_ns: 10.0,
            stage: 1,
            group: 3,
            kind: FaultKind::StuckAtZero { cols: 2 },
        });
        plan.push_event(FaultEvent {
            time_ns: 20.0,
            stage: 1,
            group: 5,
            kind: FaultKind::WearOut,
        });
        // cols=2 absorbed by 2 spare columns; wear-out never is.
        assert_eq!(plan.dead_groups(1, 30.0, 2), vec![5]);
        assert_eq!(plan.dead_groups(1, 30.0, 1), vec![3, 5]);
        assert_eq!(plan.dead_groups(1, 15.0, 0), vec![3]);
        assert!(plan.dead_groups(0, 30.0, 0).is_empty());
    }

    #[test]
    fn with_wearout_keeps_sorted_order() {
        let plan = FaultPlan::generate(cfg(0.5), &[16]).with_wearout(0, 2, 0.5);
        assert_eq!(plan.events()[0].kind, FaultKind::WearOut);
        assert!(plan
            .events()
            .windows(2)
            .all(|w| w[0].time_ns <= w[1].time_ns));
    }
}
