//! Deterministic ReRAM fault injection for the GoPIM pipeline.
//!
//! ReRAM crossbars fail: cells get stuck at 0 or 1, endurance budgets
//! run out mid-campaign (§IV, Table II — the very pressure selective
//! updating exists to relieve), and individual write pulses fail
//! transiently. This crate models those failures as a *deterministic,
//! seeded schedule* so that a faulty run replays bit-identically from
//! its seed, and so that the fault layer is provably zero-cost when
//! disabled.
//!
//! Two layers:
//!
//! - [`FaultPlan`] ([`plan`]): a pre-materialised, time-sorted list of
//!   [`FaultEvent`]s (stuck-at / wear-out) over a `stages × groups`
//!   grid, generated *prefix-monotonically* from a
//!   [`FaultConfig`] — raising the fault rate only appends events,
//!   never reshuffles them, so a superset plan always kills a superset
//!   of groups.
//! - [`FaultSession`] ([`session`]): consumes a plan during a
//!   simulation, firing events as simulated time passes each write,
//!   and applies a [`MitigationPolicy`] (do nothing, retry with capped
//!   backoff, or remap onto spare groups) while accounting every extra
//!   nanosecond and rewritten row for the energy model.
//!
//! Invariants the property tests pin down:
//!
//! - superset plan ⇒ no fewer dead groups at any time;
//! - an inert session (empty plan, zero transient rate) returns each
//!   write latency *bitwise unchanged*;
//! - mitigation only ever adds time: total effective write time ≥
//!   fault-free write time, so write energy is conserved or exceeded.

#![warn(missing_docs)]

pub mod plan;
pub mod session;

pub use plan::{FaultConfig, FaultEvent, FaultKind, FaultPlan};
pub use session::{FaultSession, MitigationPolicy, SessionConfig, SessionStats};
