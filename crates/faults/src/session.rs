//! Replaying a [`FaultPlan`] through a live simulation.
//!
//! A [`FaultSession`] sits between the DES write path and the plan:
//! each simulated write calls [`FaultSession::write`] with the current
//! simulated time and the fault-free write latency, and gets back the
//! *effective* latency after any events that became due have fired and
//! the configured [`MitigationPolicy`] has reacted. Everything the
//! session does is deterministic in the plan's seed — transient
//! failures are drawn from a stream keyed by `(stage, microbatch,
//! attempt)`, not from wall-clock state — so a campaign replays
//! bit-identically.
//!
//! Zero-cost disabled path: over an inert plan, `write` returns
//! `base_ns` unchanged (same bits), no RNG is constructed, and no
//! stats move.

use crate::plan::{FaultKind, FaultPlan};
use gopim_rng::rngs::SmallRng;
use gopim_rng::{mix_seed, Rng, SeedableRng};

/// Transient-failure RNG stream tag (distinct from the plan's).
const TRANSIENT_TAG: u64 = 0x7245_5652;

/// How the pipeline reacts to faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MitigationPolicy {
    /// Accept the damage: dead groups' rows go stale, failed writes
    /// are lost. No timing change, accuracy degrades.
    Baseline,
    /// Re-issue transiently failed writes with capped exponential
    /// backoff (stuck-at deaths still drop rows — rewriting a dead
    /// cell cannot help).
    Retry,
    /// Retry transients *and* remap dead groups onto reserved spare
    /// groups, paying a one-time reprogramming cost; when spares run
    /// out, surviving groups absorb the dead groups' write load.
    Remap,
}

impl MitigationPolicy {
    /// All policies, in campaign sweep order.
    pub const ALL: [MitigationPolicy; 3] = [
        MitigationPolicy::Baseline,
        MitigationPolicy::Retry,
        MitigationPolicy::Remap,
    ];

    /// Lower-case table/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            MitigationPolicy::Baseline => "baseline",
            MitigationPolicy::Retry => "retry",
            MitigationPolicy::Remap => "remap",
        }
    }
}

/// Mitigation knobs for one session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Active policy.
    pub policy: MitigationPolicy,
    /// Latency of programming one crossbar row, ns (for costing remap
    /// reprogramming and estimating rows per retried write).
    pub ns_per_row: f64,
    /// Rows reprogrammed when one dead group is remapped to a spare
    /// (= rows dropped per dead group under non-remap policies).
    pub remap_rows: usize,
    /// Base backoff before a retry, ns.
    pub backoff_ns: f64,
    /// Backoff cap, ns.
    pub backoff_cap_ns: f64,
    /// Retries per write before giving the rows up as lost.
    pub max_retries: u32,
    /// Spare groups reserved by the allocator for remapping.
    pub spare_groups: usize,
    /// Spare columns per crossbar; stuck-at events covering at most
    /// this many columns are absorbed without killing the group.
    pub spare_cols: u32,
}

impl SessionConfig {
    /// Defaults sized for 64×64 crossbars; campaigns override
    /// `ns_per_row` and `remap_rows` from the workload's latency
    /// parameters and mapping.
    pub fn new(policy: MitigationPolicy) -> Self {
        SessionConfig {
            policy,
            ns_per_row: 100.0,
            remap_rows: 64,
            backoff_ns: 50.0,
            backoff_cap_ns: 800.0,
            max_retries: 3,
            spare_groups: 0,
            spare_cols: 2,
        }
    }
}

/// Counters accumulated over one session.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionStats {
    /// Fault events fired (fatal or absorbed).
    pub injected: u64,
    /// Dead groups successfully remapped onto spares.
    pub remapped: u64,
    /// Transient write retries issued.
    pub retries: u64,
    /// Rows lost to unmitigated faults (stale thereafter).
    pub dropped_rows: u64,
    /// Simulated time added to writes by mitigation, ns.
    pub extra_write_ns: f64,
    /// Extra crossbar rows actually rewritten (remap reprogramming +
    /// retried writes) — feeds write-energy accounting.
    pub extra_rows: f64,
}

/// Per-stage live/dead bookkeeping.
#[derive(Debug, Clone)]
struct StageState {
    events: Vec<(f64, u32, FaultKind)>,
    cursor: usize,
    dead: Vec<bool>,
    live: usize,
    /// Write-load concentration factor; exactly 1.0 until spares run
    /// out so the healthy path multiplies by literal 1.0 (bit-exact).
    write_scale: f64,
    /// One-time remap reprogramming cost charged to the next write.
    pending_ns: f64,
}

/// Live fault state threaded through a DES run.
#[derive(Debug, Clone)]
pub struct FaultSession {
    plan: FaultPlan,
    cfg: SessionConfig,
    stages: Vec<StageState>,
    spares_left: usize,
    inert: bool,
    stats: SessionStats,
}

impl FaultSession {
    /// Builds a session for a workload with `stage_groups[i]` groups
    /// at stage `i` (same shape the plan was generated over).
    pub fn new(plan: FaultPlan, cfg: SessionConfig, stage_groups: &[usize]) -> Self {
        let inert = plan.is_inert();
        let stages = stage_groups
            .iter()
            .enumerate()
            .map(|(stage, &groups)| StageState {
                events: plan
                    .events()
                    .iter()
                    .filter(|e| e.stage == stage)
                    .map(|e| (e.time_ns, e.group, e.kind))
                    .collect(),
                cursor: 0,
                dead: vec![false; groups],
                live: groups,
                write_scale: 1.0,
                pending_ns: 0.0,
            })
            .collect();
        FaultSession {
            plan,
            cfg,
            stages,
            spares_left: cfg.spare_groups,
            inert,
            stats: SessionStats::default(),
        }
    }

    /// An inert session over the given shape (the disabled path).
    pub fn disabled(stage_groups: &[usize]) -> Self {
        FaultSession::new(
            FaultPlan::disabled(),
            SessionConfig::new(MitigationPolicy::Baseline),
            stage_groups,
        )
    }

    /// Effective latency of the write of micro-batch `microbatch` at
    /// `stage`, dispatched at simulated time `now_ns` with fault-free
    /// latency `base_ns`. Fires every event due by `now_ns` first.
    ///
    /// Monotone: the returned latency is always ≥ `base_ns`, so total
    /// write time — and with it write energy — is conserved or
    /// exceeded, never lost. Over an inert plan the return value is
    /// `base_ns` bitwise.
    pub fn write(&mut self, stage: usize, microbatch: usize, now_ns: f64, base_ns: f64) -> f64 {
        if self.inert || stage >= self.stages.len() {
            return base_ns;
        }
        self.fire_due_events(stage, now_ns);
        let st = &mut self.stages[stage];
        let mut eff = base_ns * st.write_scale;
        if st.pending_ns > 0.0 {
            eff += st.pending_ns;
            st.pending_ns = 0.0;
        }
        if self.plan.config().transient_rate > 0.0 {
            eff += self.transient_overhead(stage, microbatch, base_ns);
        }
        if eff > base_ns {
            self.stats.extra_write_ns += eff - base_ns;
        }
        eff
    }

    fn fire_due_events(&mut self, stage: usize, now_ns: f64) {
        let spare_cols = self.cfg.spare_cols;
        let remap_rows = self.cfg.remap_rows;
        let st = &mut self.stages[stage];
        while st.cursor < st.events.len() && st.events[st.cursor].0 <= now_ns {
            let (_, group, kind) = st.events[st.cursor];
            st.cursor += 1;
            self.stats.injected += 1;
            let g = group as usize;
            if !kind.is_fatal(spare_cols) || g >= st.dead.len() || st.dead[g] {
                continue;
            }
            st.dead[g] = true;
            st.live -= 1;
            match self.cfg.policy {
                MitigationPolicy::Baseline | MitigationPolicy::Retry => {
                    self.stats.dropped_rows += remap_rows as u64;
                }
                MitigationPolicy::Remap => {
                    if self.spares_left > 0 {
                        self.spares_left -= 1;
                        self.stats.remapped += 1;
                        st.pending_ns += remap_rows as f64 * self.cfg.ns_per_row;
                        self.stats.extra_rows += remap_rows as f64;
                    } else {
                        // Spares exhausted: survivors absorb the dead
                        // groups' write load.
                        st.write_scale = st.dead.len() as f64 / st.live.max(1) as f64;
                    }
                }
            }
        }
    }

    fn transient_overhead(&mut self, stage: usize, microbatch: usize, base_ns: f64) -> f64 {
        let rate = self.plan.config().transient_rate;
        let key = ((stage as u64) << 32) ^ microbatch as u64;
        let stream = mix_seed(mix_seed(self.plan.config().seed, TRANSIENT_TAG), key);
        let mut rng = SmallRng::seed_from_u64(stream);
        let rows = if self.cfg.ns_per_row > 0.0 {
            (base_ns / self.cfg.ns_per_row).max(1.0)
        } else {
            1.0
        };
        let mut extra = 0.0;
        let mut attempt: u32 = 0;
        while rng.gen::<f64>() < rate {
            match self.cfg.policy {
                MitigationPolicy::Baseline => {
                    // The write is simply lost: rows stay stale.
                    self.stats.dropped_rows += rows as u64;
                    break;
                }
                MitigationPolicy::Retry | MitigationPolicy::Remap => {
                    if attempt >= self.cfg.max_retries {
                        self.stats.dropped_rows += rows as u64;
                        break;
                    }
                    self.stats.retries += 1;
                    let backoff = (self.cfg.backoff_ns * f64::powi(2.0, attempt as i32))
                        .min(self.cfg.backoff_cap_ns);
                    extra += base_ns + backoff;
                    self.stats.extra_rows += rows;
                    attempt += 1;
                }
            }
        }
        extra
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Whether this session can never perturb a run.
    pub fn is_inert(&self) -> bool {
        self.inert
    }

    /// Whether `group` at `stage` has died so far.
    pub fn is_dead(&self, stage: usize, group: u32) -> bool {
        self.stages
            .get(stage)
            .and_then(|st| st.dead.get(group as usize))
            .copied()
            .unwrap_or(false)
    }

    /// Live groups remaining at `stage`.
    pub fn live_groups(&self, stage: usize) -> usize {
        self.stages.get(stage).map_or(0, |st| st.live)
    }

    /// Spare groups not yet consumed by remapping.
    pub fn spares_left(&self) -> usize {
        self.spares_left
    }

    /// The plan being replayed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The mitigation configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultConfig, FaultEvent};

    fn one_death_plan(time_ns: f64) -> FaultPlan {
        let mut plan = FaultPlan::disabled();
        plan.push_event(FaultEvent {
            time_ns,
            stage: 0,
            group: 1,
            kind: FaultKind::WearOut,
        });
        plan
    }

    #[test]
    fn inert_session_returns_base_bits() {
        let mut s = FaultSession::disabled(&[4, 4]);
        for (i, base) in [0.0, 1.5, 1e9, 0.1 + 0.2].into_iter().enumerate() {
            let out = s.write(i % 2, i, 1e12, base);
            assert_eq!(out.to_bits(), base.to_bits());
        }
        assert_eq!(*s.stats(), SessionStats::default());
    }

    #[test]
    fn events_fire_only_once_due() {
        let mut cfg = SessionConfig::new(MitigationPolicy::Baseline);
        cfg.remap_rows = 10;
        let mut s = FaultSession::new(one_death_plan(100.0), cfg, &[4]);
        assert_eq!(s.write(0, 0, 50.0, 7.0), 7.0);
        assert_eq!(s.stats().injected, 0);
        assert_eq!(s.write(0, 1, 100.0, 7.0), 7.0); // baseline: no slowdown
        assert_eq!(s.stats().injected, 1);
        assert_eq!(s.stats().dropped_rows, 10);
        assert!(s.is_dead(0, 1));
        assert_eq!(s.live_groups(0), 3);
    }

    #[test]
    fn remap_charges_one_time_cost_and_consumes_a_spare() {
        let mut cfg = SessionConfig::new(MitigationPolicy::Remap);
        cfg.spare_groups = 1;
        cfg.remap_rows = 8;
        cfg.ns_per_row = 10.0;
        let mut s = FaultSession::new(one_death_plan(0.0), cfg, &[4]);
        let first = s.write(0, 0, 1.0, 100.0);
        assert_eq!(first, 100.0 + 80.0);
        assert_eq!(s.spares_left(), 0);
        assert_eq!(s.stats().remapped, 1);
        assert_eq!(s.stats().extra_rows, 8.0);
        // Cost is one-time; subsequent writes are clean.
        assert_eq!(s.write(0, 1, 2.0, 100.0), 100.0);
    }

    #[test]
    fn exhausted_spares_concentrate_write_load() {
        let cfg = SessionConfig::new(MitigationPolicy::Remap); // 0 spares
        let mut s = FaultSession::new(one_death_plan(0.0), cfg, &[4]);
        let eff = s.write(0, 0, 1.0, 90.0);
        assert_eq!(eff, 90.0 * (4.0 / 3.0));
        assert_eq!(s.stats().remapped, 0);
    }

    #[test]
    fn transient_retries_are_deterministic_and_capped() {
        let plan = FaultPlan::generate(
            FaultConfig {
                seed: 9,
                stuck_rate: 0.0,
                transient_rate: 0.9,
                horizon_ns: 1.0,
            },
            &[2],
        );
        let mk = || {
            let mut cfg = SessionConfig::new(MitigationPolicy::Retry);
            cfg.max_retries = 2;
            FaultSession::new(plan.clone(), cfg, &[2])
        };
        let (mut a, mut b) = (mk(), mk());
        let mut any_retry = false;
        for mb in 0..32 {
            let (x, y) = (
                a.write(0, mb, mb as f64, 500.0),
                b.write(0, mb, mb as f64, 500.0),
            );
            assert_eq!(x.to_bits(), y.to_bits());
            assert!(x >= 500.0);
            any_retry |= x > 500.0;
        }
        assert!(any_retry, "rate 0.9 over 32 writes must retry");
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().retries <= 32 * 2);
        // Baseline drops instead of retrying, and never slows down.
        let mut base =
            FaultSession::new(plan, SessionConfig::new(MitigationPolicy::Baseline), &[2]);
        for mb in 0..32 {
            assert_eq!(base.write(0, mb, mb as f64, 500.0), 500.0);
        }
        assert_eq!(base.stats().retries, 0);
        assert!(base.stats().dropped_rows > 0);
    }
}
