//! Element-wise and broadcast operations on [`Matrix`].

use crate::Matrix;

/// Element-wise sum `a + b`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "shape mismatch in add");
    zip(a, b, |x, y| x + y)
}

/// Element-wise difference `a − b`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "shape mismatch in sub");
    zip(a, b, |x, y| x - y)
}

/// Element-wise (Hadamard) product.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "shape mismatch in hadamard");
    zip(a, b, |x, y| x * y)
}

/// Scales every element by `s`.
pub fn scale(a: &Matrix, s: f64) -> Matrix {
    a.map(|x| x * s)
}

/// Adds row-vector `bias` (1 × cols) to every row of `a`.
///
/// # Panics
///
/// Panics if `bias` is not a single row of matching width.
pub fn add_bias(a: &Matrix, bias: &Matrix) -> Matrix {
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), a.cols(), "bias width mismatch");
    let mut out = a.clone();
    for r in 0..out.rows() {
        for (o, &b) in out.row_mut(r).iter_mut().zip(bias.row(0)) {
            *o += b;
        }
    }
    out
}

/// Sums the rows of `a` into a 1 × cols row vector (gradient of a
/// broadcast bias).
pub fn sum_rows(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(1, a.cols());
    for r in 0..a.rows() {
        for (o, &x) in out.row_mut(0).iter_mut().zip(a.row(r)) {
            *o += x;
        }
    }
    out
}

/// In-place accumulation `acc += x`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn accumulate(acc: &mut Matrix, x: &Matrix) {
    assert_eq!(acc.shape(), x.shape(), "shape mismatch in accumulate");
    for (a, &b) in acc.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *a += b;
    }
}

fn zip(a: &Matrix, b: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Matrix::from_vec(a.rows(), a.cols(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.5, -1.0]]);
        assert_eq!(sub(&add(&a, &b), &b), a);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Matrix::from_rows(&[&[2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[4.0, -1.0]]);
        assert_eq!(hadamard(&a, &b), Matrix::from_rows(&[&[8.0, -3.0]]));
    }

    #[test]
    fn bias_broadcasts_over_rows() {
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        let out = add_bias(&a, &b);
        assert_eq!(out, Matrix::from_rows(&[&[10.0, 20.0], &[11.0, 21.0]]));
    }

    #[test]
    fn sum_rows_is_bias_gradient() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(sum_rows(&a), Matrix::from_rows(&[&[4.0, 6.0]]));
    }

    #[test]
    fn accumulate_adds_in_place() {
        let mut acc = Matrix::zeros(1, 2);
        accumulate(&mut acc, &Matrix::from_rows(&[&[1.0, 2.0]]));
        accumulate(&mut acc, &Matrix::from_rows(&[&[1.0, 2.0]]));
        assert_eq!(acc, Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_mismatched_shapes() {
        let _ = add(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1));
    }
}
