//! Element-wise and broadcast operations on [`Matrix`].
//!
//! The loops here are per-element pure, so they parallelize with a
//! fixed chunk length: every element's value is independent of which
//! chunk (and therefore which thread) computed it, keeping outputs
//! bit-identical at any pool size.

use crate::Matrix;
use gopim_obs::metrics::LazyCounter;

/// Fixed element count per parallel task — large enough to amortize
/// dispatch, and independent of the pool size by construction.
const ELEMWISE_CHUNK: usize = 32 * 1024;

static ELEMWISE_CALLS: LazyCounter = LazyCounter::new("linalg.elemwise.calls");
static ELEMWISE_ELEMS: LazyCounter = LazyCounter::new("linalg.elemwise.elems");

/// Element-wise sum `a + b`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn add(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "shape mismatch in add");
    zip(a, b, |x, y| x + y)
}

/// Element-wise difference `a − b`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn sub(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "shape mismatch in sub");
    zip(a, b, |x, y| x - y)
}

/// Element-wise (Hadamard) product.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "shape mismatch in hadamard");
    zip(a, b, |x, y| x * y)
}

/// Scales every element by `s`.
pub fn scale(a: &Matrix, s: f64) -> Matrix {
    a.map(|x| x * s)
}

/// In-place `delta ⊙ relu'(pre)`: multiplies each element of `delta`
/// by 1 where the pre-activation is positive and 0 elsewhere.
/// Bit-identical to `hadamard(delta, &relu_grad(pre))` without the two
/// intermediate allocations — the backward pass runs it once per
/// hidden layer on an `N × d` gradient.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn hadamard_relu_grad_in_place(delta: &mut Matrix, pre: &Matrix) {
    assert_eq!(
        delta.shape(),
        pre.shape(),
        "shape mismatch in hadamard_relu_grad_in_place"
    );
    let elems = delta.as_slice().len();
    let _span = gopim_obs::span!("linalg.hadamard_relu_grad", elems);
    ELEMWISE_CALLS.add(1);
    ELEMWISE_ELEMS.add(elems as u64);
    let ps = pre.as_slice();
    gopim_par::par_chunks_mut(delta.as_mut_slice(), ELEMWISE_CHUNK, |i, chunk| {
        let base = i * ELEMWISE_CHUNK;
        for (d, &p) in chunk.iter_mut().zip(&ps[base..]) {
            *d *= if p > 0.0 { 1.0 } else { 0.0 };
        }
    });
}

/// Adds row-vector `bias` (1 × cols) to every row of `a`.
///
/// # Panics
///
/// Panics if `bias` is not a single row of matching width.
pub fn add_bias(a: &Matrix, bias: &Matrix) -> Matrix {
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), a.cols(), "bias width mismatch");
    let mut out = a.clone();
    let cols = a.cols();
    if cols == 0 {
        return out;
    }
    let elems = out.as_slice().len();
    let _span = gopim_obs::span!("linalg.add_bias", elems);
    ELEMWISE_CALLS.add(1);
    ELEMWISE_ELEMS.add(elems as u64);
    let brow = bias.row(0);
    // Whole rows per chunk so the bias broadcast never splits a row.
    let chunk_len = (ELEMWISE_CHUNK / cols).max(1) * cols;
    gopim_par::par_chunks_mut(out.as_mut_slice(), chunk_len, |_, chunk| {
        for row in chunk.chunks_mut(cols) {
            for (o, &b) in row.iter_mut().zip(brow) {
                *o += b;
            }
        }
    });
    out
}

/// Sums the rows of `a` into a 1 × cols row vector (gradient of a
/// broadcast bias).
pub fn sum_rows(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(1, a.cols());
    for r in 0..a.rows() {
        for (o, &x) in out.row_mut(0).iter_mut().zip(a.row(r)) {
            *o += x;
        }
    }
    out
}

/// In-place accumulation `acc += x`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn accumulate(acc: &mut Matrix, x: &Matrix) {
    assert_eq!(acc.shape(), x.shape(), "shape mismatch in accumulate");
    let elems = acc.as_slice().len();
    let _span = gopim_obs::span!("linalg.accumulate", elems);
    ELEMWISE_CALLS.add(1);
    ELEMWISE_ELEMS.add(elems as u64);
    let xs = x.as_slice();
    gopim_par::par_chunks_mut(acc.as_mut_slice(), ELEMWISE_CHUNK, |i, chunk| {
        let base = i * ELEMWISE_CHUNK;
        for (a, &b) in chunk.iter_mut().zip(&xs[base..]) {
            *a += b;
        }
    });
}

fn zip(a: &Matrix, b: &Matrix, f: impl Fn(f64, f64) -> f64 + Sync) -> Matrix {
    let elems = a.as_slice().len();
    let _span = gopim_obs::span!("linalg.zip", elems);
    ELEMWISE_CALLS.add(1);
    ELEMWISE_ELEMS.add(elems as u64);
    let mut out = a.clone();
    let bs = b.as_slice();
    gopim_par::par_chunks_mut(out.as_mut_slice(), ELEMWISE_CHUNK, |i, chunk| {
        let base = i * ELEMWISE_CHUNK;
        for (o, &y) in chunk.iter_mut().zip(&bs[base..]) {
            *o = f(*o, y);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[0.5, -1.0]]);
        assert_eq!(sub(&add(&a, &b), &b), a);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Matrix::from_rows(&[&[2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[4.0, -1.0]]);
        assert_eq!(hadamard(&a, &b), Matrix::from_rows(&[&[8.0, -3.0]]));
    }

    #[test]
    fn bias_broadcasts_over_rows() {
        let a = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[10.0, 20.0]]);
        let out = add_bias(&a, &b);
        assert_eq!(out, Matrix::from_rows(&[&[10.0, 20.0], &[11.0, 21.0]]));
    }

    #[test]
    fn sum_rows_is_bias_gradient() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(sum_rows(&a), Matrix::from_rows(&[&[4.0, 6.0]]));
    }

    #[test]
    fn accumulate_adds_in_place() {
        let mut acc = Matrix::zeros(1, 2);
        accumulate(&mut acc, &Matrix::from_rows(&[&[1.0, 2.0]]));
        accumulate(&mut acc, &Matrix::from_rows(&[&[1.0, 2.0]]));
        assert_eq!(acc, Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_mismatched_shapes() {
        let _ = add(&Matrix::zeros(1, 2), &Matrix::zeros(2, 1));
    }
}
