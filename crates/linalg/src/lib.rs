//! Dense linear algebra and neural-network primitives for the GoPIM
//! reproduction.
//!
//! Two consumers inside the workspace:
//!
//! - the ML-based *Time Predictor* (§V-A of the paper) — a 3-layer MLP
//!   regressor with a 256-neuron hidden layer, trained on samples
//!   produced by the accelerator simulator;
//! - the numeric GCN training engine (`gopim-gcn`) that drives the
//!   accuracy experiments (Table V, Fig. 16).
//!
//! Everything is implemented from scratch on row-major [`Matrix`]
//! storage: matrix kernels ([`ops`]), activations ([`activation`]),
//! losses ([`loss`]), initializers ([`init`]), optimizers
//! ([`optimizer`]) and a multilayer perceptron ([`mlp::Mlp`]).
//!
//! # Example
//!
//! ```
//! use gopim_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

#![warn(missing_docs)]

pub mod activation;
pub mod arena;
pub mod init;
mod kernels;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod ops;
pub mod optimizer;
pub mod simd;

pub use matrix::Matrix;
pub use mlp::{Mlp, MlpConfig};
