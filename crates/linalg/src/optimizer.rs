//! Gradient-descent optimizers.

use crate::Matrix;

/// Plain stochastic gradient descent with optional momentum.
///
/// # Example
///
/// ```
/// use gopim_linalg::{Matrix, optimizer::Sgd};
///
/// let mut w = Matrix::from_rows(&[&[1.0]]);
/// let mut opt = Sgd::new(0.1, 0.0);
/// // Gradient of f(w) = w² is 2w; a few steps shrink w toward 0.
/// for _ in 0..50 {
///     let g = w.map(|x| 2.0 * x);
///     opt.step(&mut w, &g);
/// }
/// assert!(w[(0, 0)].abs() < 1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f64,
    momentum: f64,
    velocity: Option<Matrix>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate <= 0` or `momentum ∉ [0, 1)`.
    pub fn new(learning_rate: f64, momentum: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            learning_rate,
            momentum,
            velocity: None,
        }
    }

    /// Applies one update `param -= lr * (grad + momentum-term)`.
    ///
    /// # Panics
    ///
    /// Panics if `grad` and `param` shapes differ, or if the shape
    /// changes between calls.
    pub fn step(&mut self, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), grad.shape(), "shape mismatch in sgd step");
        if self.momentum == 0.0 {
            for (p, &g) in param.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *p -= self.learning_rate * g;
            }
            return;
        }
        let v = self
            .velocity
            .get_or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
        assert_eq!(v.shape(), param.shape(), "parameter shape changed");
        for ((p, vel), &g) in param
            .as_mut_slice()
            .iter_mut()
            .zip(v.as_mut_slice())
            .zip(grad.as_slice())
        {
            *vel = self.momentum * *vel + g;
            *p -= self.learning_rate * *vel;
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Option<Matrix>,
    v: Option<Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate <= 0`.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: None,
            v: None,
        }
    }

    /// Updates the learning rate (for schedules such as cosine decay).
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate <= 0`.
    pub fn set_learning_rate(&mut self, learning_rate: f64) {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        self.learning_rate = learning_rate;
    }

    /// Applies one Adam update.
    ///
    /// # Panics
    ///
    /// Panics if `grad` and `param` shapes differ, or if the shape
    /// changes between calls.
    pub fn step(&mut self, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), grad.shape(), "shape mismatch in adam step");
        self.t += 1;
        let (rows, cols) = param.shape();
        let m = self.m.get_or_insert_with(|| Matrix::zeros(rows, cols));
        let v = self.v.get_or_insert_with(|| Matrix::zeros(rows, cols));
        assert_eq!(m.shape(), param.shape(), "parameter shape changed");
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (((p, mm), vv), &g) in param
            .as_mut_slice()
            .iter_mut()
            .zip(m.as_mut_slice())
            .zip(v.as_mut_slice())
            .zip(grad.as_slice())
        {
            *mm = self.beta1 * *mm + (1.0 - self.beta1) * g;
            *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
            let m_hat = *mm / bc1;
            let v_hat = *vv / bc2;
            *p -= self.learning_rate * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(w: &Matrix) -> Matrix {
        w.map(|x| 2.0 * x)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut w = Matrix::from_rows(&[&[5.0, -3.0]]);
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            let g = quadratic_grad(&w);
            opt.step(&mut w, &g);
        }
        assert!(w.frobenius_norm() < 1e-6);
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f64| {
            let mut w = Matrix::from_rows(&[&[5.0]]);
            let mut opt = Sgd::new(0.01, momentum);
            for _ in 0..100 {
                let g = quadratic_grad(&w);
                opt.step(&mut w, &g);
            }
            w[(0, 0)].abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut w = Matrix::from_rows(&[&[2.0, -2.0]]);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g = quadratic_grad(&w);
            opt.step(&mut w, &g);
        }
        assert!(w.frobenius_norm() < 1e-3, "norm {}", w.frobenius_norm());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn sgd_rejects_shape_mismatch() {
        let mut w = Matrix::zeros(1, 2);
        Sgd::new(0.1, 0.0).step(&mut w, &Matrix::zeros(2, 1));
    }
}
