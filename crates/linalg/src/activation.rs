//! Activation functions.
//!
//! GoPIM's on-chip Activation Module implements ReLU (§IV-A(4)); the
//! predictor MLP also uses ReLU hidden layers. Softmax supports the
//! classification losses of the numeric GCN experiments.

use crate::Matrix;

/// Element-wise ReLU.
pub fn relu(x: &Matrix) -> Matrix {
    x.map(|v| v.max(0.0))
}

/// Element-wise ReLU written into `out` (the allocation-free form of
/// [`relu`] for arena-backed buffers; bit-identical to it).
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn relu_into(x: &Matrix, out: &mut Matrix) {
    assert_eq!(x.shape(), out.shape(), "shape mismatch in relu_into");
    for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
        *o = v.max(0.0);
    }
}

/// Element-wise ReLU derivative evaluated at the *pre-activation* `x`
/// (1 where `x > 0`, else 0).
pub fn relu_grad(x: &Matrix) -> Matrix {
    x.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
}

/// Row-wise softmax with the max-subtraction trick for numerical
/// stability.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        assert_eq!(relu(&x), Matrix::from_rows(&[&[0.0, 0.0, 2.0]]));
    }

    #[test]
    fn relu_grad_is_indicator() {
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        assert_eq!(relu_grad(&x), Matrix::from_rows(&[&[0.0, 0.0, 1.0]]));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        // Large inputs must not overflow.
        assert!((s[(1, 0)] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_is_monotone() {
        let s = softmax_rows(&Matrix::from_rows(&[&[1.0, 3.0, 2.0]]));
        assert!(s[(0, 1)] > s[(0, 2)] && s[(0, 2)] > s[(0, 0)]);
    }
}
