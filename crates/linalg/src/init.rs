//! Weight initializers.

use gopim_rng::rngs::SmallRng;
use gopim_rng::{Rng, SeedableRng};

use crate::Matrix;

/// Xavier/Glorot uniform initialization: entries drawn uniformly from
/// `±sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let bound = (6.0 / (rows + cols) as f64).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..bound))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Uniform initialization in `[-bound, bound]`.
pub fn uniform(rows: usize, cols: usize, bound: f64, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..bound))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound() {
        let m = xavier_uniform(64, 64, 1);
        let bound = (6.0 / 128.0f64).sqrt();
        assert!(m.as_slice().iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn xavier_is_deterministic_per_seed() {
        assert_eq!(xavier_uniform(4, 4, 9), xavier_uniform(4, 4, 9));
        assert_ne!(xavier_uniform(4, 4, 9), xavier_uniform(4, 4, 10));
    }

    #[test]
    fn uniform_respects_bound() {
        let m = uniform(10, 10, 0.5, 2);
        assert!(m.as_slice().iter().all(|&v| v.abs() <= 0.5));
        // Not all zero.
        assert!(m.frobenius_norm() > 0.0);
    }
}
