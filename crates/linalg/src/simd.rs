//! Runtime-dispatched SIMD micro-kernels for the dense hot loops.
//!
//! The workspace determinism contract requires every kernel to produce
//! the *same bits* at any thread count, queue implementation, or SIMD
//! width, so only element-wise-independent loops are vectorized here:
//! each output element still accumulates its own terms in the same
//! order with the same rounding as the scalar code. Concretely, the
//! one primitive is the AXPY row update `dst[j] ← dst[j] + c·src[j]`
//! (and its four-row register-blocked variant), where lane `j` of a
//! vector is exactly scalar element `j` — reordering never happens
//! across the reduction dimension.
//!
//! Rounding parity with the scalar [`mac`](crate::kernels) helper is
//! kept by mirroring its compile-time FMA policy: on
//! `target_feature = "fma"` builds both sides fuse (one rounding), on
//! every other build both sides do a separate multiply and add. The
//! dot-product kernel (`dot_block`) is deliberately *not* vectorized:
//! its single running accumulator per output would need the reduction
//! order changed, which changes the bits.
//!
//! Dispatch policy (see DESIGN.md §11):
//!
//! - `x86_64`: AVX2 when the CPU reports it (`is_x86_feature_detected!`),
//!   checked once and cached.
//! - `aarch64`: NEON (always present on AArch64).
//! - anywhere else, or when the `GOPIM_NO_SIMD=1` kill-switch is set:
//!   the scalar fallback, which is the reference implementation the
//!   differential tests (`tests/kernel_equivalence.rs`) compare
//!   against.

use std::sync::atomic::{AtomicU8, Ordering};

/// Cached dispatch decision: 0 = undecided, 1 = SIMD on, 2 = SIMD off.
static SIMD_STATE: AtomicU8 = AtomicU8::new(0);

const STATE_ON: u8 = 1;
const STATE_OFF: u8 = 2;

fn detect() -> u8 {
    let killed = std::env::var("GOPIM_NO_SIMD")
        .map(|v| v != "0")
        .unwrap_or(false);
    if killed {
        return STATE_OFF;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return STATE_ON;
        }
        STATE_OFF
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is a baseline AArch64 feature.
        STATE_ON
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        STATE_OFF
    }
}

/// Whether the SIMD paths are active (CPU support present and
/// `GOPIM_NO_SIMD` not set). The decision is made once and cached;
/// [`set_simd_enabled`] overrides it.
#[inline]
pub fn simd_enabled() -> bool {
    match SIMD_STATE.load(Ordering::Relaxed) {
        0 => {
            let state = detect();
            SIMD_STATE.store(state, Ordering::Relaxed);
            state == STATE_ON
        }
        state => state == STATE_ON,
    }
}

/// Forces the dispatch decision — the hook the differential tests use
/// to run the same process with and without SIMD. Enabling on a CPU
/// without the required features silently stays scalar.
pub fn set_simd_enabled(enabled: bool) {
    let state = if enabled && detect() == STATE_ON {
        STATE_ON
    } else {
        STATE_OFF
    };
    SIMD_STATE.store(state, Ordering::Relaxed);
}

/// Scalar multiply-accumulate matching `kernels::mac`: fused on FMA
/// builds, separate multiply + add elsewhere.
#[inline(always)]
fn mac(acc: f64, a: f64, b: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// Reference AXPY: `dst[j] ← dst[j] + c·src[j]` element-wise.
#[inline]
pub fn axpy_scalar(dst: &mut [f64], src: &[f64], c: f64) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = mac(*d, c, s);
    }
}

/// AXPY over one row: `dst[j] ← dst[j] + c·src[j]`, SIMD when active.
///
/// Bit-identical to [`axpy_scalar`] on every dispatch path. Operates
/// on the overlapping prefix if the slices have different lengths
/// (like the scalar `zip`).
#[inline]
pub fn axpy(dst: &mut [f64], src: &[f64], c: f64) {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_enabled() {
            // SAFETY: simd_enabled() verified AVX2 support at runtime.
            unsafe { axpy_avx2(dst, src, c) };
            return;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if simd_enabled() {
            // SAFETY: NEON is a baseline AArch64 feature.
            unsafe { axpy_neon(dst, src, c) };
            return;
        }
    }
    axpy_scalar(dst, src, c);
}

/// Four-row AXPY against one shared `src` row — the inner update of
/// the register-blocked wide matmul kernel. Each output row gets its
/// own coefficient; all four stream the same `src`, so the RHS is
/// read once per four rows.
///
/// Bit-identical to four [`axpy_scalar`] calls on every dispatch path.
///
/// # Panics
///
/// Panics if the four destination rows have different lengths.
#[inline]
pub fn axpy4(dst: [&mut [f64]; 4], src: &[f64], coeffs: [f64; 4]) {
    let [d0, d1, d2, d3] = dst;
    assert!(
        d0.len() == d1.len() && d1.len() == d2.len() && d2.len() == d3.len(),
        "axpy4: destination rows must have equal lengths"
    );
    #[cfg(target_arch = "x86_64")]
    {
        if simd_enabled() {
            // SAFETY: simd_enabled() verified AVX2 support at runtime.
            unsafe { axpy4_avx2(d0, d1, d2, d3, src, coeffs) };
            return;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if simd_enabled() {
            // SAFETY: NEON is a baseline AArch64 feature.
            unsafe { axpy4_neon(d0, d1, d2, d3, src, coeffs) };
            return;
        }
    }
    axpy_scalar(d0, src, coeffs[0]);
    axpy_scalar(d1, src, coeffs[1]);
    axpy_scalar(d2, src, coeffs[2]);
    axpy_scalar(d3, src, coeffs[3]);
}

/// Per-neighbor coefficient rule for [`gather_row`].
#[derive(Debug, Clone, Copy)]
pub enum NeighborCoeffs<'a> {
    /// `coeff(u) = scale * table[u]` — the normalized-adjacency rule.
    Scaled {
        /// The output vertex's own factor (its `1/√(1+deg)`).
        scale: f64,
        /// Per-vertex factors indexed by neighbor id (`1/√(1+deg)`).
        table: &'a [f64],
    },
    /// `coeff(u) = c` for every neighbor — the mean-aggregation rule.
    Uniform(f64),
}

impl NeighborCoeffs<'_> {
    /// The coefficient for neighbor `u`. One `f64` multiply in the
    /// scaled case, so SIMD and scalar paths round identically.
    #[inline(always)]
    fn coeff(&self, u: u32) -> f64 {
        match *self {
            NeighborCoeffs::Scaled { scale, table } => scale * table[u as usize],
            NeighborCoeffs::Uniform(c) => c,
        }
    }
}

/// Neighbors per inner chunk of the SIMD gather: bounds the source
/// working set re-walked per lane block to chunk·d doubles so it stays
/// cache-resident even for hub vertices with huge degrees.
const GATHER_CHUNK: usize = 32;

/// Minimum degree for the SIMD gather path. The lane-blocked kernel
/// pays per-row call and setup costs that only amortize once the
/// register-resident accumulator is reused across several neighbors;
/// below this, the scalar row updates are as fast or faster. The
/// threshold never affects output bits — both paths are bit-identical.
const GATHER_SIMD_MIN_DEG: usize = 8;

/// Largest source matrix (bytes) the SIMD gather path accepts. The
/// lane-blocked sweep reads neighbor rows in a strided order the
/// hardware prefetcher cannot follow, so once `x` falls out of L2 every
/// line becomes a demand miss and the scalar row-streaming order (which
/// the prefetcher tracks) wins. Half a typical 2 MB L2 leaves room for
/// the output rows. Like the degree floor, this is a pure perf knob —
/// output bits are identical on both sides of it.
const GATHER_SIMD_MAX_BYTES: usize = 1 << 20;

/// Reference row gather: into `dst` (row `v`'s output, length `d`),
/// accumulate `self_coeff · x[v]` then `coeff(u) · x[u]` for each
/// neighbor in order. `x` is a row-major `n × d` matrix.
pub fn gather_row_scalar(
    dst: &mut [f64],
    x: &[f64],
    d: usize,
    v: usize,
    self_coeff: f64,
    neighbors: &[u32],
    coeffs: NeighborCoeffs,
) {
    axpy_scalar(dst, &x[v * d..v * d + d], self_coeff);
    for &u in neighbors {
        axpy_scalar(dst, &x[u as usize * d..u as usize * d + d], coeffs.coeff(u));
    }
}

/// [`gather_row_scalar`] with the whole neighbor loop inside one SIMD
/// kernel: each lane block keeps its accumulator in a register across
/// a chunk of neighbors, so the output row is loaded and stored once
/// per chunk instead of once per edge, and the per-edge dispatch
/// branch disappears.
///
/// Bit-identical to [`gather_row_scalar`] on every dispatch path: for
/// each output element the accumulation order is still self-loop
/// first, then neighbors in CSR order, with [`mac`]'s rounding.
///
/// # Panics
///
/// Panics (in debug builds) if `dst.len() != d` or an index is out of
/// bounds of `x`.
pub fn gather_row(
    dst: &mut [f64],
    x: &[f64],
    d: usize,
    v: usize,
    self_coeff: f64,
    neighbors: &[u32],
    coeffs: NeighborCoeffs,
) {
    debug_assert_eq!(dst.len(), d, "one output row of width d");
    if neighbors.len() < GATHER_SIMD_MIN_DEG || x.len() * 8 > GATHER_SIMD_MAX_BYTES {
        gather_row_scalar(dst, x, d, v, self_coeff, neighbors, coeffs);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if simd_enabled() {
            // SAFETY: simd_enabled() verified AVX2 support at runtime,
            // and every row index stays in bounds of `x` (checked
            // slices in the scalar tail, debug asserts in the body).
            unsafe { gather_row_avx2(dst, x, d, v, self_coeff, neighbors, coeffs) };
            return;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if simd_enabled() {
            // SAFETY: NEON is a baseline AArch64 feature.
            unsafe { gather_row_neon(dst, x, d, v, self_coeff, neighbors, coeffs) };
            return;
        }
    }
    gather_row_scalar(dst, x, d, v, self_coeff, neighbors, coeffs);
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Vector multiply-accumulate with the same rounding policy as the
    /// scalar `mac`: `vfmadd` on FMA builds, `mul` + `add` elsewhere.
    #[inline(always)]
    unsafe fn vmac(acc: __m256d, a: __m256d, b: __m256d) -> __m256d {
        #[cfg(target_feature = "fma")]
        {
            _mm256_fmadd_pd(a, b, acc)
        }
        #[cfg(not(target_feature = "fma"))]
        {
            _mm256_add_pd(acc, _mm256_mul_pd(a, b))
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_avx2(dst: &mut [f64], src: &[f64], c: f64) {
        let n = dst.len().min(src.len());
        let lanes = n - n % 4;
        let cv = _mm256_set1_pd(c);
        let mut j = 0;
        while j < lanes {
            let d = _mm256_loadu_pd(dst.as_ptr().add(j));
            let s = _mm256_loadu_pd(src.as_ptr().add(j));
            _mm256_storeu_pd(dst.as_mut_ptr().add(j), vmac(d, cv, s));
            j += 4;
        }
        // Non-multiple-of-lane-width tail: scalar, same rounding.
        super::axpy_scalar(&mut dst[lanes..n], &src[lanes..n], c);
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)] // four row streams + shared RHS
    pub(super) unsafe fn axpy4_avx2(
        d0: &mut [f64],
        d1: &mut [f64],
        d2: &mut [f64],
        d3: &mut [f64],
        src: &[f64],
        c: [f64; 4],
    ) {
        let n = d0.len().min(src.len());
        let lanes = n - n % 4;
        let c0 = _mm256_set1_pd(c[0]);
        let c1 = _mm256_set1_pd(c[1]);
        let c2 = _mm256_set1_pd(c[2]);
        let c3 = _mm256_set1_pd(c[3]);
        let mut j = 0;
        while j < lanes {
            let s = _mm256_loadu_pd(src.as_ptr().add(j));
            let t0 = _mm256_loadu_pd(d0.as_ptr().add(j));
            _mm256_storeu_pd(d0.as_mut_ptr().add(j), vmac(t0, c0, s));
            let t1 = _mm256_loadu_pd(d1.as_ptr().add(j));
            _mm256_storeu_pd(d1.as_mut_ptr().add(j), vmac(t1, c1, s));
            let t2 = _mm256_loadu_pd(d2.as_ptr().add(j));
            _mm256_storeu_pd(d2.as_mut_ptr().add(j), vmac(t2, c2, s));
            let t3 = _mm256_loadu_pd(d3.as_ptr().add(j));
            _mm256_storeu_pd(d3.as_mut_ptr().add(j), vmac(t3, c3, s));
            j += 4;
        }
        super::axpy_scalar(&mut d0[lanes..n], &src[lanes..n], c[0]);
        super::axpy_scalar(&mut d1[lanes..n], &src[lanes..n], c[1]);
        super::axpy_scalar(&mut d2[lanes..n], &src[lanes..n], c[2]);
        super::axpy_scalar(&mut d3[lanes..n], &src[lanes..n], c[3]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gather_row_avx2(
        dst: &mut [f64],
        x: &[f64],
        d: usize,
        v: usize,
        self_coeff: f64,
        neighbors: &[u32],
        coeffs: super::NeighborCoeffs,
    ) {
        if neighbors.is_empty() {
            axpy_avx2(dst, &x[v * d..v * d + d], self_coeff);
            return;
        }
        let lanes = d - d % 4;
        let xv = x.as_ptr().add(v * d);
        let sc = _mm256_set1_pd(self_coeff);
        let mut cbuf = [0.0f64; super::GATHER_CHUNK];
        // The self-loop is fused into the first chunk's pass so the
        // output row is loaded and stored once per chunk, never in a
        // separate self-only sweep. Per element the accumulation order
        // is still self first, then neighbors in CSR order.
        let mut first = true;
        for chunk in neighbors.chunks(super::GATHER_CHUNK) {
            // Coefficients once per chunk (same single multiply as the
            // scalar path), not once per lane block.
            for (k, &u) in chunk.iter().enumerate() {
                cbuf[k] = coeffs.coeff(u);
            }
            let mut j = 0;
            while j < lanes {
                let mut acc = _mm256_loadu_pd(dst.as_ptr().add(j));
                if first {
                    acc = vmac(acc, sc, _mm256_loadu_pd(xv.add(j)));
                }
                for (k, &u) in chunk.iter().enumerate() {
                    let s = _mm256_loadu_pd(x.as_ptr().add(u as usize * d + j));
                    acc = vmac(acc, _mm256_set1_pd(cbuf[k]), s);
                }
                _mm256_storeu_pd(dst.as_mut_ptr().add(j), acc);
                j += 4;
            }
            for jj in lanes..d {
                let mut t = dst[jj];
                if first {
                    t = super::mac(t, self_coeff, *xv.add(jj));
                }
                for (k, &u) in chunk.iter().enumerate() {
                    t = super::mac(t, cbuf[k], x[u as usize * d + jj]);
                }
                dst[jj] = t;
            }
            first = false;
        }
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{axpy4_avx2, axpy_avx2, gather_row_avx2};

#[cfg(target_arch = "aarch64")]
mod arm {
    use std::arch::aarch64::*;

    /// Vector multiply-accumulate mirroring the scalar `mac` rounding
    /// policy. `cfg(target_feature = "fma")` is never set on AArch64
    /// builds today, so this matches the unfused scalar branch there;
    /// the fused arm exists only to stay in lockstep with `mac` should
    /// that ever change.
    #[inline(always)]
    unsafe fn vmac(acc: float64x2_t, a: float64x2_t, b: float64x2_t) -> float64x2_t {
        #[cfg(target_feature = "fma")]
        {
            vfmaq_f64(acc, a, b)
        }
        #[cfg(not(target_feature = "fma"))]
        {
            vaddq_f64(acc, vmulq_f64(a, b))
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy_neon(dst: &mut [f64], src: &[f64], c: f64) {
        let n = dst.len().min(src.len());
        let lanes = n - n % 2;
        let cv = vdupq_n_f64(c);
        let mut j = 0;
        while j < lanes {
            let d = vld1q_f64(dst.as_ptr().add(j));
            let s = vld1q_f64(src.as_ptr().add(j));
            vst1q_f64(dst.as_mut_ptr().add(j), vmac(d, cv, s));
            j += 2;
        }
        super::axpy_scalar(&mut dst[lanes..n], &src[lanes..n], c);
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy4_neon(
        d0: &mut [f64],
        d1: &mut [f64],
        d2: &mut [f64],
        d3: &mut [f64],
        src: &[f64],
        c: [f64; 4],
    ) {
        let n = d0.len().min(src.len());
        let lanes = n - n % 2;
        let c0 = vdupq_n_f64(c[0]);
        let c1 = vdupq_n_f64(c[1]);
        let c2 = vdupq_n_f64(c[2]);
        let c3 = vdupq_n_f64(c[3]);
        let mut j = 0;
        while j < lanes {
            let s = vld1q_f64(src.as_ptr().add(j));
            let t0 = vld1q_f64(d0.as_ptr().add(j));
            vst1q_f64(d0.as_mut_ptr().add(j), vmac(t0, c0, s));
            let t1 = vld1q_f64(d1.as_ptr().add(j));
            vst1q_f64(d1.as_mut_ptr().add(j), vmac(t1, c1, s));
            let t2 = vld1q_f64(d2.as_ptr().add(j));
            vst1q_f64(d2.as_mut_ptr().add(j), vmac(t2, c2, s));
            let t3 = vld1q_f64(d3.as_ptr().add(j));
            vst1q_f64(d3.as_mut_ptr().add(j), vmac(t3, c3, s));
            j += 2;
        }
        super::axpy_scalar(&mut d0[lanes..n], &src[lanes..n], c[0]);
        super::axpy_scalar(&mut d1[lanes..n], &src[lanes..n], c[1]);
        super::axpy_scalar(&mut d2[lanes..n], &src[lanes..n], c[2]);
        super::axpy_scalar(&mut d3[lanes..n], &src[lanes..n], c[3]);
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn gather_row_neon(
        dst: &mut [f64],
        x: &[f64],
        d: usize,
        v: usize,
        self_coeff: f64,
        neighbors: &[u32],
        coeffs: super::NeighborCoeffs,
    ) {
        if neighbors.is_empty() {
            axpy_neon(dst, &x[v * d..v * d + d], self_coeff);
            return;
        }
        let lanes = d - d % 2;
        let xv = x.as_ptr().add(v * d);
        let sc = vdupq_n_f64(self_coeff);
        let mut cbuf = [0.0f64; super::GATHER_CHUNK];
        // Self-loop fused into the first chunk's pass (see the AVX2
        // variant): per element the order is still self first, then
        // neighbors in CSR order.
        let mut first = true;
        for chunk in neighbors.chunks(super::GATHER_CHUNK) {
            for (k, &u) in chunk.iter().enumerate() {
                cbuf[k] = coeffs.coeff(u);
            }
            let mut j = 0;
            while j < lanes {
                let mut acc = vld1q_f64(dst.as_ptr().add(j));
                if first {
                    acc = vmac(acc, sc, vld1q_f64(xv.add(j)));
                }
                for (k, &u) in chunk.iter().enumerate() {
                    let s = vld1q_f64(x.as_ptr().add(u as usize * d + j));
                    acc = vmac(acc, vdupq_n_f64(cbuf[k]), s);
                }
                vst1q_f64(dst.as_mut_ptr().add(j), acc);
                j += 2;
            }
            for jj in lanes..d {
                let mut t = dst[jj];
                if first {
                    t = super::mac(t, self_coeff, *xv.add(jj));
                }
                for (k, &u) in chunk.iter().enumerate() {
                    t = super::mac(t, cbuf[k], x[u as usize * d + jj]);
                }
                dst[jj] = t;
            }
            first = false;
        }
    }
}

#[cfg(target_arch = "aarch64")]
use arm::{axpy4_neon, axpy_neon, gather_row_neon};

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: usize, phase: f64) -> Vec<f64> {
        (0..n).map(|i| ((i as f64) * phase).sin()).collect()
    }

    #[test]
    fn axpy_matches_scalar_bitwise_across_lengths_and_alignments() {
        // Lengths straddling the 4-lane width, and offsets that shift
        // the slice off 32-byte alignment.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 64, 100] {
            for off in 0..4usize {
                let src = filled(n + off, 0.7);
                let base = filled(n + off, 0.3);
                let mut simd_dst = base.clone();
                let mut scalar_dst = base.clone();
                axpy(&mut simd_dst[off..], &src[off..], 1.7);
                axpy_scalar(&mut scalar_dst[off..], &src[off..], 1.7);
                assert!(
                    simd_dst
                        .iter()
                        .zip(&scalar_dst)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "axpy diverged at n={n} off={off}"
                );
            }
        }
    }

    #[test]
    fn axpy4_matches_four_scalar_rows_bitwise() {
        for n in [0usize, 1, 3, 4, 6, 8, 13, 64, 101] {
            let src = filled(n, 0.9);
            let coeffs = [1.25, -0.5, 3.0, 0.0];
            let mut rows_simd: Vec<Vec<f64>> = (0..4).map(|r| filled(n, 0.2 + r as f64)).collect();
            let mut rows_scalar = rows_simd.clone();
            {
                let (a, rest) = rows_simd.split_at_mut(1);
                let (b, rest) = rest.split_at_mut(1);
                let (c, d) = rest.split_at_mut(1);
                axpy4(
                    [&mut a[0][..], &mut b[0][..], &mut c[0][..], &mut d[0][..]],
                    &src,
                    coeffs,
                );
            }
            for (row, &c) in rows_scalar.iter_mut().zip(&coeffs) {
                axpy_scalar(row, &src, c);
            }
            for r in 0..4 {
                assert!(
                    rows_simd[r]
                        .iter()
                        .zip(&rows_scalar[r])
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "axpy4 row {r} diverged at n={n}"
                );
            }
        }
    }

    #[test]
    fn gather_row_matches_scalar_bitwise_across_degrees_and_widths() {
        // Degrees straddling the GATHER_CHUNK boundary and widths
        // straddling the lane width (including a lane-free d=1).
        let n = 128usize;
        let table = filled(n, 0.13);
        for d in [1usize, 2, 3, 4, 5, 7, 8, 32, 33] {
            let x = filled(n * d, 0.7);
            for deg in [0usize, 1, 2, 31, 32, 33, 64, 100] {
                let neighbors: Vec<u32> = (0..deg).map(|i| ((i * 7 + 3) % n) as u32).collect();
                let v = 5usize;
                for coeffs in [
                    NeighborCoeffs::Uniform(0.37),
                    NeighborCoeffs::Scaled {
                        scale: 1.2,
                        table: &table,
                    },
                ] {
                    let base = filled(d, 0.4);
                    let mut fast = base.clone();
                    let mut reference = base.clone();
                    gather_row(&mut fast, &x, d, v, 0.81, &neighbors, coeffs);
                    gather_row_scalar(&mut reference, &x, d, v, 0.81, &neighbors, coeffs);
                    assert!(
                        fast.iter()
                            .zip(&reference)
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "gather_row diverged at d={d} deg={deg}"
                    );
                }
            }
        }
    }

    #[test]
    fn kill_switch_round_trips() {
        let was = simd_enabled();
        set_simd_enabled(false);
        assert!(!simd_enabled());
        set_simd_enabled(true);
        // Re-enabling only sticks when the CPU supports a SIMD path.
        let _ = simd_enabled();
        set_simd_enabled(was);
    }
}
