//! Multilayer perceptron with ReLU hidden layers.
//!
//! This is the model family behind GoPIM's Time Predictor (§V-A): the
//! paper sweeps depth (2–6 layers, Fig. 9(b)) and hidden width
//! (Fig. 9(c)) and settles on a 3-layer 10-256-1 network. [`MlpConfig`]
//! expresses any such architecture.

use gopim_rng::rngs::SmallRng;
use gopim_rng::seq::SliceRandom;
use gopim_rng::SeedableRng;

use crate::activation::{relu, relu_grad};
use crate::init::xavier_uniform;
use crate::loss::mse;
use crate::ops::{add_bias, hadamard, sum_rows};
use crate::optimizer::Adam;
use crate::Matrix;

/// Architecture of an MLP: the sizes of every layer, input to output.
///
/// "Number of layers" follows the paper's convention of counting the
/// input and output layers, so the selected 10-256-1 predictor is a
/// *3-layer* MLP with one hidden layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpConfig {
    /// Layer widths from input to output; length ≥ 2.
    pub layer_sizes: Vec<usize>,
}

impl MlpConfig {
    /// Builds a config from explicit layer sizes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new(layer_sizes: Vec<usize>) -> Self {
        assert!(layer_sizes.len() >= 2, "need input and output layers");
        assert!(
            layer_sizes.iter().all(|&s| s > 0),
            "layer sizes must be positive"
        );
        MlpConfig { layer_sizes }
    }

    /// The paper's selected predictor: 10 inputs, one 256-wide hidden
    /// layer, one output.
    pub fn paper_predictor() -> Self {
        MlpConfig::new(vec![10, 256, 1])
    }

    /// A uniform-depth config: `depth` total layers (paper counting)
    /// with all hidden layers `hidden` wide.
    ///
    /// # Panics
    ///
    /// Panics if `depth < 2`.
    pub fn uniform(inputs: usize, hidden: usize, outputs: usize, depth: usize) -> Self {
        assert!(depth >= 2, "depth must be at least 2");
        let mut sizes = vec![inputs];
        sizes.extend(std::iter::repeat_n(hidden, depth - 2));
        sizes.push(outputs);
        MlpConfig::new(sizes)
    }

    /// Number of layers in the paper's counting (including input and
    /// output).
    pub fn depth(&self) -> usize {
        self.layer_sizes.len()
    }
}

/// A trained (or trainable) MLP with ReLU hidden activations and a
/// linear output layer, optimized with Adam against MSE.
///
/// # Example
///
/// ```
/// use gopim_linalg::{Matrix, Mlp, MlpConfig};
///
/// // Learn y = 2x on a handful of points.
/// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
/// let y = Matrix::from_rows(&[&[0.0], &[2.0], &[4.0], &[6.0]]);
/// let mut mlp = Mlp::new(MlpConfig::new(vec![1, 16, 1]), 42);
/// mlp.fit(&x, &y, 500, 4, 0.01);
/// let pred = mlp.predict(&Matrix::from_rows(&[&[1.5]]));
/// assert!((pred[(0, 0)] - 3.0).abs() < 0.3);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    config: MlpConfig,
    weights: Vec<Matrix>,
    biases: Vec<Matrix>,
}

impl Mlp {
    /// Initializes weights with Xavier uniform.
    pub fn new(config: MlpConfig, seed: u64) -> Self {
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for (i, w) in config.layer_sizes.windows(2).enumerate() {
            weights.push(xavier_uniform(
                w[0],
                w[1],
                seed.wrapping_add(i as u64 * 7919),
            ));
            biases.push(Matrix::zeros(1, w[1]));
        }
        Mlp {
            config,
            weights,
            biases,
        }
    }

    /// The architecture of this network.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.weights
            .iter()
            .zip(&self.biases)
            .map(|(w, b)| w.rows() * w.cols() + b.cols())
            .sum()
    }

    /// Forward pass returning the output for each input row.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` does not match the input layer width.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        // lint:allow(no-panic-in-lib): MlpConfig construction rejects empty layer lists, so forward() output is non-empty
        self.forward(x).1.pop().expect("at least one layer")
    }

    /// Forward pass keeping pre-activations (for backprop).
    /// Returns `(pre_activations, post_activations)` where
    /// `post_activations[0]` is the input.
    fn forward(&self, x: &Matrix) -> (Vec<Matrix>, Vec<Matrix>) {
        assert_eq!(x.cols(), self.config.layer_sizes[0], "input width mismatch");
        let num_layers = self.weights.len();
        let mut pre = Vec::with_capacity(num_layers);
        let mut post = Vec::with_capacity(num_layers + 1);
        post.push(x.clone());
        for (i, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let z = add_bias(&post[i].matmul(w), b);
            let a = if i + 1 == num_layers {
                z.clone()
            } else {
                relu(&z)
            };
            pre.push(z);
            post.push(a);
        }
        // Reorder for predict(): post holds activations, last is output.
        (pre, post.split_off(1))
    }

    /// One gradient step on `(x, y)` with the given Adam optimizers;
    /// returns the batch MSE.
    fn step(&mut self, x: &Matrix, y: &Matrix, opts: &mut [(Adam, Adam)]) -> f64 {
        let num_layers = self.weights.len();
        // Recompute forward keeping inputs to each layer.
        let mut inputs = Vec::with_capacity(num_layers);
        let mut pre = Vec::with_capacity(num_layers);
        let mut act = x.clone();
        for (i, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            inputs.push(act.clone());
            let z = add_bias(&act.matmul(w), b);
            act = if i + 1 == num_layers {
                z.clone()
            } else {
                relu(&z)
            };
            pre.push(z);
        }
        let (loss, mut delta) = mse(&act, y);
        for i in (0..num_layers).rev() {
            if i + 1 != num_layers {
                delta = hadamard(&delta, &relu_grad(&pre[i]));
            }
            let grad_w = inputs[i].transpose().matmul(&delta);
            let grad_b = sum_rows(&delta);
            let next_delta = if i > 0 {
                Some(delta.matmul(&self.weights[i].transpose()))
            } else {
                None
            };
            let (opt_w, opt_b) = &mut opts[i];
            opt_w.step(&mut self.weights[i], &grad_w);
            opt_b.step(&mut self.biases[i], &grad_b);
            if let Some(d) = next_delta {
                delta = d;
            }
        }
        loss
    }

    /// Trains with Adam + mini-batches for `epochs` epochs; returns the
    /// final epoch's mean batch loss.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` have different row counts, `batch_size` is
    /// zero, or widths mismatch the architecture.
    pub fn fit(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        epochs: usize,
        batch_size: usize,
        learning_rate: f64,
    ) -> f64 {
        assert_eq!(x.rows(), y.rows(), "x and y row count mismatch");
        assert!(batch_size > 0, "batch size must be positive");
        assert_eq!(
            y.cols(),
            // lint:allow(no-panic-in-lib): layer_sizes is validated non-empty when the config is built
            *self.config.layer_sizes.last().unwrap(),
            "output width mismatch"
        );
        let mut opts: Vec<(Adam, Adam)> = self
            .weights
            .iter()
            .map(|_| (Adam::new(learning_rate), Adam::new(learning_rate)))
            .collect();
        let n = x.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = SmallRng::seed_from_u64(0x6d6c70);
        let mut last = 0.0;
        for epoch in 0..epochs {
            // Cosine learning-rate decay (floor at 2 % of the base).
            let progress = epoch as f64 / epochs.max(1) as f64;
            let lr = learning_rate
                * (0.02 + 0.98 * 0.5 * (1.0 + (std::f64::consts::PI * progress).cos()));
            for (w, b) in opts.iter_mut() {
                w.set_learning_rate(lr);
                b.set_learning_rate(lr);
            }
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(batch_size) {
                let bx = gather_rows(x, chunk);
                let by = gather_rows(y, chunk);
                epoch_loss += self.step(&bx, &by, &mut opts);
                batches += 1;
            }
            last = epoch_loss / batches as f64;
        }
        last
    }
}

/// Copies the given rows of `m` into a new matrix.
fn gather_rows(m: &Matrix, rows: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(rows.len(), m.cols());
    for (i, &r) in rows.iter().enumerate() {
        out.row_mut(i).copy_from_slice(m.row(r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors() {
        let c = MlpConfig::paper_predictor();
        assert_eq!(c.layer_sizes, vec![10, 256, 1]);
        assert_eq!(c.depth(), 3);
        let u = MlpConfig::uniform(10, 32, 1, 5);
        assert_eq!(u.layer_sizes, vec![10, 32, 32, 32, 1]);
    }

    #[test]
    fn parameter_count() {
        let mlp = Mlp::new(MlpConfig::new(vec![2, 3, 1]), 0);
        // 2*3 + 3 + 3*1 + 1 = 13
        assert_eq!(mlp.num_parameters(), 13);
    }

    #[test]
    fn predict_shape() {
        let mlp = Mlp::new(MlpConfig::new(vec![4, 8, 2]), 1);
        let x = Matrix::zeros(5, 4);
        assert_eq!(mlp.predict(&x).shape(), (5, 2));
    }

    #[test]
    fn fits_linear_function() {
        let n = 64;
        let x = Matrix::from_vec(n, 2, (0..2 * n).map(|i| (i % 7) as f64 / 7.0).collect());
        let y = Matrix::from_vec(
            n,
            1,
            (0..n)
                .map(|i| 3.0 * x[(i, 0)] - 2.0 * x[(i, 1)] + 0.5)
                .collect(),
        );
        let mut mlp = Mlp::new(MlpConfig::new(vec![2, 16, 1]), 3);
        let loss = mlp.fit(&x, &y, 300, 16, 0.01);
        assert!(loss < 1e-3, "final loss {loss}");
    }

    #[test]
    fn fits_nonlinear_function() {
        // y = x0 * x1 requires the hidden layer.
        let n = 128;
        let mut xd = Vec::new();
        let mut yd = Vec::new();
        for i in 0..n {
            let a = (i % 11) as f64 / 11.0;
            let b = (i % 13) as f64 / 13.0;
            xd.extend_from_slice(&[a, b]);
            yd.push(a * b);
        }
        let x = Matrix::from_vec(n, 2, xd);
        let y = Matrix::from_vec(n, 1, yd);
        let mut mlp = Mlp::new(MlpConfig::new(vec![2, 32, 1]), 4);
        let loss = mlp.fit(&x, &y, 400, 32, 0.01);
        assert!(loss < 5e-3, "final loss {loss}");
    }

    #[test]
    fn deeper_config_trains_too() {
        let x = Matrix::from_vec(32, 1, (0..32).map(|i| i as f64 / 32.0).collect());
        let y = x.map(|v| v * v);
        let mut mlp = Mlp::new(MlpConfig::uniform(1, 16, 1, 4), 5);
        let loss = mlp.fit(&x, &y, 300, 8, 0.01);
        assert!(loss < 1e-2, "final loss {loss}");
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn predict_rejects_wrong_width() {
        let mlp = Mlp::new(MlpConfig::new(vec![3, 4, 1]), 0);
        let _ = mlp.predict(&Matrix::zeros(1, 2));
    }
}
