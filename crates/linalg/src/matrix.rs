//! Row-major dense matrix.

use crate::kernels;
use gopim_obs::metrics::{LazyCounter, LazyHistogram};
use std::fmt;
use std::ops::{Index, IndexMut};

static MATMUL_CALLS: LazyCounter = LazyCounter::new("linalg.matmul.calls");
static MATMUL_FLOPS: LazyCounter = LazyCounter::new("linalg.matmul.flops");
static MATMUL_NS: LazyHistogram = LazyHistogram::new("linalg.matmul.ns");

/// A dense `rows × cols` matrix of `f64`, stored row-major.
///
/// # Example
///
/// ```
/// use gopim_linalg::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m[(1, 2)] = 5.0;
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.shape(), (2, 3));
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major buffer (used by
    /// [`crate::arena::BufferArena`] to recycle storage).
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Matrix product `self × rhs`.
    ///
    /// Parallelized over row ranges of the output through `gopim-par`;
    /// each output element accumulates over `k` in ascending order
    /// with a fixed kernel, so the result is bit-identical at every
    /// thread count (see `tests/determinism.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self × rhs` written into `out`, overwriting its
    /// contents — the allocation-free form of [`Matrix::matmul`] for
    /// callers that reuse an output buffer across iterations.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()` or `out`'s shape is not
    /// `self.rows() × rhs.cols()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "dimension mismatch: {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "output shape mismatch: got {}x{}, need {}x{}",
            out.rows,
            out.cols,
            self.rows,
            rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let _span = gopim_obs::span!("linalg.matmul", m, k, n);
        MATMUL_CALLS.add(1);
        MATMUL_FLOPS.add(2 * (m as u64) * (k as u64) * (n as u64));
        let _timer = MATMUL_NS.timer();
        let (kd, n) = (self.cols, rhs.cols);
        if out.data.is_empty() {
            return;
        }
        if self.data.is_empty() {
            out.data.fill(0.0);
            return;
        }
        // Partition the output into contiguous row blocks; each block
        // is one task. Per-element accumulation order is fixed by the
        // kernels, so the block size (which scales with the pool) has
        // no effect on the bits produced.
        let block_rows = self
            .rows
            .div_ceil(gopim_par::num_threads() * 4)
            .clamp(1, self.rows);
        if n <= kernels::NARROW_COLS {
            // Narrow outputs (e.g. the MLP's 256→1 head): the
            // row-streaming kernel degenerates to one multiply per
            // pass, so switch to transposed-RHS dot products.
            let rhs_t = rhs.transpose();
            gopim_par::par_chunks_mut(&mut out.data, block_rows * n, |block, chunk| {
                let row0 = block * block_rows;
                let rows = chunk.len() / n;
                kernels::dot_block(
                    &self.data[row0 * kd..(row0 + rows) * kd],
                    &rhs_t.data,
                    chunk,
                    kd,
                    n,
                );
            });
        } else {
            gopim_par::par_chunks_mut(&mut out.data, block_rows * n, |block, chunk| {
                let row0 = block * block_rows;
                let rows = chunk.len() / n;
                kernels::axpy_block(
                    &self.data[row0 * kd..(row0 + rows) * kd],
                    &rhs.data,
                    chunk,
                    kd,
                    n,
                );
            });
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// Transpose written into `out`, overwriting its contents — the
    /// allocation-free form of [`Matrix::transpose`] for callers that
    /// reuse a buffer (e.g. the GCN backward pass's arena).
    ///
    /// # Panics
    ///
    /// Panics if `out`'s shape is not `self.cols() × self.rows()`.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, self.rows),
            "transpose output shape mismatch"
        );
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
    }

    /// Element-wise map.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of range"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of range"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows <= 8 && self.cols <= 8 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

impl gopim_cache::CanonicalHash for Matrix {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("linalg.matrix/v1");
        h.write_usize(self.rows);
        h.write_usize(self.cols);
        for &v in &self.data {
            h.write_f64(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[5.0], &[3.0]]);
        assert_eq!(a.matmul(&b), Matrix::from_rows(&[&[7.0]]));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[&[2.0, -1.0], &[0.5, 3.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn map_and_norm() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.map(|x| x * 2.0), Matrix::from_rows(&[&[6.0, 8.0]]));
    }

    #[test]
    fn matmul_into_overwrites_a_reused_buffer() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut out = Matrix::from_rows(&[&[9.9, 9.9], &[9.9, 9.9]]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn matmul_bits_do_not_depend_on_thread_count() {
        // Wide output (axpy kernel) and narrow output (dot kernel),
        // with sizes that force multiple row blocks.
        for &(m, kd, n) in &[(70usize, 33usize, 40usize), (70, 33, 3)] {
            let a = Matrix::from_vec(
                m,
                kd,
                (0..m * kd).map(|i| ((i as f64) * 0.37).sin()).collect(),
            );
            let b = Matrix::from_vec(
                kd,
                n,
                (0..kd * n).map(|i| ((i as f64) * 0.53).cos()).collect(),
            );
            let serial = gopim_par::Pool::new(1).install(|| a.matmul(&b));
            for threads in [2, 8] {
                let par = gopim_par::Pool::new(threads).install(|| a.matmul(&b));
                assert!(
                    par.as_slice()
                        .iter()
                        .zip(serial.as_slice())
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "matmul {m}x{kd}x{n} changed bits at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn matmul_handles_zero_sized_operands() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        assert_eq!(a.matmul(&b).shape(), (0, 4));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 4);
        assert_eq!(a.matmul(&b), Matrix::zeros(2, 4));
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn matmul_into_rejects_wrong_output_shape() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 3);
        a.matmul_into(&b, &mut out);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }
}
