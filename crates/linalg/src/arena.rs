//! A bump-style buffer arena for per-epoch matrix temporaries.
//!
//! The GCN propagation path allocates the same set of temporaries
//! every epoch — per-layer combination outputs, aggregation outputs,
//! activations, backward deltas and transposes — and frees them all at
//! the epoch boundary. [`BufferArena`] keeps those buffers alive
//! across epochs instead: [`BufferArena::alloc`] hands out a zeroed
//! matrix backed by a recycled allocation when one with enough
//! capacity exists, and [`BufferArena::recycle`] returns a matrix's
//! storage to the free list. After the first epoch warms the arena,
//! the steady-state propagation path performs no heap allocation for
//! its temporaries.
//!
//! Determinism: an arena-backed matrix is zero-filled on allocation,
//! exactly like `Matrix::zeros`, so recycling can never leak one
//! epoch's values into the next — the differential and golden tests
//! pin the training trajectories bitwise.

use crate::Matrix;
use gopim_obs::metrics::LazyCounter;

static ARENA_REUSES: LazyCounter = LazyCounter::new("linalg.arena.reuses");
static ARENA_MISSES: LazyCounter = LazyCounter::new("linalg.arena.misses");

/// A free list of `f64` buffers reused across epochs.
///
/// # Example
///
/// ```
/// use gopim_linalg::arena::BufferArena;
///
/// let mut arena = BufferArena::new();
/// let m = arena.alloc(4, 3);
/// assert_eq!(m.shape(), (4, 3));
/// arena.recycle(m);
/// // The next allocation of any shape that fits reuses the storage.
/// let again = arena.alloc(2, 6);
/// assert_eq!(again.shape(), (2, 6));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BufferArena {
    free: Vec<Vec<f64>>,
}

impl BufferArena {
    /// An empty arena.
    pub fn new() -> Self {
        BufferArena::default()
    }

    /// A zeroed `rows × cols` matrix, backed by a recycled buffer when
    /// one with sufficient capacity is available.
    pub fn alloc(&mut self, rows: usize, cols: usize) -> Matrix {
        let need = rows * cols;
        // Smallest sufficient buffer (the free list stays tiny — one
        // entry per live temporary of the propagation path).
        let pick = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, buf)| buf.capacity() >= need)
            .min_by_key(|(_, buf)| buf.capacity())
            .map(|(i, _)| i);
        let data = match pick {
            Some(i) => {
                ARENA_REUSES.add(1);
                let mut buf = self.free.swap_remove(i);
                buf.clear();
                buf.resize(need, 0.0);
                buf
            }
            None => {
                ARENA_MISSES.add(1);
                vec![0.0; need]
            }
        };
        Matrix::from_vec(rows, cols, data)
    }

    /// Returns a matrix's storage to the free list.
    pub fn recycle(&mut self, m: Matrix) {
        let buf = m.into_vec();
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Number of buffers currently on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_zeroed_even_after_recycling_dirty_buffers() {
        let mut arena = BufferArena::new();
        let mut m = arena.alloc(3, 3);
        for v in m.as_mut_slice() {
            *v = 7.5;
        }
        arena.recycle(m);
        assert_eq!(arena.free_buffers(), 1);
        let again = arena.alloc(3, 3);
        assert_eq!(arena.free_buffers(), 0, "storage was reused");
        assert!(again.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn smaller_requests_reuse_larger_buffers() {
        let mut arena = BufferArena::new();
        let big = arena.alloc(10, 10);
        arena.recycle(big);
        let small = arena.alloc(2, 2);
        assert_eq!(small.shape(), (2, 2));
        assert_eq!(arena.free_buffers(), 0);
    }

    #[test]
    fn insufficient_buffers_are_left_on_the_free_list() {
        let mut arena = BufferArena::new();
        arena.recycle(Matrix::zeros(2, 2));
        let fresh = arena.alloc(8, 8);
        assert_eq!(fresh.shape(), (8, 8));
        assert_eq!(arena.free_buffers(), 1, "the 2x2 buffer stays free");
    }

    #[test]
    fn zero_sized_matrices_round_trip() {
        let mut arena = BufferArena::new();
        let empty = arena.alloc(0, 5);
        assert_eq!(empty.shape(), (0, 5));
        arena.recycle(empty);
    }
}
