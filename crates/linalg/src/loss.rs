//! Loss functions with analytic gradients.

use crate::activation::softmax_rows;
use crate::Matrix;

/// Mean-squared error between `pred` and `target`, averaged over all
/// elements, and its gradient with respect to `pred`.
///
/// # Panics
///
/// Panics if shapes differ or `pred` is empty.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "shape mismatch in mse");
    let n = pred.as_slice().len();
    assert!(n > 0, "mse of empty matrix");
    let mut loss = 0.0;
    let grad_data: Vec<f64> = pred
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&p, &t)| {
            let d = p - t;
            loss += d * d;
            2.0 * d / n as f64
        })
        .collect();
    (
        loss / n as f64,
        Matrix::from_vec(pred.rows(), pred.cols(), grad_data),
    )
}

/// Softmax cross-entropy over rows: `logits` is `n × c`, `labels[i]`
/// is the class of row `i`. Returns the mean loss and the gradient with
/// respect to the logits (`softmax − one_hot`, scaled by `1/n`).
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[u32]) -> (f64, Matrix) {
    assert_eq!(labels.len(), logits.rows(), "one label per row");
    let n = logits.rows();
    assert!(n > 0, "cross entropy of empty batch");
    let probs = softmax_rows(logits);
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (i, &label) in labels.iter().enumerate() {
        let c = label as usize;
        assert!(c < logits.cols(), "label {c} out of range");
        loss -= probs[(i, c)].max(1e-300).ln();
        grad[(i, c)] -= 1.0;
    }
    for v in grad.as_mut_slice() {
        *v /= n as f64;
    }
    (loss / n as f64, grad)
}

/// Classification accuracy: fraction of rows whose argmax equals the
/// label.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()`.
pub fn accuracy(logits: &Matrix, labels: &[u32]) -> f64 {
    assert_eq!(labels.len(), logits.rows(), "one label per row");
    if labels.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (i, &label) in labels.iter().enumerate() {
        let row = logits.row(i);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(j, _)| j);
        if argmax == label as usize {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_target() {
        let p = Matrix::from_rows(&[&[1.0, 2.0]]);
        let (l, g) = mse(&p, &p);
        assert_eq!(l, 0.0);
        assert_eq!(g, Matrix::zeros(1, 2));
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let p = Matrix::from_rows(&[&[0.3, -0.7], &[1.2, 0.0]]);
        let t = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, -1.0]]);
        let (_, g) = mse(&p, &t);
        let eps = 1e-6;
        for i in 0..2 {
            for j in 0..2 {
                let mut p2 = p.clone();
                p2[(i, j)] += eps;
                let (l2, _) = mse(&p2, &t);
                let (l1, _) = mse(&p, &t);
                let fd = (l2 - l1) / eps;
                assert!((fd - g[(i, j)]).abs() < 1e-5, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.5, -0.2, 0.1], &[2.0, 1.0, -1.0]]);
        let labels = [2u32, 0u32];
        let (_, g) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-6;
        for i in 0..2 {
            for j in 0..3 {
                let mut l2 = logits.clone();
                l2[(i, j)] += eps;
                let (a, _) = softmax_cross_entropy(&l2, &labels);
                let (b, _) = softmax_cross_entropy(&logits, &labels);
                let fd = (a - b) / eps;
                assert!((fd - g[(i, j)]).abs() < 1e-5, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn perfect_prediction_low_loss() {
        let logits = Matrix::from_rows(&[&[10.0, -10.0], &[-10.0, 10.0]]);
        let (l, _) = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(l < 1e-6);
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 0.0]]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
    }
}
