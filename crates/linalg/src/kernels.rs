//! Inner matmul kernels shared by [`crate::Matrix::matmul`] and
//! [`crate::Matrix::matmul_into`].
//!
//! Both kernels accumulate every output element over `k` in ascending
//! order, so the bits they produce depend only on the operands — not
//! on how the caller blocks rows or how many pool threads execute the
//! blocks. That invariant is what the workspace-wide determinism
//! tests (`tests/determinism.rs`) pin.
//!
//! Kernel choice:
//!
//! - [`axpy_block`] — the wide-output kernel. Streams each RHS row
//!   across four output rows at once (register blocking), so the RHS
//!   is read once per four rows instead of once per row, and the
//!   four independent accumulator streams vectorize on plain SSE2.
//! - [`dot_block`] — the narrow-output kernel (`n ≤` [`NARROW_COLS`]).
//!   A row-streaming kernel degenerates to one multiply per RHS pass
//!   when `n` is tiny (the MLP's 256→1 output head), so this one
//!   iterates a transposed RHS contiguously with a hoisted LHS row
//!   and a single running accumulation per element.
//!
//! On targets with FMA codegen the accumulation uses `f64::mul_add`
//! (one rounding, one instruction). On targets without it, `mul_add`
//! lowers to a libm call that measures ~5× slower than `mul + add`,
//! so the plain form is used instead — which also keeps this kernel
//! bit-identical to the pre-parallel serial implementation there.
//!
//! The wide kernel's row updates go through [`crate::simd`], which
//! dispatches to AVX2/NEON when available and falls back to the same
//! scalar loop otherwise; every path produces identical bits (lane
//! `j` is exactly scalar element `j`, and the per-element reduction
//! order over `k` never changes). The narrow dot kernel stays scalar:
//! its single running accumulator would have to be split across lanes
//! to vectorize, which reorders the reduction and changes the bits.

/// Column threshold at or below which the transposed-RHS dot kernel
/// is used.
pub(crate) const NARROW_COLS: usize = 8;

/// Multiply-accumulate: fused on FMA targets, `acc + a * b` elsewhere.
#[inline(always)]
fn mac(acc: f64, a: f64, b: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// How many output rows the wide kernel computes per RHS pass.
const MR: usize = 4;

/// Column-tile width keeping the active output rows and RHS row
/// segment inside L1 while a tile's `k` loop runs.
const JB: usize = 256;

/// `out = a × b` for a block of rows: `a` is `rows × kd` row-major,
/// `b` is `kd × n` row-major, `out` is `rows × n` (overwritten).
pub(crate) fn axpy_block(a: &[f64], b: &[f64], out: &mut [f64], kd: usize, n: usize) {
    out.fill(0.0);
    if kd == 0 || n == 0 {
        // Degenerate product: the zero fill is the whole answer, and
        // the chunked loops below cannot take a zero chunk size.
        return;
    }
    for (a_chunk, out_chunk) in a.chunks(MR * kd).zip(out.chunks_mut(MR * n)) {
        if out_chunk.len() == MR * n {
            let (a0, rest) = a_chunk.split_at(kd);
            let (a1, rest) = rest.split_at(kd);
            let (a2, a3) = rest.split_at(kd);
            let (o0, rest) = out_chunk.split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, o3) = rest.split_at_mut(n);
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + JB).min(n);
                for k in 0..kd {
                    let b_row = &b[k * n + j0..k * n + j1];
                    crate::simd::axpy4(
                        [
                            &mut o0[j0..j1],
                            &mut o1[j0..j1],
                            &mut o2[j0..j1],
                            &mut o3[j0..j1],
                        ],
                        b_row,
                        [a0[k], a1[k], a2[k], a3[k]],
                    );
                }
                j0 = j1;
            }
        } else {
            // Ragged tail: fewer than MR rows left.
            for (a_row, out_row) in a_chunk.chunks(kd).zip(out_chunk.chunks_mut(n)) {
                for k in 0..kd {
                    let b_row = &b[k * n..(k + 1) * n];
                    crate::simd::axpy(out_row, b_row, a_row[k]);
                }
            }
        }
    }
}

/// `out = a × bᵀᵀ` for a block of rows via dot products against the
/// pre-transposed RHS: `a` is `rows × kd`, `b_t` is `n × kd` (the
/// transpose of the `kd × n` RHS), `out` is `rows × n` (overwritten).
pub(crate) fn dot_block(a: &[f64], b_t: &[f64], out: &mut [f64], kd: usize, n: usize) {
    if kd == 0 || n == 0 {
        // Degenerate product: every dot is an empty sum, and the
        // chunked loops below cannot take a zero chunk size.
        out.fill(0.0);
        return;
    }
    for (a_row, out_row) in a.chunks_exact(kd).zip(out.chunks_exact_mut(n)) {
        for (o, bt_row) in out_row.iter_mut().zip(b_t.chunks_exact(kd)) {
            let mut acc = 0.0;
            for (&x, &y) in a_row.iter().zip(bt_row) {
                acc = mac(acc, x, y);
            }
            *o = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(a: &[f64], b: &[f64], m: usize, kd: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..kd {
                    acc = mac(acc, a[i * kd + k], b[k * n + j]);
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn transpose(b: &[f64], kd: usize, n: usize) -> Vec<f64> {
        let mut t = vec![0.0; n * kd];
        for k in 0..kd {
            for j in 0..n {
                t[j * kd + k] = b[k * n + j];
            }
        }
        t
    }

    #[test]
    fn kernels_agree_with_the_reference_bitwise() {
        // Odd sizes exercise the ragged MR tail and partial J tiles.
        for &(m, kd, n) in &[
            (1usize, 1usize, 1usize),
            (5, 3, 7),
            (9, 16, 4),
            (4, 300, 301),
        ] {
            check_against_reference(m, kd, n);
        }
    }

    #[test]
    fn edge_shapes_agree_with_the_reference_bitwise() {
        // Degenerate and tail-heavy shapes: empty operands, a single
        // element, widths around the 4-lane SIMD boundary (tails of
        // 1–3), and row counts around the MR=4 register block.
        for &(m, kd, n) in &[
            (0usize, 3usize, 4usize),
            (3, 0, 4),
            (3, 4, 0),
            (0, 0, 0),
            (1, 1, 1),
            (4, 1, 1),
            (1, 4, 9),
            (3, 5, 1),
            (5, 5, 2),
            (6, 7, 3),
            (7, 2, 5),
            (8, 3, 6),
            (4, 16, 258),
            (11, 9, 13),
        ] {
            check_against_reference(m, kd, n);
        }
    }

    #[test]
    fn simd_and_scalar_paths_are_bit_identical() {
        // Toggle the runtime dispatch and pin the two paths against
        // each other on shapes with ragged rows and lane tails.
        let was = crate::simd::simd_enabled();
        for &(m, kd, n) in &[(7usize, 13usize, 11usize), (4, 31, 258), (2, 5, 9)] {
            let a: Vec<f64> = (0..m * kd).map(|i| ((i as f64) * 0.61).sin()).collect();
            let b: Vec<f64> = (0..kd * n).map(|i| ((i as f64) * 0.23).cos()).collect();
            let mut with_simd = vec![f64::NAN; m * n];
            crate::simd::set_simd_enabled(true);
            axpy_block(&a, &b, &mut with_simd, kd, n);
            let mut without = vec![f64::NAN; m * n];
            crate::simd::set_simd_enabled(false);
            axpy_block(&a, &b, &mut without, kd, n);
            assert!(
                with_simd
                    .iter()
                    .zip(&without)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "SIMD path diverged from scalar at {m}x{kd}x{n}"
            );
        }
        crate::simd::set_simd_enabled(was);
    }

    fn check_against_reference(m: usize, kd: usize, n: usize) {
        let a: Vec<f64> = (0..m * kd).map(|i| ((i as f64) * 0.7).sin()).collect();
        let b: Vec<f64> = (0..kd * n).map(|i| ((i as f64) * 0.3).cos()).collect();
        let expect = reference(&a, &b, m, kd, n);
        let mut out = vec![f64::NAN; m * n];
        axpy_block(&a, &b, &mut out, kd, n);
        assert!(
            out.iter()
                .zip(&expect)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "axpy_block diverged at {m}x{kd}x{n}"
        );
        let bt = transpose(&b, kd, n);
        let mut out2 = vec![f64::NAN; m * n];
        dot_block(&a, &bt, &mut out2, kd, n);
        assert!(
            out2.iter()
                .zip(&expect)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "dot_block diverged at {m}x{kd}x{n}"
        );
    }
}
