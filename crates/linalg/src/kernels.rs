//! Inner matmul kernels shared by [`crate::Matrix::matmul`] and
//! [`crate::Matrix::matmul_into`].
//!
//! Both kernels accumulate every output element over `k` in ascending
//! order, so the bits they produce depend only on the operands — not
//! on how the caller blocks rows or how many pool threads execute the
//! blocks. That invariant is what the workspace-wide determinism
//! tests (`tests/determinism.rs`) pin.
//!
//! Kernel choice:
//!
//! - [`axpy_block`] — the wide-output kernel. Streams each RHS row
//!   across four output rows at once (register blocking), so the RHS
//!   is read once per four rows instead of once per row, and the
//!   four independent accumulator streams vectorize on plain SSE2.
//! - [`dot_block`] — the narrow-output kernel (`n ≤` [`NARROW_COLS`]).
//!   A row-streaming kernel degenerates to one multiply per RHS pass
//!   when `n` is tiny (the MLP's 256→1 output head), so this one
//!   iterates a transposed RHS contiguously with a hoisted LHS row
//!   and a single running accumulation per element.
//!
//! On targets with FMA codegen the accumulation uses `f64::mul_add`
//! (one rounding, one instruction). On targets without it, `mul_add`
//! lowers to a libm call that measures ~5× slower than `mul + add`,
//! so the plain form is used instead — which also keeps this kernel
//! bit-identical to the pre-parallel serial implementation there.

/// Column threshold at or below which the transposed-RHS dot kernel
/// is used.
pub(crate) const NARROW_COLS: usize = 8;

/// Multiply-accumulate: fused on FMA targets, `acc + a * b` elsewhere.
#[inline(always)]
fn mac(acc: f64, a: f64, b: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// How many output rows the wide kernel computes per RHS pass.
const MR: usize = 4;

/// Column-tile width keeping the active output rows and RHS row
/// segment inside L1 while a tile's `k` loop runs.
const JB: usize = 256;

/// `out = a × b` for a block of rows: `a` is `rows × kd` row-major,
/// `b` is `kd × n` row-major, `out` is `rows × n` (overwritten).
pub(crate) fn axpy_block(a: &[f64], b: &[f64], out: &mut [f64], kd: usize, n: usize) {
    out.fill(0.0);
    for (a_chunk, out_chunk) in a.chunks(MR * kd).zip(out.chunks_mut(MR * n)) {
        if out_chunk.len() == MR * n {
            let (a0, rest) = a_chunk.split_at(kd);
            let (a1, rest) = rest.split_at(kd);
            let (a2, a3) = rest.split_at(kd);
            let (o0, rest) = out_chunk.split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, o3) = rest.split_at_mut(n);
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + JB).min(n);
                for k in 0..kd {
                    let b_row = &b[k * n + j0..k * n + j1];
                    let (x0, x1, x2, x3) = (a0[k], a1[k], a2[k], a3[k]);
                    let (t0, t1) = (&mut o0[j0..j1], &mut o1[j0..j1]);
                    let (t2, t3) = (&mut o2[j0..j1], &mut o3[j0..j1]);
                    for (jj, &bv) in b_row.iter().enumerate() {
                        t0[jj] = mac(t0[jj], x0, bv);
                        t1[jj] = mac(t1[jj], x1, bv);
                        t2[jj] = mac(t2[jj], x2, bv);
                        t3[jj] = mac(t3[jj], x3, bv);
                    }
                }
                j0 = j1;
            }
        } else {
            // Ragged tail: fewer than MR rows left.
            for (a_row, out_row) in a_chunk.chunks(kd).zip(out_chunk.chunks_mut(n)) {
                for k in 0..kd {
                    let b_row = &b[k * n..(k + 1) * n];
                    let x = a_row[k];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o = mac(*o, x, bv);
                    }
                }
            }
        }
    }
}

/// `out = a × bᵀᵀ` for a block of rows via dot products against the
/// pre-transposed RHS: `a` is `rows × kd`, `b_t` is `n × kd` (the
/// transpose of the `kd × n` RHS), `out` is `rows × n` (overwritten).
pub(crate) fn dot_block(a: &[f64], b_t: &[f64], out: &mut [f64], kd: usize, n: usize) {
    for (a_row, out_row) in a.chunks_exact(kd).zip(out.chunks_exact_mut(n)) {
        for (o, bt_row) in out_row.iter_mut().zip(b_t.chunks_exact(kd)) {
            let mut acc = 0.0;
            for (&x, &y) in a_row.iter().zip(bt_row) {
                acc = mac(acc, x, y);
            }
            *o = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(a: &[f64], b: &[f64], m: usize, kd: usize, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..kd {
                    acc = mac(acc, a[i * kd + k], b[k * n + j]);
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn transpose(b: &[f64], kd: usize, n: usize) -> Vec<f64> {
        let mut t = vec![0.0; n * kd];
        for k in 0..kd {
            for j in 0..n {
                t[j * kd + k] = b[k * n + j];
            }
        }
        t
    }

    #[test]
    fn kernels_agree_with_the_reference_bitwise() {
        // Odd sizes exercise the ragged MR tail and partial J tiles.
        for &(m, kd, n) in &[
            (1usize, 1usize, 1usize),
            (5, 3, 7),
            (9, 16, 4),
            (4, 300, 301),
        ] {
            let a: Vec<f64> = (0..m * kd).map(|i| ((i as f64) * 0.7).sin()).collect();
            let b: Vec<f64> = (0..kd * n).map(|i| ((i as f64) * 0.3).cos()).collect();
            let expect = reference(&a, &b, m, kd, n);
            let mut out = vec![f64::NAN; m * n];
            axpy_block(&a, &b, &mut out, kd, n);
            assert!(
                out.iter()
                    .zip(&expect)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "axpy_block diverged at {m}x{kd}x{n}"
            );
            let bt = transpose(&b, kd, n);
            let mut out2 = vec![f64::NAN; m * n];
            dot_block(&a, &bt, &mut out2, kd, n);
            assert!(
                out2.iter()
                    .zip(&expect)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "dot_block diverged at {m}x{kd}x{n}"
            );
        }
    }
}
