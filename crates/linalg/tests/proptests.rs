//! Property-based tests for the linear-algebra kernels (gopim-testkit).

use gopim_linalg::activation::{relu, softmax_rows};
use gopim_linalg::loss::{mse, softmax_cross_entropy};
use gopim_linalg::ops::{add, hadamard, scale, sub};
use gopim_linalg::Matrix;
use gopim_testkit::prop::{check_with, Config, Draw};

fn matrix(d: &mut Draw, name: &str, rows: usize, cols: usize) -> Matrix {
    let data = d.vec(name, rows * cols..rows * cols + 1, |d| {
        d.draw("x", -10.0f64..10.0)
    });
    Matrix::from_vec(rows, cols, data)
}

#[test]
fn matmul_is_associative() {
    check_with("matmul_is_associative", Config::cases(48), |d| {
        let a = matrix(d, "a", 3, 4);
        let b = matrix(d, "b", 4, 2);
        let c = matrix(d, "c", 2, 5);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    });
}

#[test]
fn matmul_distributes_over_addition() {
    check_with("matmul_distributes_over_addition", Config::cases(48), |d| {
        let a = matrix(d, "a", 3, 4);
        let b = matrix(d, "b", 4, 2);
        let c = matrix(d, "c", 4, 2);
        let left = a.matmul(&add(&b, &c));
        let right = add(&a.matmul(&b), &a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            assert!((x - y).abs() < 1e-9);
        }
    });
}

#[test]
fn transpose_reverses_products() {
    check_with("transpose_reverses_products", Config::cases(48), |d| {
        let a = matrix(d, "a", 3, 4);
        let b = matrix(d, "b", 4, 2);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            assert!((x - y).abs() < 1e-9);
        }
    });
}

#[test]
fn elementwise_algebra() {
    check_with("elementwise_algebra", Config::cases(48), |d| {
        let a = matrix(d, "a", 4, 4);
        let b = matrix(d, "b", 4, 4);
        let s = d.draw("s", -5.0f64..5.0);
        // a + b − b == a
        let round = sub(&add(&a, &b), &b);
        for (x, y) in round.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-9);
        }
        // s·(a ⊙ b) == (s·a) ⊙ b
        let left = scale(&hadamard(&a, &b), s);
        let right = hadamard(&scale(&a, s), &b);
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            assert!((x - y).abs() < 1e-8);
        }
    });
}

#[test]
fn relu_is_idempotent_and_nonnegative() {
    check_with(
        "relu_is_idempotent_and_nonnegative",
        Config::cases(48),
        |d| {
            let a = matrix(d, "a", 3, 5);
            let r = relu(&a);
            assert!(r.as_slice().iter().all(|&v| v >= 0.0));
            assert_eq!(relu(&r), r.clone());
        },
    );
}

#[test]
fn softmax_is_shift_invariant() {
    check_with("softmax_is_shift_invariant", Config::cases(48), |d| {
        let a = matrix(d, "a", 2, 4);
        let shift = d.draw("shift", -50.0f64..50.0);
        let shifted = a.map(|v| v + shift);
        let s1 = softmax_rows(&a);
        let s2 = softmax_rows(&shifted);
        for (x, y) in s1.as_slice().iter().zip(s2.as_slice()) {
            assert!((x - y).abs() < 1e-9);
        }
    });
}

#[test]
fn mse_is_zero_iff_equal_and_symmetric() {
    check_with(
        "mse_is_zero_iff_equal_and_symmetric",
        Config::cases(48),
        |d| {
            let a = matrix(d, "a", 3, 3);
            let b = matrix(d, "b", 3, 3);
            let (zero, _) = mse(&a, &a);
            assert_eq!(zero, 0.0);
            let (ab, _) = mse(&a, &b);
            let (ba, _) = mse(&b, &a);
            assert!((ab - ba).abs() < 1e-12);
            assert!(ab >= 0.0);
        },
    );
}

#[test]
fn cross_entropy_is_bounded_below_by_log_uniform() {
    check_with(
        "cross_entropy_is_bounded_below_by_log_uniform",
        Config::cases(48),
        |d| {
            let logits = matrix(d, "logits", 4, 3);
            let labels = d.vec("labels", 4usize..5, |d| d.draw("l", 0u32..3));
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            assert!(loss >= 0.0);
            // Gradient rows sum to zero (softmax − one-hot property).
            for i in 0..4 {
                let sum: f64 = grad.row(i).iter().sum();
                assert!(sum.abs() < 1e-12);
            }
        },
    );
}
