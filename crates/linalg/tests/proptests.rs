//! Property-based tests for the linear-algebra kernels.

use gopim_linalg::activation::{relu, softmax_rows};
use gopim_linalg::loss::{mse, softmax_cross_entropy};
use gopim_linalg::ops::{add, hadamard, scale, sub};
use gopim_linalg::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_is_associative(
        a in matrix(3, 4),
        b in matrix(4, 2),
        c in matrix(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix(3, 4),
        b in matrix(4, 2),
        c in matrix(4, 2),
    ) {
        let left = a.matmul(&add(&b, &c));
        let right = add(&a.matmul(&b), &a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_reverses_products(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn elementwise_algebra(a in matrix(4, 4), b in matrix(4, 4), s in -5.0f64..5.0) {
        // a + b − b == a
        let round = sub(&add(&a, &b), &b);
        for (x, y) in round.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        // s·(a ⊙ b) == (s·a) ⊙ b
        let left = scale(&hadamard(&a, &b), s);
        let right = hadamard(&scale(&a, s), &b);
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(a in matrix(3, 5)) {
        let r = relu(&a);
        prop_assert!(r.as_slice().iter().all(|&v| v >= 0.0));
        prop_assert_eq!(relu(&r), r.clone());
    }

    #[test]
    fn softmax_is_shift_invariant(a in matrix(2, 4), shift in -50.0f64..50.0) {
        let shifted = a.map(|v| v + shift);
        let s1 = softmax_rows(&a);
        let s2 = softmax_rows(&shifted);
        for (x, y) in s1.as_slice().iter().zip(s2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn mse_is_zero_iff_equal_and_symmetric(a in matrix(3, 3), b in matrix(3, 3)) {
        let (zero, _) = mse(&a, &a);
        prop_assert_eq!(zero, 0.0);
        let (ab, _) = mse(&a, &b);
        let (ba, _) = mse(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!(ab >= 0.0);
    }

    #[test]
    fn cross_entropy_is_bounded_below_by_log_uniform(
        logits in matrix(4, 3),
        labels in prop::collection::vec(0u32..3, 4),
    ) {
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        prop_assert!(loss >= 0.0);
        // Gradient rows sum to zero (softmax − one-hot property).
        for i in 0..4 {
            let sum: f64 = grad.row(i).iter().sum();
            prop_assert!(sum.abs() < 1e-12);
        }
    }
}
