//! Property-based tests for the allocators (gopim-testkit).

use gopim_alloc::{fixed, greedy_allocate, reference_allocate, AllocInput, AllocPlan};
use gopim_testkit::gen::stage_timings;
use gopim_testkit::prop::{check_with, Config, Draw};

fn arbitrary_input(d: &mut Draw) -> AllocInput {
    let stages = stage_timings(d, 2, 8, 2000.0, 50.0);
    AllocInput {
        quantum_ns: stages.iter().map(|s| s.quantum_ns).collect(),
        compute_ns: stages.iter().map(|s| s.compute_ns).collect(),
        write_ns: stages.iter().map(|s| s.write_ns).collect(),
        crossbars_per_replica: stages.iter().map(|s| s.crossbars_per_replica).collect(),
        unused_crossbars: d.draw("budget", 0usize..500),
        num_microbatches: d.draw("n_mb", 2usize..128),
        max_replicas: Some(256),
    }
}

#[test]
fn every_policy_respects_the_budget() {
    check_with("every_policy_respects_the_budget", Config::cases(64), |d| {
        let input = arbitrary_input(d);
        let feature_class: Vec<bool> = (0..input.num_stages()).map(|i| i % 2 == 1).collect();
        let co_class: Vec<bool> = feature_class.iter().map(|&f| !f).collect();
        for plan in [
            greedy_allocate(&input),
            reference_allocate(&input),
            fixed::uniform(&input),
            fixed::regraphx_ratio(&input, &feature_class),
            fixed::combination_only(&input, &co_class),
        ] {
            assert!(plan.extra_crossbars(&input.crossbars_per_replica) <= input.unused_crossbars);
            assert!(plan.replicas.iter().all(|&r| r >= 1));
            assert!(plan
                .replicas
                .iter()
                .enumerate()
                .all(|(i, &r)| r <= input.stage_cap(i).max(1)));
        }
    });
}

#[test]
fn greedy_never_hurts_the_objective() {
    check_with("greedy_never_hurts_the_objective", Config::cases(64), |d| {
        let input = arbitrary_input(d);
        let serial = AllocPlan::serial(input.num_stages());
        let plan = greedy_allocate(&input);
        assert!(
            input.pipeline_time(&plan.replicas) <= input.pipeline_time(&serial.replicas) + 1e-9
        );
    });
}

#[test]
fn stage_time_is_monotone_in_replicas() {
    check_with(
        "stage_time_is_monotone_in_replicas",
        Config::cases(64),
        |d| {
            let input = arbitrary_input(d);
            for i in 0..input.num_stages() {
                let mut prev = f64::INFINITY;
                for r in 1..=8 {
                    let t = input.stage_time(i, r);
                    assert!(t <= prev + 1e-12, "stage {i} at {r} replicas");
                    assert!(t >= input.quantum_ns[i] + input.write_ns[i] - 1e-12);
                    prev = t;
                }
            }
        },
    );
}

#[test]
fn stage_cap_is_where_replication_stops_paying() {
    check_with(
        "stage_cap_is_where_replication_stops_paying",
        Config::cases(64),
        |d| {
            let input = arbitrary_input(d);
            for i in 0..input.num_stages() {
                let cap = input.stage_cap(i);
                assert!(cap >= 1);
                // Beyond the cap, the remaining compute share is already
                // below the stage's non-replicable floor.
                let at_cap = input.compute_ns[i] / cap as f64;
                let floor = (0.5 * input.write_ns[i]).max(input.quantum_ns[i]);
                assert!(at_cap <= floor * (1.0 + 1.0 / cap as f64) + 1e-9);
            }
        },
    );
}

#[test]
fn eq6_objective_is_sum_plus_bottleneck() {
    check_with(
        "eq6_objective_is_sum_plus_bottleneck",
        Config::cases(64),
        |d| {
            let input = arbitrary_input(d);
            let replicas = vec![1; input.num_stages()];
            let times: Vec<f64> = (0..input.num_stages())
                .map(|i| input.stage_time(i, 1))
                .collect();
            let expected = times.iter().sum::<f64>()
                + (input.num_microbatches - 1) as f64 * times.iter().cloned().fold(0.0, f64::max);
            assert!((input.pipeline_time(&replicas) - expected).abs() < 1e-9);
        },
    );
}
