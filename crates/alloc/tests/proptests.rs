//! Property-based tests for the allocators.

use gopim_alloc::{fixed, greedy_allocate, reference_allocate, AllocInput, AllocPlan};
use proptest::prelude::*;

fn arbitrary_input() -> impl Strategy<Value = AllocInput> {
    (2usize..8, 0usize..500, 2usize..128).prop_flat_map(|(stages, budget, n_mb)| {
        (
            prop::collection::vec(0.5f64..2000.0, stages),
            prop::collection::vec(0.0f64..50.0, stages),
            prop::collection::vec(1usize..16, stages),
        )
            .prop_map(move |(compute, write, footprints)| AllocInput {
                quantum_ns: compute.iter().map(|c| c / 64.0).collect(),
                compute_ns: compute,
                write_ns: write,
                crossbars_per_replica: footprints,
                unused_crossbars: budget,
                num_microbatches: n_mb,
                max_replicas: Some(256),
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_policy_respects_the_budget(input in arbitrary_input()) {
        let feature_class: Vec<bool> =
            (0..input.num_stages()).map(|i| i % 2 == 1).collect();
        let co_class: Vec<bool> = feature_class.iter().map(|&f| !f).collect();
        for plan in [
            greedy_allocate(&input),
            reference_allocate(&input),
            fixed::uniform(&input),
            fixed::regraphx_ratio(&input, &feature_class),
            fixed::combination_only(&input, &co_class),
        ] {
            prop_assert!(
                plan.extra_crossbars(&input.crossbars_per_replica) <= input.unused_crossbars
            );
            prop_assert!(plan.replicas.iter().all(|&r| r >= 1));
            prop_assert!(plan
                .replicas
                .iter()
                .enumerate()
                .all(|(i, &r)| r <= input.stage_cap(i).max(1)));
        }
    }

    #[test]
    fn greedy_never_hurts_the_objective(input in arbitrary_input()) {
        let serial = AllocPlan::serial(input.num_stages());
        let plan = greedy_allocate(&input);
        prop_assert!(
            input.pipeline_time(&plan.replicas)
                <= input.pipeline_time(&serial.replicas) + 1e-9
        );
    }

    #[test]
    fn stage_time_is_monotone_in_replicas(input in arbitrary_input()) {
        for i in 0..input.num_stages() {
            let mut prev = f64::INFINITY;
            for r in 1..=8 {
                let t = input.stage_time(i, r);
                prop_assert!(t <= prev + 1e-12, "stage {i} at {r} replicas");
                prop_assert!(t >= input.quantum_ns[i] + input.write_ns[i] - 1e-12);
                prev = t;
            }
        }
    }

    #[test]
    fn stage_cap_is_where_replication_stops_paying(input in arbitrary_input()) {
        for i in 0..input.num_stages() {
            let cap = input.stage_cap(i);
            prop_assert!(cap >= 1);
            // Beyond the cap, the remaining compute share is already
            // below the stage's non-replicable floor.
            let at_cap = input.compute_ns[i] / cap as f64;
            let floor = (0.5 * input.write_ns[i]).max(input.quantum_ns[i]);
            prop_assert!(at_cap <= floor * (1.0 + 1.0 / cap as f64) + 1e-9);
        }
    }

    #[test]
    fn eq6_objective_is_sum_plus_bottleneck(input in arbitrary_input()) {
        let replicas = vec![1; input.num_stages()];
        let times: Vec<f64> = (0..input.num_stages())
            .map(|i| input.stage_time(i, 1))
            .collect();
        let expected = times.iter().sum::<f64>()
            + (input.num_microbatches - 1) as f64
                * times.iter().cloned().fold(0.0, f64::max);
        prop_assert!((input.pipeline_time(&replicas) - expected).abs() < 1e-9);
    }
}
