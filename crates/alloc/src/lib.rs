//! Crossbar replica allocation (the paper's §V-B).
//!
//! Given per-stage execution-time estimates (from the Time Predictor)
//! and per-replica crossbar footprints, an allocator decides how many
//! replicas each of the `4L` stages receives from the chip's unused
//! crossbar pool. This crate provides:
//!
//! - [`greedy_allocate`]: GoPIM's max-heap greedy algorithm
//!   (Algorithm 1) — repeatedly grants a replica to the stage whose
//!   *adjust value* (pipeline-time reduction per crossbar spent) is
//!   highest, with the heap keyed on those values and re-adjusted
//!   top-down after every grant.
//! - [`reference_allocate`]: the expensive reference the paper compares
//!   against (dynamic-programming-class search): sweeps every achievable
//!   bottleneck target and allocates optimally against each, keeping the
//!   best plan. Used to check the greedy's quality.
//! - [`fixed`]: the baseline policies — Pipelayer's uniform replicas,
//!   ReGraphX's fixed 1:2 CO:AG split, ReFlip's Combination-only
//!   replication, and SlimGNN's space-proportional allocation.
//!
//! The allocator's model of the pipeline is the paper's Eq. 6:
//! `T_A = Σ T_i + (M−1)·T_max` with `T_i(R) = max(compute_i / R,
//! quantum_i) + write_i` — writes are not replica-parallelizable.
//!
//! # Example
//!
//! ```
//! use gopim_alloc::{AllocInput, greedy_allocate};
//!
//! // The paper's Fig. 5 toy: two stages with times 1:6, three spare
//! // crossbars, one crossbar per replica.
//! let input = AllocInput {
//!     compute_ns: vec![1.0, 6.0],
//!     write_ns: vec![0.0, 0.0],
//!     quantum_ns: vec![0.01, 0.01],
//!     crossbars_per_replica: vec![1, 1],
//!     unused_crossbars: 3,
//!     num_microbatches: 4,
//!     max_replicas: None,
//! };
//! let plan = greedy_allocate(&input);
//! // All three crossbars go to the long stage (Fig. 5(c) beats the
//! // fixed 1:2 split of Fig. 5(b)).
//! assert_eq!(plan.replicas, vec![1, 4]);
//! ```

#![warn(missing_docs)]

pub mod fixed;
mod greedy;
mod reference;

pub use greedy::greedy_allocate;
pub use reference::reference_allocate;

/// Inputs to an allocation decision.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocInput {
    /// Replica-parallelizable per-micro-batch time of each stage, ns
    /// (`P` in Algorithm 1, minus the write share).
    pub compute_ns: Vec<f64>,
    /// Non-parallelizable write time of each stage, ns.
    pub write_ns: Vec<f64>,
    /// Floor on the effective compute time (a single input's issue
    /// latency) — replication cannot go below this.
    pub quantum_ns: Vec<f64>,
    /// Crossbars one replica of each stage occupies (`X`).
    pub crossbars_per_replica: Vec<usize>,
    /// Free crossbars to distribute (`C_PIM`).
    pub unused_crossbars: usize,
    /// Micro-batches per batch (`B` in Eq. 6, the pipeline depth).
    pub num_microbatches: usize,
    /// Optional cap on replicas per stage. Defaults to 65,536 — in
    /// practice the quantum floor stops replication far earlier.
    pub max_replicas: Option<usize>,
}

impl AllocInput {
    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.compute_ns.len()
    }

    /// Effective per-micro-batch time of stage `i` at `r` replicas.
    pub fn stage_time(&self, i: usize, r: usize) -> f64 {
        (self.compute_ns[i] / r as f64).max(self.quantum_ns[i]) + self.write_ns[i]
    }

    /// The pipeline-time objective (Eq. 6) for a replica vector.
    ///
    /// # Panics
    ///
    /// Panics if `replicas.len() != num_stages()` or any entry is zero.
    pub fn pipeline_time(&self, replicas: &[usize]) -> f64 {
        assert_eq!(replicas.len(), self.num_stages(), "replica count per stage");
        assert!(replicas.iter().all(|&r| r > 0), "replicas must be positive");
        let times: Vec<f64> = (0..self.num_stages())
            .map(|i| self.stage_time(i, replicas[i]))
            .collect();
        let t_max = times.iter().cloned().fold(0.0, f64::max);
        times.iter().sum::<f64>() + (self.num_microbatches.saturating_sub(1)) as f64 * t_max
    }

    /// Effective global replica cap.
    pub fn cap(&self) -> usize {
        self.max_replicas.unwrap_or(1 << 16).max(1)
    }

    /// Per-stage replica cap: replication stops paying off once the
    /// compute share drops well below the stage's non-replicable floor
    /// (its write/dispatch time, or the single-issue quantum), so
    /// grants beyond that only burn crossbars and write-broadcast
    /// energy. This is what keeps the allocator at the paper's
    /// Table VI replica scale instead of draining the chip.
    pub fn stage_cap(&self, i: usize) -> usize {
        let floor = (0.5 * self.write_ns[i]).max(self.quantum_ns[i]).max(1e-9);
        let useful = (self.compute_ns[i] / floor).ceil() as usize;
        useful.clamp(1, self.cap())
    }

    /// Withholds a fraction of the free crossbar pool as fault
    /// spares before allocation, returning how many *spare crossbar
    /// groups* (units of the largest per-replica footprint, so any
    /// stage's dead group fits a spare) were reserved. The remaining
    /// pool shrinks accordingly; `fraction` is clamped to `[0, 1]`.
    /// With `fraction = 0.0` the input is untouched — the allocator's
    /// fault-free plans are bit-identical.
    pub fn reserve_spares(&mut self, fraction: f64) -> usize {
        let fraction = fraction.clamp(0.0, 1.0);
        if fraction == 0.0 || self.unused_crossbars == 0 {
            return 0;
        }
        let unit = self
            .crossbars_per_replica
            .iter()
            .copied()
            .max()
            .unwrap_or(1)
            .max(1);
        let reserved_crossbars = (self.unused_crossbars as f64 * fraction).floor() as usize;
        let spare_groups = reserved_crossbars / unit;
        self.unused_crossbars -= spare_groups * unit;
        spare_groups
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the per-stage vectors disagree in length or any
    /// footprint is zero.
    pub fn validate(&self) {
        let n = self.num_stages();
        assert_eq!(self.write_ns.len(), n, "write_ns length");
        assert_eq!(self.quantum_ns.len(), n, "quantum_ns length");
        assert_eq!(self.crossbars_per_replica.len(), n, "footprint length");
        assert!(
            self.crossbars_per_replica.iter().all(|&x| x > 0),
            "replica footprints must be positive"
        );
    }
}

/// A replica assignment, including the base (first) replica of every
/// stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocPlan {
    /// Replicas per stage (≥ 1 each).
    pub replicas: Vec<usize>,
}

impl AllocPlan {
    /// One replica everywhere — the `Serial` footprint.
    pub fn serial(num_stages: usize) -> Self {
        AllocPlan {
            replicas: vec![1; num_stages],
        }
    }

    /// Total crossbars the plan occupies (paper Table VI's last
    /// column), given per-replica footprints.
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree.
    pub fn total_crossbars(&self, footprints: &[usize]) -> usize {
        assert_eq!(self.replicas.len(), footprints.len(), "length mismatch");
        self.replicas
            .iter()
            .zip(footprints)
            .map(|(&r, &x)| r * x)
            .sum()
    }

    /// Extra crossbars beyond the base replica of every stage.
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree.
    pub fn extra_crossbars(&self, footprints: &[usize]) -> usize {
        assert_eq!(self.replicas.len(), footprints.len(), "length mismatch");
        self.replicas
            .iter()
            .zip(footprints)
            .map(|(&r, &x)| (r - 1) * x)
            .sum()
    }
}

impl gopim_cache::CanonicalHash for AllocInput {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("alloc.input/v1");
        self.compute_ns.canonical_hash(h);
        self.write_ns.canonical_hash(h);
        self.quantum_ns.canonical_hash(h);
        self.crossbars_per_replica.canonical_hash(h);
        h.write_usize(self.unused_crossbars);
        h.write_usize(self.num_microbatches);
        self.max_replicas.canonical_hash(h);
    }
}

impl gopim_cache::CanonicalHash for AllocPlan {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("alloc.plan/v1");
        self.replicas.canonical_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn toy() -> AllocInput {
        AllocInput {
            compute_ns: vec![1.0, 6.0],
            write_ns: vec![0.0, 0.0],
            quantum_ns: vec![0.01, 0.01],
            crossbars_per_replica: vec![1, 1],
            unused_crossbars: 3,
            num_microbatches: 4,
            max_replicas: None,
        }
    }

    #[test]
    fn pipeline_time_matches_eq6() {
        let input = toy();
        // R = [1,1]: ΣT = 7, T_max = 6, M−1 = 3 ⇒ 7 + 18 = 25.
        assert!((input.pipeline_time(&[1, 1]) - 25.0).abs() < 1e-9);
        // R = [2,3] (Fig. 5(b) flavor): 0.5 + 2 + 3·2 = 8.5.
        assert!((input.pipeline_time(&[2, 3]) - 8.5).abs() < 1e-9);
        // R = [1,4] (Fig. 5(c) flavor): 1 + 1.5 + 3·1.5 = 7.
        assert!((input.pipeline_time(&[1, 4]) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn writes_are_not_parallelizable() {
        let mut input = toy();
        input.write_ns = vec![0.5, 0.5];
        let t1 = input.stage_time(1, 1);
        let t6 = input.stage_time(1, 6000);
        assert!((t1 - 6.5).abs() < 1e-9);
        // Floor: quantum + write.
        assert!((t6 - 0.51).abs() < 1e-9);
    }

    #[test]
    fn plan_crossbar_accounting() {
        let plan = AllocPlan {
            replicas: vec![2, 3],
        };
        assert_eq!(plan.total_crossbars(&[10, 100]), 320);
        assert_eq!(plan.extra_crossbars(&[10, 100]), 210);
    }

    #[test]
    #[should_panic(expected = "replicas must be positive")]
    fn zero_replica_rejected() {
        toy().pipeline_time(&[0, 1]);
    }

    #[test]
    fn reserve_spares_shrinks_the_pool_in_footprint_units() {
        let mut input = toy();
        input.crossbars_per_replica = vec![2, 4];
        input.unused_crossbars = 100;
        // 25% of 100 = 25 crossbars → 6 spare groups of 4 = 24 taken.
        let spares = input.reserve_spares(0.25);
        assert_eq!(spares, 6);
        assert_eq!(input.unused_crossbars, 76);
        // Zero fraction is a strict no-op.
        let before = input.clone();
        assert_eq!(input.reserve_spares(0.0), 0);
        assert_eq!(input, before);
        // Out-of-range fractions clamp instead of panicking.
        let mut all = toy();
        all.unused_crossbars = 7;
        assert_eq!(all.reserve_spares(5.0), 7);
        assert_eq!(all.unused_crossbars, 0);
    }
}
