//! Reference allocator: the expensive search GoPIM's greedy replaces.
//!
//! The paper notes that prior work uses dynamic-programming-class
//! decision procedures that can take days on large inputs (§V-B). This
//! reference sweeps every achievable bottleneck target τ (each stage's
//! time at each feasible replica count is a candidate): for each τ it
//! buys the minimum replicas making every stage ≤ τ (if affordable),
//! then spends any leftover budget greedily on the `Σ T_i` term, and
//! keeps the plan with the best Eq. 6 objective. On small instances it
//! is exhaustive enough to certify the greedy's quality (see the
//! property tests in `tests/`).

use crate::{AllocInput, AllocPlan};

/// Runs the reference (τ-sweep) allocation.
///
/// # Panics
///
/// Panics if the input vectors are inconsistent.
pub fn reference_allocate(input: &AllocInput) -> AllocPlan {
    input.validate();
    let n = input.num_stages();
    let caps: Vec<usize> = (0..n).map(|i| input.stage_cap(i)).collect();

    // Candidate bottleneck targets: every stage time at every replica
    // count up to the cap (deduplicated).
    let mut candidates: Vec<f64> = Vec::new();
    for (i, &cap_i) in caps.iter().enumerate() {
        for r in 1..=cap_i {
            candidates.push(input.stage_time(i, r));
            if input.stage_time(i, r) <= input.quantum_ns[i] + input.write_ns[i] + f64::EPSILON {
                break;
            }
        }
    }
    candidates.sort_by(f64::total_cmp);
    candidates.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut best: Option<(f64, Vec<usize>)> = None;
    for &tau in &candidates {
        // Minimum replicas to bring every stage under tau.
        let mut replicas = vec![1usize; n];
        let mut cost = 0usize;
        let mut feasible = true;
        for i in 0..n {
            let mut r = 1;
            while input.stage_time(i, r) > tau + 1e-12 {
                r += 1;
                if r > caps[i] {
                    feasible = false;
                    break;
                }
            }
            if !feasible {
                break;
            }
            replicas[i] = r;
            cost += (r - 1) * input.crossbars_per_replica[i];
        }
        if !feasible || cost > input.unused_crossbars {
            continue;
        }
        // Spend leftovers on the largest per-crossbar ΣT reduction.
        let mut budget = input.unused_crossbars - cost;
        loop {
            let mut best_gain = 0.0;
            let mut best_stage = None;
            for i in 0..n {
                if replicas[i] >= caps[i] {
                    continue;
                }
                let c = input.crossbars_per_replica[i];
                if c > budget {
                    continue;
                }
                let gain = (input.stage_time(i, replicas[i])
                    - input.stage_time(i, replicas[i] + 1))
                    / c as f64;
                if gain > best_gain + 1e-15 {
                    best_gain = gain;
                    best_stage = Some(i);
                }
            }
            match best_stage {
                Some(i) => {
                    budget -= input.crossbars_per_replica[i];
                    replicas[i] += 1;
                }
                None => break,
            }
        }
        let objective = input.pipeline_time(&replicas);
        if best.as_ref().is_none_or(|(b, _)| objective < *b - 1e-12) {
            best = Some((objective, replicas));
        }
    }
    let replicas = best.map(|(_, r)| r).unwrap_or_else(|| vec![1; n]);
    AllocPlan { replicas }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy_allocate;

    fn toy(budget: usize) -> AllocInput {
        AllocInput {
            compute_ns: vec![1.0, 6.0],
            write_ns: vec![0.0, 0.0],
            quantum_ns: vec![0.01, 0.01],
            crossbars_per_replica: vec![1, 1],
            unused_crossbars: budget,
            num_microbatches: 4,
            max_replicas: Some(16),
        }
    }

    #[test]
    fn reference_matches_greedy_on_fig5() {
        let input = toy(3);
        let r = reference_allocate(&input);
        assert_eq!(r.replicas, vec![1, 4]);
    }

    #[test]
    fn reference_never_loses_to_greedy() {
        for budget in [0, 1, 2, 3, 5, 8, 13, 21] {
            let input = toy(budget);
            let g = greedy_allocate(&input);
            let r = reference_allocate(&input);
            assert!(
                input.pipeline_time(&r.replicas) <= input.pipeline_time(&g.replicas) + 1e-9,
                "budget {budget}"
            );
        }
    }

    #[test]
    fn greedy_is_close_to_reference_on_skewed_inputs() {
        let input = AllocInput {
            compute_ns: vec![15.0, 2480.0, 15.0, 2480.0, 15.0, 1240.0, 15.0, 1240.0],
            write_ns: vec![0.4, 26.0, 0.4, 26.0, 0.4, 0.0, 0.4, 0.0],
            quantum_ns: vec![0.3; 8],
            crossbars_per_replica: vec![32, 536, 32, 536, 32, 536, 32, 536],
            unused_crossbars: 100_000,
            num_microbatches: 67,
            max_replicas: Some(512),
        };
        let g = greedy_allocate(&input);
        let r = reference_allocate(&input);
        let tg = input.pipeline_time(&g.replicas);
        let tr = input.pipeline_time(&r.replicas);
        assert!(tg <= 1.1 * tr, "greedy {tg} vs reference {tr}");
    }

    #[test]
    fn respects_budget() {
        let input = toy(5);
        let plan = reference_allocate(&input);
        assert!(plan.extra_crossbars(&input.crossbars_per_replica) <= 5);
    }
}
