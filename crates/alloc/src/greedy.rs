//! GoPIM's max-heap greedy allocator (Algorithm 1).
//!
//! Two heaps as in the paper: `H_v` orders stages by *adjust value*
//! (the pipeline-time reduction per crossbar of granting one more
//! replica) and `H_p` orders them by current effective duration. Each
//! iteration grants replicas guided by the top of `H_v`; keys are
//! recomputed and the heaps re-adjusted after every grant, until the
//! unused-crossbar pool cannot fund any further replica.
//!
//! Implementation notes. The Rust version realizes the adjust-value
//! heap with an exact marginal-gain evaluation of the Eq. 6 objective,
//! and adds one refinement the paper's pseudo-code leaves implicit:
//! when several stages *tie* at `T_max` (common — a GCN has identical
//! AG stages in every layer), a single-stage grant cannot lower the
//! `(M−1)·T_max` term, so the allocator also evaluates granting one
//! replica to the whole bottleneck set and applies whichever move has
//! the better gain per crossbar. Without this, coordinate-wise greedy
//! stalls on the tie plateau.

use crate::{AllocInput, AllocPlan};

const TIE_EPS_REL: f64 = 1e-9;

/// Runs the greedy allocation.
///
/// Returns one replica count per stage (≥ 1; the base mapping is always
/// kept). The pool only funds *extra* replicas.
///
/// # Panics
///
/// Panics if the input vectors are inconsistent (see
/// [`AllocInput::validate`]).
pub fn greedy_allocate(input: &AllocInput) -> AllocPlan {
    input.validate();
    let n = input.num_stages();
    let caps: Vec<usize> = (0..n).map(|i| input.stage_cap(i)).collect();
    let m = input.num_microbatches.saturating_sub(1) as f64;
    let mut replicas = vec![1usize; n];
    let mut budget = input.unused_crossbars;
    let mut times: Vec<f64> = (0..n).map(|i| input.stage_time(i, 1)).collect();

    loop {
        let t_max = times.iter().cloned().fold(0.0, f64::max);
        // Runner-up: the largest time *outside* the bottleneck set.
        let tie_eps = t_max * TIE_EPS_REL;
        let bottleneck: Vec<usize> = (0..n).filter(|&i| times[i] >= t_max - tie_eps).collect();
        let runner_up = times
            .iter()
            .cloned()
            .filter(|&t| t < t_max - tie_eps)
            .fold(0.0, f64::max);

        // Candidate 1: best single-stage grant, gain per crossbar.
        let mut best_single: Option<(f64, usize)> = None;
        for i in 0..n {
            if replicas[i] >= caps[i] || input.crossbars_per_replica[i] > budget {
                continue;
            }
            let after = input.stage_time(i, replicas[i] + 1);
            let mut gain = times[i] - after;
            if gain <= 0.0 {
                continue;
            }
            if bottleneck.len() == 1 && bottleneck[0] == i {
                gain += m * (t_max - after.max(runner_up)).max(0.0);
            }
            let per_xbar = gain / input.crossbars_per_replica[i] as f64;
            if best_single.is_none_or(|(g, _)| per_xbar > g) {
                best_single = Some((per_xbar, i));
            }
        }

        // Candidate 2: grant one replica to every tied bottleneck stage.
        let mut best_set: Option<(f64, &[usize])> = None;
        if bottleneck.len() > 1 {
            let cost: usize = bottleneck
                .iter()
                .map(|&i| input.crossbars_per_replica[i])
                .sum();
            let feasible = cost <= budget && bottleneck.iter().all(|&i| replicas[i] < caps[i]);
            if feasible {
                let mut sum_gain = 0.0;
                let mut new_max: f64 = runner_up;
                for &i in &bottleneck {
                    let after = input.stage_time(i, replicas[i] + 1);
                    sum_gain += times[i] - after;
                    new_max = new_max.max(after);
                }
                let gain = sum_gain + m * (t_max - new_max).max(0.0);
                if gain > 0.0 {
                    best_set = Some((gain / cost as f64, &bottleneck[..]));
                }
            }
        }

        match (best_single, best_set) {
            (None, None) => break,
            (single, Some((gg, members))) if single.is_none_or(|(gs, _)| gg > gs) => {
                let members: Vec<usize> = members.to_vec();
                for i in members {
                    budget -= input.crossbars_per_replica[i];
                    replicas[i] += 1;
                    times[i] = input.stage_time(i, replicas[i]);
                }
            }
            (Some((_, i)), _) => {
                budget -= input.crossbars_per_replica[i];
                replicas[i] += 1;
                times[i] = input.stage_time(i, replicas[i]);
            }
            // A set candidate always wins over an absent single one, so
            // this arm only exists for match exhaustiveness.
            (None, Some(_)) => break,
        }
    }
    AllocPlan { replicas }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(budget: usize) -> AllocInput {
        AllocInput {
            compute_ns: vec![1.0, 6.0],
            write_ns: vec![0.0, 0.0],
            quantum_ns: vec![0.01, 0.01],
            crossbars_per_replica: vec![1, 1],
            unused_crossbars: budget,
            num_microbatches: 4,
            max_replicas: None,
        }
    }

    #[test]
    fn fig5_all_three_to_the_long_stage() {
        let plan = greedy_allocate(&toy(3));
        assert_eq!(plan.replicas, vec![1, 4]);
        // And it beats the ReGraphX-style 1:2 split (Fig. 5(b) vs (c)).
        let input = toy(3);
        assert!(input.pipeline_time(&plan.replicas) < input.pipeline_time(&[2, 3]));
    }

    #[test]
    fn eventually_balances_once_bottleneck_flips() {
        let plan = greedy_allocate(&toy(12));
        let input = toy(12);
        let t0 = input.stage_time(0, plan.replicas[0]);
        let t1 = input.stage_time(1, plan.replicas[1]);
        assert!(t1 <= 6.0 / 8.0, "t1 {t1} replicas {:?}", plan.replicas);
        assert!((t0 - t1).abs() < 1.0, "t0 {t0} t1 {t1}");
    }

    #[test]
    fn respects_footprint_costs() {
        // Stage 1 is long but each replica costs 10 crossbars; with a
        // budget of 9 only stage 0 can be funded.
        let input = AllocInput {
            compute_ns: vec![1.0, 6.0],
            write_ns: vec![0.0, 0.0],
            quantum_ns: vec![0.01, 0.01],
            crossbars_per_replica: vec![1, 10],
            unused_crossbars: 9,
            num_microbatches: 4,
            max_replicas: None,
        };
        let plan = greedy_allocate(&input);
        assert_eq!(plan.replicas[1], 1);
        assert!(plan.replicas[0] > 1);
    }

    #[test]
    fn respects_replica_cap() {
        let mut input = toy(100);
        input.max_replicas = Some(3);
        let plan = greedy_allocate(&input);
        assert!(plan.replicas.iter().all(|&r| r <= 3));
    }

    #[test]
    fn zero_budget_returns_serial() {
        let plan = greedy_allocate(&toy(0));
        assert_eq!(plan.replicas, vec![1, 1]);
    }

    #[test]
    fn quantum_floor_stops_wasted_grants() {
        // One stage, huge budget: replication stops paying off at the
        // quantum; budget should not all be burned.
        let input = AllocInput {
            compute_ns: vec![8.0],
            write_ns: vec![0.0],
            quantum_ns: vec![1.0],
            crossbars_per_replica: vec![1],
            unused_crossbars: 1000,
            num_microbatches: 4,
            max_replicas: None,
        };
        let plan = greedy_allocate(&input);
        assert!(plan.replicas[0] <= 9, "replicas {}", plan.replicas[0]);
        assert!(plan.replicas[0] >= 8);
    }

    #[test]
    fn tied_bottlenecks_are_granted_together() {
        // Two identical long stages: coordinate-wise greedy would stall
        // after matching their times; the set move keeps going.
        let input = AllocInput {
            compute_ns: vec![1.0, 8.0, 8.0],
            write_ns: vec![0.0; 3],
            quantum_ns: vec![0.01; 3],
            crossbars_per_replica: vec![1, 1, 1],
            unused_crossbars: 14,
            num_microbatches: 16,
            max_replicas: None,
        };
        let plan = greedy_allocate(&input);
        assert!(plan.replicas[1] >= 6, "{:?}", plan.replicas);
        assert!(plan.replicas[2] >= 6, "{:?}", plan.replicas);
    }

    #[test]
    fn monotone_in_budget() {
        let small = greedy_allocate(&toy(2));
        let large = greedy_allocate(&toy(6));
        let input = toy(6);
        assert!(
            input.pipeline_time(&large.replicas) <= input.pipeline_time(&small.replicas) + 1e-9
        );
    }

    #[test]
    fn budget_is_never_exceeded() {
        for budget in [0, 1, 7, 100, 12345] {
            let input = toy(budget);
            let plan = greedy_allocate(&input);
            assert!(plan.extra_crossbars(&input.crossbars_per_replica) <= budget);
        }
    }
}
