//! Fixed allocation policies of the baseline accelerators (§III-B,
//! §VII-A of the paper).

use crate::{AllocInput, AllocPlan};

/// Pipelayer-style: every stage gets the same replica count — as many
/// as the pool can fund uniformly.
pub fn uniform(input: &AllocInput) -> AllocPlan {
    input.validate();
    let per_round: usize = input.crossbars_per_replica.iter().sum();
    let extra = input
        .unused_crossbars
        .checked_div(per_round)
        .unwrap_or(0)
        .min(input.cap().saturating_sub(1));
    AllocPlan {
        replicas: (0..input.num_stages())
            .map(|i| (1 + extra).min(input.stage_cap(i)))
            .collect(),
    }
}

/// SlimGNN-like: replicas in proportion to each stage's *space
/// requirement* (crossbar footprint). Because a stage's replica cost
/// equals its footprint, space-proportional shares buy the same replica
/// count everywhere — i.e., this coincides with [`uniform`]; it is kept
/// as its own entry point to mirror the paper's baseline taxonomy.
pub fn space_proportional(input: &AllocInput) -> AllocPlan {
    uniform(input)
}

/// ReGraphX: crossbars split between Combination-class and
/// Aggregation-class stages at a fixed 1:2 ratio.
///
/// `is_aggregation[i]` marks the AG-class stages.
///
/// # Panics
///
/// Panics if `is_aggregation.len() != input.num_stages()`.
pub fn regraphx_ratio(input: &AllocInput, is_aggregation: &[bool]) -> AllocPlan {
    input.validate();
    assert_eq!(
        is_aggregation.len(),
        input.num_stages(),
        "one class flag per stage"
    );
    let co_budget = input.unused_crossbars / 3;
    let ag_budget = input.unused_crossbars - co_budget;
    let class_plan = |budget: usize, class: bool| -> usize {
        // Uniform replicas within the class.
        let per_round: usize = input
            .crossbars_per_replica
            .iter()
            .zip(is_aggregation)
            .filter(|&(_, &a)| a == class)
            .map(|(&x, _)| x)
            .sum();
        budget
            .checked_div(per_round)
            .unwrap_or(0)
            .min(input.cap().saturating_sub(1))
    };
    let co_extra = class_plan(co_budget, false);
    let ag_extra = class_plan(ag_budget, true);
    AllocPlan {
        replicas: is_aggregation
            .iter()
            .enumerate()
            .map(|(i, &a)| (1 + if a { ag_extra } else { co_extra }).min(input.stage_cap(i)))
            .collect(),
    }
}

/// ReFlip: replicas only in Combination phases.
///
/// # Panics
///
/// Panics if `is_combination.len() != input.num_stages()`.
pub fn combination_only(input: &AllocInput, is_combination: &[bool]) -> AllocPlan {
    input.validate();
    assert_eq!(
        is_combination.len(),
        input.num_stages(),
        "one class flag per stage"
    );
    let per_round: usize = input
        .crossbars_per_replica
        .iter()
        .zip(is_combination)
        .filter(|&(_, &c)| c)
        .map(|(&x, _)| x)
        .sum();
    let extra = input
        .unused_crossbars
        .checked_div(per_round)
        .unwrap_or(0)
        .min(input.cap().saturating_sub(1));
    AllocPlan {
        replicas: is_combination
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if c {
                    (1 + extra).min(input.stage_cap(i))
                } else {
                    1
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy_allocate;

    fn input() -> AllocInput {
        AllocInput {
            compute_ns: vec![1.0, 6.0, 1.0, 6.0],
            write_ns: vec![0.0; 4],
            quantum_ns: vec![0.01; 4],
            crossbars_per_replica: vec![1, 4, 1, 4],
            unused_crossbars: 30,
            num_microbatches: 8,
            max_replicas: None,
        }
    }

    const AG: [bool; 4] = [false, true, false, true];
    const CO: [bool; 4] = [true, false, true, false];

    #[test]
    fn uniform_funds_equal_replicas() {
        let plan = uniform(&input());
        assert_eq!(plan.replicas, vec![4, 4, 4, 4]);
        assert!(plan.extra_crossbars(&input().crossbars_per_replica) <= 30);
    }

    #[test]
    fn regraphx_gives_aggregation_twice_the_budget() {
        let plan = regraphx_ratio(&input(), &AG);
        // CO budget 10 → 5 extra replicas each; AG budget 20 → 2 each.
        assert_eq!(plan.replicas, vec![6, 3, 6, 3]);
    }

    #[test]
    fn reflip_only_boosts_combination() {
        let plan = combination_only(&input(), &CO);
        assert_eq!(plan.replicas[1], 1);
        assert_eq!(plan.replicas[3], 1);
        assert!(plan.replicas[0] > 1);
    }

    #[test]
    fn greedy_beats_every_fixed_policy_on_skewed_stages() {
        let inp = input();
        let greedy = greedy_allocate(&inp);
        let t = |p: &AllocPlan| inp.pipeline_time(&p.replicas);
        assert!(t(&greedy) <= t(&uniform(&inp)) + 1e-9);
        assert!(t(&greedy) <= t(&regraphx_ratio(&inp, &AG)) + 1e-9);
        assert!(t(&greedy) <= t(&combination_only(&inp, &CO)) + 1e-9);
    }

    #[test]
    fn replica_cap_respected_by_fixed_policies() {
        let mut inp = input();
        inp.max_replicas = Some(2);
        assert!(uniform(&inp).replicas.iter().all(|&r| r <= 2));
        assert!(regraphx_ratio(&inp, &AG).replicas.iter().all(|&r| r <= 2));
        assert!(combination_only(&inp, &CO).replicas.iter().all(|&r| r <= 2));
    }
}
