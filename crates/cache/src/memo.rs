//! In-process `Arc`-sharing memo tables for expensive intermediates.
//!
//! The run cache stores *results* as bytes; [`Memo`] instead shares
//! *live structures* — degree profiles, built workloads, allocation
//! inputs — across sweep points that differ only downstream. Entries
//! are handed out as `Arc<T>`, so five systems simulating the same
//! dataset hold one copy of the workload (copy-on-write in spirit: the
//! shared value is immutable; anything that must differ is rebuilt).
//!
//! A `Memo` is a static table keyed by [`CacheKey`]: the key must
//! canonically cover every input of the memoized constructor, exactly
//! like a run-cache key. Lookups honor the same kill switches as the
//! store ([`with_disabled`](crate::store::with_disabled),
//! `GOPIM_NO_CACHE=1`), so determinism tests observe real rebuilds.
//!
//! Construction happens *outside* the table lock: two threads racing
//! on the same key may both build, but only the first insert wins and
//! both get the winner's `Arc` — bit-identical either way, since the
//! key pins every input.

use std::collections::BTreeMap;
use std::sync::Arc;

use gopim_obs::{DepMutex, DepMutexGuard};

use gopim_obs::metrics::LazyCounter;

use crate::hash::CacheKey;
use crate::store::global;

static MEMO_HITS: LazyCounter = LazyCounter::new("cache.memo_hits");
static MEMO_MISSES: LazyCounter = LazyCounter::new("cache.memo_misses");
static MEMO_EVICTIONS: LazyCounter = LazyCounter::new("cache.memo_evictions");

struct Table<T> {
    map: BTreeMap<u128, Arc<T>>,
    order: Vec<u128>,
}

/// A bounded, keyed, `Arc`-sharing memo table. Designed to live in a
/// `static`: construction is `const`.
pub struct Memo<T> {
    table: DepMutex<Table<T>>,
    cap_entries: usize,
}

impl<T> Memo<T> {
    /// An empty memo bounded to `cap_entries` live entries (FIFO
    /// eviction; evicted values survive as long as callers hold their
    /// `Arc`s).
    pub const fn new(cap_entries: usize) -> Self {
        Memo {
            table: DepMutex::new(
                "cache::table",
                Table {
                    map: BTreeMap::new(),
                    order: Vec::new(),
                },
            ),
            cap_entries,
        }
    }

    fn lock(&self) -> DepMutexGuard<'_, Table<T>> {
        // Same recovery idiom as the store: a poisoned memo is still a
        // valid map; worst case is a spurious rebuild.
        self.table.lock()
    }

    /// Returns the memoized value for `key`, building it with `build`
    /// on first use. When caching is disabled the build runs fresh and
    /// nothing is retained.
    pub fn get_or_build(&self, key: CacheKey, build: impl FnOnce() -> T) -> Arc<T> {
        if !global().is_active() {
            return Arc::new(build());
        }
        if let Some(v) = self.lock().map.get(&key.as_u128()).cloned() {
            MEMO_HITS.add(1);
            return v;
        }
        MEMO_MISSES.add(1);
        let built = Arc::new(build());
        let mut t = self.lock();
        let k = key.as_u128();
        if let Some(winner) = t.map.get(&k).cloned() {
            // Another thread built the same key while we did; share
            // theirs so every sweep point aliases one allocation.
            return winner;
        }
        t.map.insert(k, Arc::clone(&built));
        t.order.push(k);
        if t.order.len() > self.cap_entries {
            let old = t.order.remove(0);
            t.map.remove(&old);
            MEMO_EVICTIONS.add(1);
        }
        built
    }

    /// Number of live entries (for tests).
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::key_of;

    #[test]
    fn second_lookup_shares_the_same_allocation() {
        static MEMO: Memo<Vec<u64>> = Memo::new(8);
        let key = key_of("memo-test", &1u64);
        let a = MEMO.get_or_build(key, || vec![1, 2, 3]);
        let b = MEMO.get_or_build(key, || panic!("must be memoized"));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn capacity_is_bounded() {
        static MEMO: Memo<u64> = Memo::new(4);
        for i in 0..32u64 {
            let _ = MEMO.get_or_build(key_of("memo-cap", &i), || i);
        }
        assert!(MEMO.len() <= 4);
    }

    #[test]
    fn disabled_scope_builds_fresh() {
        static MEMO: Memo<u64> = Memo::new(4);
        let key = key_of("memo-disabled", &7u64);
        let _ = MEMO.get_or_build(key, || 1);
        let fresh = crate::store::with_disabled(|| MEMO.get_or_build(key, || 2));
        assert_eq!(*fresh, 2);
    }
}
