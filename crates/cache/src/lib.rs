//! Canonical-hash run cache for the GoPIM reproduction.
//!
//! The reproduce sweep re-requests heavily overlapping work: several
//! figures simulate the same `(dataset, system, config)` tuple, sweep
//! points share workload construction and allocation inputs, and a
//! warm re-run of a whole experiment binary repeats everything it did
//! the first time. This crate removes that redundancy without touching
//! the bit-determinism contract:
//!
//! - [`hash`] — a **canonical request key**: a fixed-key structural
//!   hasher (no `RandomState`, no pointer identity) plus the derive-free
//!   [`CanonicalHash`] trait that config types across the workspace
//!   implement field by field. Equal requests hash equal in every
//!   process on every platform; any semantic field change moves the key.
//! - [`codec`] — a tiny length-prefixed byte codec ([`CacheValue`])
//!   so results round-trip through the store as exact bytes. Floats
//!   travel as IEEE-754 bit patterns; a decoded result is bitwise
//!   identical to the encoded one by construction.
//! - [`store`] — the two-tier content-addressed [`RunCache`]: an
//!   in-process map for intra-sweep hits, plus an opt-in on-disk tier
//!   (`GOPIM_CACHE=dir`) with version/key-schema stamping and
//!   corruption-safe miss-on-mismatch semantics.
//! - [`memo`] — [`Memo`], an in-process `Arc`-sharing memo table for
//!   expensive intermediates (degree profiles, built workloads,
//!   allocation inputs) that sweep points share copy-on-write.
//!
//! Everything is std-only and hermetic. The cache is a pure
//! performance layer: a hit returns the same bytes a fresh computation
//! would produce, which the differential harness in
//! `tests/cache_differential.rs` pins bitwise.
//!
//! Kill switches: `GOPIM_NO_CACHE=1` disables every tier for a
//! process; [`with_disabled`] disables them for a scope (used by the
//! determinism tests that must observe real recomputation).

pub mod codec;
pub mod hash;
pub mod memo;
pub mod store;

pub use codec::{CacheValue, Decoder, Encoder};
pub use hash::{key_of, CacheKey, CanonicalHash, CanonicalHasher, KEY_SCHEMA_VERSION};
pub use memo::Memo;
pub use store::{global, with_disabled, RunCache, StatsSnapshot};
