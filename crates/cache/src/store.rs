//! The two-tier content-addressed run cache.
//!
//! Tier 1 is an in-process map (`BTreeMap`, bounded bytes, FIFO
//! eviction) that serves intra-sweep hits: several figures request the
//! same `(dataset, system, config)` tuple within one process, and a
//! multi-experiment binary run reuses everything downstream of a shared
//! key. Tier 2 is opt-in and on disk (`GOPIM_CACHE=dir`): one
//! length-prefixed record per key, stamped with a format version and
//! the key schema version, checksummed, written temp-then-rename.
//! *Any* mismatch — magic, version, schema, key, length, checksum,
//! truncation — is a silent miss, never an error: a corrupt cache can
//! cost time, but can never change a result.
//!
//! Failure philosophy: the cache is a pure performance layer, so every
//! I/O error degrades to "compute it fresh". Nothing in this module
//! panics, prints, or reads a clock.

use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use gopim_obs::{DepMutex, DepMutexGuard};

use gopim_obs::metrics::LazyCounter;

use crate::codec::CacheValue;
use crate::hash::{CacheKey, KEY_SCHEMA_VERSION};

static HITS: LazyCounter = LazyCounter::new("cache.hits");
static MISSES: LazyCounter = LazyCounter::new("cache.misses");
static DISK_HITS: LazyCounter = LazyCounter::new("cache.disk_hits");
static DISK_MISSES: LazyCounter = LazyCounter::new("cache.disk_misses");
static BYTES_READ: LazyCounter = LazyCounter::new("cache.bytes_read");
static BYTES_WRITTEN: LazyCounter = LazyCounter::new("cache.bytes_written");
static EVICTIONS: LazyCounter = LazyCounter::new("cache.evictions");
static CORRUPT: LazyCounter = LazyCounter::new("cache.corrupt_records");

/// Scope-level kill switch (see [`with_disabled`]). Process-global
/// rather than thread-local because cached work fans out to `gopim-par`
/// workers: a test that wants fresh computation must disable lookups on
/// every thread for the duration.
static DISABLED_SCOPES: AtomicUsize = AtomicUsize::new(0);

/// Runs `f` with every cache tier disabled (lookups and stores both
/// skip). Used by determinism tests that must observe genuine
/// recomputation, and by the differential harness's "fresh" leg.
pub fn with_disabled<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            DISABLED_SCOPES.fetch_sub(1, Ordering::SeqCst);
        }
    }
    DISABLED_SCOPES.fetch_add(1, Ordering::SeqCst);
    let _g = Guard;
    f()
}

/// On-disk record layout (all integers little-endian):
///
/// ```text
/// magic            4 bytes   b"GPC1"
/// format version   u32       RECORD_FORMAT_VERSION
/// key schema       u32       hash::KEY_SCHEMA_VERSION
/// key              16 bytes  CacheKey::to_bytes
/// payload length   u64
/// payload          <length> bytes (codec output)
/// checksum         u64       FNV-1a over the payload
/// ```
const MAGIC: [u8; 4] = *b"GPC1";
const RECORD_FORMAT_VERSION: u32 = 1;
const HEADER_LEN: usize = 4 + 4 + 4 + 16 + 8;

/// Default in-memory tier budget; override with `GOPIM_CACHE_MEM_BYTES`.
const DEFAULT_MEM_BYTES: usize = 256 * 1024 * 1024;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Always-on internal statistics (plain atomics, independent of the
/// `GOPIM_METRICS` gate) so tests can assert cache behavior directly.
#[derive(Default)]
struct Stats {
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
}

/// A point-in-time copy of the cache's internal statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Lookups served from either tier.
    pub hits: u64,
    /// Lookups that fell through to fresh computation.
    pub misses: u64,
    /// Subset of `hits` served by the disk tier.
    pub disk_hits: u64,
    /// In-memory entries dropped to respect the byte budget.
    pub evictions: u64,
    /// Records rejected for failing any validity check.
    pub corrupt: u64,
}

struct MemTier {
    map: BTreeMap<u128, Arc<Vec<u8>>>,
    order: VecDeque<u128>,
    bytes: usize,
}

/// The two-tier content-addressed store.
pub struct RunCache {
    mem: DepMutex<MemTier>,
    disk: Option<PathBuf>,
    cap_bytes: usize,
    enabled: bool,
    stats: Stats,
}

impl RunCache {
    /// A cache with an explicit configuration (tests use this; the
    /// runner uses [`global`]).
    pub fn new(disk: Option<PathBuf>, cap_bytes: usize) -> Self {
        RunCache {
            mem: DepMutex::new(
                "cache::mem",
                MemTier {
                    map: BTreeMap::new(),
                    order: VecDeque::new(),
                    bytes: 0,
                },
            ),
            disk,
            cap_bytes,
            enabled: true,
            stats: Stats::default(),
        }
    }

    /// Builds the process cache from the environment: `GOPIM_CACHE=dir`
    /// enables the disk tier, `GOPIM_NO_CACHE=1` disables everything,
    /// `GOPIM_CACHE_MEM_BYTES` bounds the in-memory tier.
    pub fn from_env() -> Self {
        let disk = std::env::var_os("GOPIM_CACHE")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        let cap_bytes = std::env::var("GOPIM_CACHE_MEM_BYTES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_MEM_BYTES);
        let mut cache = RunCache::new(disk, cap_bytes);
        cache.enabled = !matches!(
            std::env::var("GOPIM_NO_CACHE").as_deref(),
            Ok("1") | Ok("true")
        );
        cache
    }

    /// Whether lookups and stores are active right now.
    pub fn is_active(&self) -> bool {
        self.enabled && DISABLED_SCOPES.load(Ordering::SeqCst) == 0
    }

    /// The disk-tier directory, if configured.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref()
    }

    /// A copy of the internal statistics.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            disk_hits: self.stats.disk_hits.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            corrupt: self.stats.corrupt.load(Ordering::Relaxed),
        }
    }

    fn lock_mem(&self) -> DepMutexGuard<'_, MemTier> {
        // DepMutex recovers from poisoning: a poisoned lock only means
        // another thread panicked mid-insert; the map itself is still
        // structurally sound, and the worst outcome of a torn insert
        // is a spurious miss.
        self.mem.lock()
    }

    /// Raw lookup across both tiers; promotes disk hits into memory.
    pub fn lookup(&self, key: CacheKey) -> Option<Arc<Vec<u8>>> {
        if !self.is_active() {
            return None;
        }
        if let Some(bytes) = self.lock_mem().map.get(&key.as_u128()).cloned() {
            return Some(bytes);
        }
        let dir = self.disk.as_ref()?;
        match self.read_record(dir, key) {
            Some(bytes) => {
                self.stats.disk_hits.fetch_add(1, Ordering::Relaxed);
                DISK_HITS.add(1);
                BYTES_READ.add(bytes.len() as u64);
                let bytes = Arc::new(bytes);
                self.insert_mem(key, Arc::clone(&bytes));
                Some(bytes)
            }
            None => {
                DISK_MISSES.add(1);
                None
            }
        }
    }

    /// Byte-level lookup with hit/miss accounting. The serve layer's
    /// entry point: a job server relays results as opaque codec bytes
    /// and never decodes them, so the typed
    /// [`RunCache::get_or_compute`] path does not apply, but the
    /// hit/miss statistics should still tell the truth.
    pub fn get_bytes(&self, key: CacheKey) -> Option<Arc<Vec<u8>>> {
        if !self.is_active() {
            return None;
        }
        match self.lookup(key) {
            Some(bytes) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                HITS.add(1);
                Some(bytes)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                MISSES.add(1);
                None
            }
        }
    }

    /// Raw store into both tiers.
    pub fn store(&self, key: CacheKey, bytes: Arc<Vec<u8>>) {
        if !self.is_active() {
            return;
        }
        BYTES_WRITTEN.add(bytes.len() as u64);
        if let Some(dir) = self.disk.as_ref() {
            self.write_record(dir, key, &bytes);
        }
        self.insert_mem(key, bytes);
    }

    /// The main entry point: decode a hit, or compute + encode + store
    /// on a miss. The returned value is bitwise identical either way —
    /// both arms pass through the same codec bytes.
    pub fn get_or_compute<T: CacheValue>(&self, key: CacheKey, compute: impl FnOnce() -> T) -> T {
        if !self.is_active() {
            return compute();
        }
        if let Some(bytes) = self.lookup(key) {
            if let Some(v) = T::from_bytes(&bytes) {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                HITS.add(1);
                return v;
            }
            // The bytes exist but decode as the wrong shape: treat as
            // corruption (e.g. a key collision across value types,
            // which the domain tags make astronomically unlikely).
            self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
            CORRUPT.add(1);
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        MISSES.add(1);
        let v = compute();
        self.store(key, Arc::new(v.to_bytes()));
        v
    }

    fn insert_mem(&self, key: CacheKey, bytes: Arc<Vec<u8>>) {
        let mut mem = self.lock_mem();
        let k = key.as_u128();
        if mem.map.contains_key(&k) {
            return;
        }
        mem.bytes = mem.bytes.saturating_add(bytes.len());
        mem.map.insert(k, bytes);
        mem.order.push_back(k);
        let mut evicted = 0u64;
        while mem.bytes > self.cap_bytes && mem.order.len() > 1 {
            if let Some(old) = mem.order.pop_front() {
                if let Some(b) = mem.map.remove(&old) {
                    mem.bytes = mem.bytes.saturating_sub(b.len());
                    evicted += 1;
                }
            }
        }
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
            EVICTIONS.add(evicted);
        }
    }

    fn record_path(dir: &Path, key: CacheKey) -> PathBuf {
        dir.join(format!("{}.gpc", key.to_hex()))
    }

    fn read_record(&self, dir: &Path, key: CacheKey) -> Option<Vec<u8>> {
        let raw = std::fs::read(Self::record_path(dir, key)).ok()?;
        let parsed = parse_record(&raw, key);
        if parsed.is_none() {
            self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
            CORRUPT.add(1);
        }
        parsed
    }

    fn write_record(&self, dir: &Path, key: CacheKey, payload: &[u8]) {
        // Every step degrades silently: a read-only or vanished cache
        // directory must never fail a run.
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let mut record = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
        record.extend_from_slice(&MAGIC);
        record.extend_from_slice(&RECORD_FORMAT_VERSION.to_le_bytes());
        record.extend_from_slice(&KEY_SCHEMA_VERSION.to_le_bytes());
        record.extend_from_slice(&key.to_bytes());
        record.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        record.extend_from_slice(payload);
        record.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        // Temp-then-rename keeps concurrent writers (several bench
        // bins sharing one GOPIM_CACHE dir) from ever exposing a torn
        // record; the per-process suffix keeps their temp files apart.
        let tmp = dir.join(format!(".{}.tmp{}", key.to_hex(), std::process::id()));
        if std::fs::write(&tmp, &record).is_err() {
            return;
        }
        if std::fs::rename(&tmp, Self::record_path(dir, key)).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// Validates and unwraps one disk record; `None` on any mismatch.
fn parse_record(raw: &[u8], key: CacheKey) -> Option<Vec<u8>> {
    if raw.len() < HEADER_LEN + 8 || raw[..4] != MAGIC {
        return None;
    }
    let word32 = |at: usize| {
        let mut w = [0u8; 4];
        w.copy_from_slice(&raw[at..at + 4]);
        u32::from_le_bytes(w)
    };
    if word32(4) != RECORD_FORMAT_VERSION || word32(8) != KEY_SCHEMA_VERSION {
        return None;
    }
    let mut kb = [0u8; 16];
    kb.copy_from_slice(&raw[12..28]);
    if CacheKey::from_bytes(kb) != key {
        return None;
    }
    let mut lb = [0u8; 8];
    lb.copy_from_slice(&raw[28..36]);
    let len = usize::try_from(u64::from_le_bytes(lb)).ok()?;
    if raw.len() != HEADER_LEN + len + 8 {
        return None;
    }
    let payload = &raw[HEADER_LEN..HEADER_LEN + len];
    let mut cb = [0u8; 8];
    cb.copy_from_slice(&raw[HEADER_LEN + len..]);
    if fnv1a64(payload) != u64::from_le_bytes(cb) {
        return None;
    }
    Some(payload.to_vec())
}

/// The process-wide cache, configured from the environment on first
/// use.
pub fn global() -> &'static RunCache {
    static GLOBAL: OnceLock<RunCache> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        // Contribute end-of-run cache statistics to the run manifest
        // (no-op unless GOPIM_MANIFEST is set). The provider is polled
        // at render time, so the counts cover the whole run.
        gopim_obs::manifest::register_provider(|| {
            use gopim_obs::manifest::Value;
            let s = global().stats();
            vec![
                ("cache.hits".to_string(), Value::U64(s.hits)),
                ("cache.misses".to_string(), Value::U64(s.misses)),
                ("cache.disk_hits".to_string(), Value::U64(s.disk_hits)),
                ("cache.evictions".to_string(), Value::U64(s.evictions)),
                ("cache.corrupt".to_string(), Value::U64(s.corrupt)),
            ]
        });
        RunCache::from_env()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::key_of;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gopim-cache-test-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn memory_tier_round_trips() {
        let cache = RunCache::new(None, 1 << 20);
        let key = key_of("test", &1u64);
        let a: Vec<f64> = cache.get_or_compute(key, || vec![1.0, 2.0, 3.0]);
        let b: Vec<f64> = cache.get_or_compute(key, || panic!("must hit"));
        assert_eq!(a, b);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn disk_tier_round_trips_and_survives_fresh_memory() {
        let dir = temp_dir("disk");
        let key = key_of("test", &2u64);
        let writer = RunCache::new(Some(dir.clone()), 1 << 20);
        let v: Vec<f64> = writer.get_or_compute(key, || vec![0.5, -0.0]);
        let reader = RunCache::new(Some(dir.clone()), 1 << 20);
        let w: Vec<f64> = reader.get_or_compute(key, || panic!("must hit via disk"));
        assert_eq!(v.len(), w.len());
        assert!(v.iter().zip(&w).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(reader.stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_records_are_misses() {
        let dir = temp_dir("corrupt");
        let key = key_of("test", &3u64);
        let writer = RunCache::new(Some(dir.clone()), 1 << 20);
        let _: u64 = writer.get_or_compute(key, || 99);
        // Flip one payload byte on disk.
        let path = RunCache::record_path(&dir, key);
        let mut raw = std::fs::read(&path).unwrap();
        let at = raw.len() - 9;
        raw[at] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();
        let reader = RunCache::new(Some(dir.clone()), 1 << 20);
        let v: u64 = reader.get_or_compute(key, || 7);
        assert_eq!(v, 7);
        assert_eq!(reader.stats().corrupt, 1);
        // Truncated record likewise.
        std::fs::write(&path, &raw[..10]).unwrap();
        let reader2 = RunCache::new(Some(dir), 1 << 20);
        let v2: u64 = reader2.get_or_compute(key, || 8);
        assert_eq!(v2, 8);
    }

    #[test]
    fn eviction_respects_byte_budget() {
        let cache = RunCache::new(None, 64);
        for i in 0..16u64 {
            let key = key_of("evict", &i);
            let _: Vec<u64> = cache.get_or_compute(key, || vec![i; 4]);
        }
        assert!(cache.stats().evictions > 0);
        assert!(cache.lock_mem().bytes <= 64 + 40);
    }

    #[test]
    fn with_disabled_bypasses_all_tiers() {
        let cache = RunCache::new(None, 1 << 20);
        let key = key_of("test", &4u64);
        let _: u64 = cache.get_or_compute(key, || 1);
        let fresh: u64 = with_disabled(|| cache.get_or_compute(key, || 2));
        assert_eq!(fresh, 2);
        let hit: u64 = cache.get_or_compute(key, || 3);
        assert_eq!(hit, 1);
    }
}
