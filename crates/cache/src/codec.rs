//! Length-prefixed byte codec for cached values.
//!
//! The store holds *bytes*, not structures: a hit hands back exactly
//! the byte string a fresh computation would have encoded, so the
//! "cached results are bitwise identical" contract reduces to the
//! codec being a bijection on the values it accepts. The format is
//! deliberately primitive — little-endian fixed-width integers,
//! IEEE-754 bit patterns for floats, `u64` length prefixes for
//! sequences — with no self-description; the [`CacheKey`] already
//! names the type and schema version of what the bytes mean.
//!
//! Decoding is total and panic-free: every `take_*` returns `Option`,
//! and [`CacheValue::from_bytes`] additionally requires the buffer to
//! be fully consumed, so a truncated or mis-typed record is a cache
//! miss, never an error.
//!
//! [`CacheKey`]: crate::hash::CacheKey

/// Append-only byte sink for encoding.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` in 64-bit form.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Cursor over an encoded byte string; every read is checked.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Option<u32> {
        let s = self.take(4)?;
        let mut w = [0u8; 4];
        w.copy_from_slice(s);
        Some(u32::from_le_bytes(w))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Option<u64> {
        let s = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(s);
        Some(u64::from_le_bytes(w))
    }

    /// Reads a `usize`; fails if the stored value does not fit.
    pub fn take_usize(&mut self) -> Option<usize> {
        usize::try_from(self.take_u64()?).ok()
    }

    /// Reads an `f64` bit pattern.
    pub fn take_f64(&mut self) -> Option<f64> {
        self.take_u64().map(f64::from_bits)
    }

    /// Reads a boolean; any byte other than 0/1 is a decode failure.
    pub fn take_bool(&mut self) -> Option<bool> {
        match self.take_u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.take_usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Option<String> {
        let b = self.take_bytes()?;
        String::from_utf8(b.to_vec()).ok()
    }
}

/// A value that round-trips through the store as exact bytes.
pub trait CacheValue: Sized {
    /// Appends `self` to `e`.
    fn encode(&self, e: &mut Encoder);

    /// Reads one value from `d`; `None` on any malformed input.
    fn decode(d: &mut Decoder<'_>) -> Option<Self>;

    /// Encodes into a fresh byte string.
    fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.into_bytes()
    }

    /// Decodes a full byte string; trailing bytes are a failure.
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut d = Decoder::new(bytes);
        let v = Self::decode(&mut d)?;
        if d.is_exhausted() {
            Some(v)
        } else {
            None
        }
    }
}

impl CacheValue for u32 {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        d.take_u32()
    }
}

impl CacheValue for u64 {
    fn encode(&self, e: &mut Encoder) {
        e.put_u64(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        d.take_u64()
    }
}

impl CacheValue for usize {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        d.take_usize()
    }
}

impl CacheValue for f64 {
    fn encode(&self, e: &mut Encoder) {
        e.put_f64(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        d.take_f64()
    }
}

impl CacheValue for bool {
    fn encode(&self, e: &mut Encoder) {
        e.put_bool(*self);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        d.take_bool()
    }
}

impl CacheValue for String {
    fn encode(&self, e: &mut Encoder) {
        e.put_str(self);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        d.take_str()
    }
}

impl<T: CacheValue> CacheValue for Vec<T> {
    fn encode(&self, e: &mut Encoder) {
        e.put_usize(self.len());
        for v in self {
            v.encode(e);
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        let n = d.take_usize()?;
        // Guard against absurd lengths from corrupt records before
        // reserving: each element needs at least one byte.
        if n > d.buf.len().saturating_sub(d.pos) {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(d)?);
        }
        Some(out)
    }
}

impl<T: CacheValue> CacheValue for Option<T> {
    fn encode(&self, e: &mut Encoder) {
        match self {
            None => e.put_u8(0),
            Some(v) => {
                e.put_u8(1);
                v.encode(e);
            }
        }
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        match d.take_u8()? {
            0 => Some(None),
            1 => Some(Some(T::decode(d)?)),
            _ => None,
        }
    }
}

impl<A: CacheValue, B: CacheValue> CacheValue for (A, B) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        Some((A::decode(d)?, B::decode(d)?))
    }
}

impl<A: CacheValue, B: CacheValue, C: CacheValue> CacheValue for (A, B, C) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
        self.2.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        Some((A::decode(d)?, B::decode(d)?, C::decode(d)?))
    }
}

impl<A: CacheValue, B: CacheValue, C: CacheValue, D: CacheValue> CacheValue for (A, B, C, D) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
        self.2.encode(e);
        self.3.encode(e);
    }
    fn decode(d: &mut Decoder<'_>) -> Option<Self> {
        Some((A::decode(d)?, B::decode(d)?, C::decode(d)?, D::decode(d)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_exact() {
        let v: (Vec<f64>, String, Option<usize>) = (
            vec![1.5, -0.0, f64::INFINITY],
            "hello".to_string(),
            Some(42),
        );
        let bytes = v.to_bytes();
        let back = <(Vec<f64>, String, Option<usize>)>::from_bytes(&bytes);
        assert_eq!(back.as_ref(), Some(&v));
        // Bitwise: -0.0 survives as -0.0.
        let (floats, _, _) = back.unwrap();
        assert_eq!(floats[1].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn truncated_and_trailing_bytes_fail() {
        let bytes = vec![1.0f64, 2.0].to_bytes();
        assert!(Vec::<f64>::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(Vec::<f64>::from_bytes(&extra).is_none());
        assert!(Vec::<f64>::from_bytes(&bytes).is_some());
    }

    #[test]
    fn corrupt_length_prefix_is_a_miss_not_an_abort() {
        let mut bytes = vec![0u8; 8];
        bytes[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Vec::<f64>::from_bytes(&bytes).is_none());
    }
}
