//! Fixed-key structural hashing: the canonical request key.
//!
//! A cache key must be a pure function of the *request's semantic
//! content* — never of process layout, hasher seeding, or field
//! address. [`CanonicalHasher`] therefore starts from compile-time
//! constants (plus [`KEY_SCHEMA_VERSION`], so a schema change retires
//! every old key at once) and mixes explicitly written primitives into
//! two independent 64-bit lanes, giving a 128-bit [`CacheKey`].
//!
//! Injectivity discipline, enforced by convention in every
//! [`CanonicalHash`] impl:
//!
//! - variable-length data (strings, slices) is **length-prefixed**;
//! - enums write a **discriminant tag** before their payload;
//! - every top-level key starts with a **domain tag**
//!   (e.g. `"run_system/v1"`) so values of different kinds can never
//!   collide by field coincidence;
//! - floats are hashed as IEEE-754 bit patterns (`to_bits`), the same
//!   representation the byte codec stores.

/// Version of the key schema. Bump whenever the meaning or layout of
/// any canonical hash changes (field added, tag renumbered, semantics
/// of a config knob altered): the version is folded into the hasher's
/// initial state, so every previously stored key silently misses.
pub const KEY_SCHEMA_VERSION: u32 = 1;

/// Lane seeds and mix constants: splitmix64 / xxhash-style odd
/// constants, fixed at compile time so keys are stable across
/// processes, platforms and runs.
const LANE_A_SEED: u64 = 0x9E37_79B9_7F4A_7C15;
const LANE_B_SEED: u64 = 0xC2B2_AE3D_27D4_EB4F;
const MUL_A: u64 = 0xBF58_476D_1CE4_E5B9;
const MUL_B: u64 = 0x94D0_49BB_1331_11EB;

/// splitmix64 finalizer: a cheap full-avalanche permutation.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(MUL_A);
    z = (z ^ (z >> 27)).wrapping_mul(MUL_B);
    z ^ (z >> 31)
}

/// A 128-bit canonical request key.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CacheKey(u128);

impl CacheKey {
    /// Rebuilds a key from its raw value (used by the disk tier).
    pub fn from_u128(v: u128) -> Self {
        CacheKey(v)
    }

    /// The raw 128-bit value.
    pub fn as_u128(&self) -> u128 {
        self.0
    }

    /// Little-endian byte form, as stamped into disk records.
    pub fn to_bytes(&self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Inverse of [`CacheKey::to_bytes`].
    pub fn from_bytes(b: [u8; 16]) -> Self {
        CacheKey(u128::from_le_bytes(b))
    }

    /// Lower-case hex form: the disk tier's file stem and the fixture
    /// pin format used by the property tests.
    pub fn to_hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the `to_hex` form; `None` on malformed input.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(CacheKey)
    }
}

/// The fixed-key structural hasher. Two lanes mixed with different
/// constants make accidental 64-bit collisions across a sweep grid
/// astronomically unlikely while staying allocation-free.
#[derive(Clone, Debug)]
pub struct CanonicalHasher {
    a: u64,
    b: u64,
    /// Count of primitive writes, folded into `finish` so that e.g.
    /// `["ab","c"]` and `["a","bc"]` differ even under length-prefix
    /// mistakes in a hand-written impl.
    writes: u64,
}

impl CanonicalHasher {
    /// A hasher seeded with the fixed lane keys and the key schema
    /// version.
    pub fn new() -> Self {
        let mut h = CanonicalHasher {
            a: LANE_A_SEED,
            b: LANE_B_SEED,
            writes: 0,
        };
        h.write_u32(KEY_SCHEMA_VERSION);
        h
    }

    /// Core primitive: folds one 64-bit word into both lanes.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.a = mix(self.a ^ v.wrapping_mul(MUL_B));
        self.b = mix(self.b.rotate_left(23) ^ v.wrapping_mul(MUL_A));
        self.writes = self.writes.wrapping_add(1);
    }

    /// Writes a 32-bit word (widened; the width is part of the value's
    /// canonical form, so `1u32` and `1u64` hash identically on
    /// purpose — impls separate fields by position and tags).
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    /// Writes a byte.
    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    /// Writes a `usize` in its platform-independent 64-bit form.
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Writes a boolean as 0/1.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(u64::from(v));
    }

    /// Writes an `f64` as its IEEE-754 bit pattern. `-0.0` and `0.0`
    /// hash differently — that is deliberate: the cache contract is
    /// *bitwise* identity, so keys distinguish everything the stored
    /// bytes would.
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Writes a length-prefixed byte string.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.write_u64(u64::from_le_bytes(w));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            self.write_u64(u64::from_le_bytes(w));
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Domain-separation tag: write this first in every top-level key
    /// and before each enum payload, so differently-typed requests can
    /// never collide by field coincidence.
    pub fn write_tag(&mut self, tag: &str) {
        self.write_str(tag);
    }

    /// Finalizes into the 128-bit key.
    pub fn finish(&self) -> CacheKey {
        let a = mix(self.a ^ self.writes);
        let b = mix(self.b ^ self.writes.rotate_left(32));
        CacheKey((u128::from(a) << 64) | u128::from(b))
    }
}

impl Default for CanonicalHasher {
    fn default() -> Self {
        CanonicalHasher::new()
    }
}

/// Structural hashing for cacheable request types.
///
/// Deliberately derive-free: every impl lists its fields explicitly,
/// which is the reviewable record of what the cache key covers (and
/// what it does not — anything omitted here must be a pure function
/// of what is included, or the type must not be cached).
pub trait CanonicalHash {
    /// Folds `self`'s semantic content into `h`.
    fn canonical_hash(&self, h: &mut CanonicalHasher);
}

/// Hashes `value` under a fresh hasher with a leading domain `tag`.
pub fn key_of<T: CanonicalHash + ?Sized>(tag: &str, value: &T) -> CacheKey {
    let mut h = CanonicalHasher::new();
    h.write_tag(tag);
    value.canonical_hash(&mut h);
    h.finish()
}

impl CanonicalHash for u8 {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        h.write_u8(*self);
    }
}

impl CanonicalHash for u32 {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        h.write_u32(*self);
    }
}

impl CanonicalHash for u64 {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        h.write_u64(*self);
    }
}

impl CanonicalHash for u128 {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        h.write_u64((*self >> 64) as u64);
        h.write_u64(*self as u64);
    }
}

impl CanonicalHash for CacheKey {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        self.0.canonical_hash(h);
    }
}

impl CanonicalHash for usize {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        h.write_usize(*self);
    }
}

impl CanonicalHash for bool {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        h.write_bool(*self);
    }
}

impl CanonicalHash for f64 {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        h.write_f64(*self);
    }
}

impl CanonicalHash for str {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        h.write_str(self);
    }
}

impl CanonicalHash for String {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        h.write_str(self);
    }
}

impl<T: CanonicalHash + ?Sized> CanonicalHash for &T {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        (*self).canonical_hash(h);
    }
}

impl<T: CanonicalHash> CanonicalHash for Option<T> {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.canonical_hash(h);
            }
        }
    }
}

impl<T: CanonicalHash> CanonicalHash for [T] {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        h.write_u64(self.len() as u64);
        for v in self {
            v.canonical_hash(h);
        }
    }
}

impl<T: CanonicalHash> CanonicalHash for Vec<T> {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        self.as_slice().canonical_hash(h);
    }
}

impl<A: CanonicalHash, B: CanonicalHash> CanonicalHash for (A, B) {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        self.0.canonical_hash(h);
        self.1.canonical_hash(h);
    }
}

impl<A: CanonicalHash, B: CanonicalHash, C: CanonicalHash> CanonicalHash for (A, B, C) {
    fn canonical_hash(&self, h: &mut CanonicalHasher) {
        self.0.canonical_hash(h);
        self.1.canonical_hash(h);
        self.2.canonical_hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_and_sensitive() {
        let k1 = key_of("t", &(1u64, 2u64));
        let k2 = key_of("t", &(1u64, 2u64));
        assert_eq!(k1, k2);
        assert_ne!(k1, key_of("t", &(2u64, 1u64)));
        assert_ne!(k1, key_of("u", &(1u64, 2u64)));
    }

    #[test]
    fn length_prefix_separates_concatenations() {
        let a = key_of("t", &vec!["ab".to_string(), "c".to_string()]);
        let b = key_of("t", &vec!["a".to_string(), "bc".to_string()]);
        assert_ne!(a, b);
    }

    #[test]
    fn float_bits_matter() {
        assert_ne!(key_of("t", &0.0f64), key_of("t", &-0.0f64));
        assert_ne!(key_of("t", &1.0f64), key_of("t", &1.0000000000000002f64));
    }

    #[test]
    fn hex_round_trips() {
        let k = key_of("t", &42u64);
        assert_eq!(CacheKey::from_hex(&k.to_hex()), Some(k));
        assert_eq!(CacheKey::from_bytes(k.to_bytes()), k);
        assert!(CacheKey::from_hex("xyz").is_none());
    }
}
