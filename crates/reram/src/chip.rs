//! Whole-chip crossbar resource accounting.
//!
//! The allocator (Algorithm 1 of the paper) hands out *unused* crossbars
//! as replicas; [`ChipResources`] is the ledger it draws from. The paper
//! defines the resource constraint as the full 16 GB array (§VII-A).

use std::fmt;

use crate::spec::AcceleratorSpec;

/// Error returned when a reservation exceeds the remaining crossbars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReserveError {
    /// Crossbars requested.
    pub requested: usize,
    /// Crossbars actually available.
    pub available: usize,
}

impl fmt::Display for ReserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requested {} crossbars but only {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for ReserveError {}

/// A ledger of allocated vs. free crossbars on one chip.
///
/// # Example
///
/// ```
/// use gopim_reram::{AcceleratorSpec, ChipResources};
///
/// let mut chip = ChipResources::new(&AcceleratorSpec::paper());
/// let total = chip.total();
/// chip.reserve(100)?;
/// assert_eq!(chip.unused(), total - 100);
/// # Ok::<(), gopim_reram::chip::ReserveError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipResources {
    total: usize,
    used: usize,
}

impl ChipResources {
    /// A fresh, fully-unused chip.
    pub fn new(spec: &AcceleratorSpec) -> Self {
        ChipResources {
            total: spec.total_crossbars(),
            used: 0,
        }
    }

    /// A ledger with an explicit crossbar budget (for scaled-down
    /// experiments).
    pub fn with_budget(total: usize) -> Self {
        ChipResources { total, used: 0 }
    }

    /// Total crossbars on the chip.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Crossbars currently reserved.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Crossbars still free.
    pub fn unused(&self) -> usize {
        self.total - self.used
    }

    /// Reserves `n` crossbars.
    ///
    /// # Errors
    ///
    /// Returns [`ReserveError`] (and reserves nothing) if fewer than `n`
    /// crossbars are free.
    pub fn reserve(&mut self, n: usize) -> Result<(), ReserveError> {
        if n > self.unused() {
            return Err(ReserveError {
                requested: n,
                available: self.unused(),
            });
        }
        self.used += n;
        Ok(())
    }

    /// Releases `n` crossbars back to the pool.
    ///
    /// # Panics
    ///
    /// Panics if more crossbars are released than were reserved.
    pub fn release(&mut self, n: usize) {
        assert!(n <= self.used, "releasing {n} but only {} used", self.used);
        self.used -= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_chip_total() {
        let chip = ChipResources::new(&AcceleratorSpec::paper());
        assert_eq!(chip.total(), 16_777_216);
        assert_eq!(chip.unused(), chip.total());
    }

    #[test]
    fn reserve_and_release_round_trip() {
        let mut chip = ChipResources::with_budget(10);
        chip.reserve(7).unwrap();
        assert_eq!(chip.unused(), 3);
        chip.release(4);
        assert_eq!(chip.used(), 3);
    }

    #[test]
    fn over_reserve_fails_atomically() {
        let mut chip = ChipResources::with_budget(5);
        chip.reserve(3).unwrap();
        let err = chip.reserve(3).unwrap_err();
        assert_eq!(err.requested, 3);
        assert_eq!(err.available, 2);
        assert_eq!(chip.used(), 3, "failed reserve must not consume");
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut chip = ChipResources::with_budget(5);
        chip.release(1);
    }
}
