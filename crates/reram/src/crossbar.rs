//! A functional (numerically simulated) ReRAM crossbar.
//!
//! The analytic pipeline model never needs cell-level state, but the
//! reproduction should demonstrate that the modeled dataflow *computes
//! the right thing*: weights quantized to 16-bit fixed point, stored as
//! a differential pair of non-negative conductance arrays, inputs
//! streamed 2 bits at a time through the DACs, bitline sums digitized
//! by 8-bit ADCs and recombined by shift-and-add. [`FunctionalCrossbar`]
//! implements exactly that and is validated against floating-point MVM.

use crate::spec::AcceleratorSpec;

/// A programmed crossbar pair computing `y = xᵀ W` for a `rows × cols`
/// fixed-point matrix `W`.
///
/// # Example
///
/// ```
/// use gopim_reram::crossbar::FunctionalCrossbar;
/// use gopim_reram::spec::AcceleratorSpec;
///
/// let spec = AcceleratorSpec::paper();
/// let w = vec![vec![0.5, -0.25], vec![0.125, 1.0]];
/// let xbar = FunctionalCrossbar::program(&spec, &w, 1.0);
/// let y = xbar.mvm(&[1.0, 1.0], 1.0);
/// assert!((y[0] - 0.625).abs() < 1e-2);
/// assert!((y[1] - 0.75).abs() < 1e-2);
/// ```
#[derive(Debug, Clone)]
pub struct FunctionalCrossbar {
    rows: usize,
    cols: usize,
    /// Positive-path conductances, quantized, row-major.
    pos: Vec<u16>,
    /// Negative-path conductances, quantized, row-major.
    neg: Vec<u16>,
    /// Scale: real value = (pos − neg) × weight_scale / (2^15).
    weight_scale: f64,
    value_bits: u32,
    dac_bits: u32,
    adc_bits: u32,
}

impl FunctionalCrossbar {
    /// Quantizes and programs `weights` (any `rows × cols` shape that
    /// fits the spec's crossbar after tiling — here a single logical
    /// array is simulated, so `rows`/`cols` may exceed 64 for testing
    /// convenience). `weight_range` is the full-scale magnitude mapped
    /// to the top code.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or ragged, or if
    /// `weight_range <= 0`.
    pub fn program(spec: &AcceleratorSpec, weights: &[Vec<f64>], weight_range: f64) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        assert!(weight_range > 0.0, "weight range must be positive");
        let rows = weights.len();
        let cols = weights[0].len();
        let full_scale = (1i32 << (spec.value_bits - 1)) - 1; // 32767
        let mut pos = Vec::with_capacity(rows * cols);
        let mut neg = Vec::with_capacity(rows * cols);
        for row in weights {
            assert_eq!(row.len(), cols, "ragged weight matrix");
            for &w in row {
                let clamped = (w / weight_range).clamp(-1.0, 1.0);
                let q = (clamped * full_scale as f64).round() as i32;
                if q >= 0 {
                    pos.push(q as u16);
                    neg.push(0);
                } else {
                    pos.push(0);
                    neg.push((-q) as u16);
                }
            }
        }
        FunctionalCrossbar {
            rows,
            cols,
            pos,
            neg,
            weight_scale: weight_range,
            value_bits: spec.value_bits,
            dac_bits: spec.dac_bits,
            adc_bits: spec.adc_bits,
        }
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Injects multiplicative conductance variation: each programmed
    /// cell's stored code is perturbed by a factor drawn uniformly from
    /// `1 ± sigma` (deterministic per seed). Models ReRAM device-to-
    /// device variation; see the `variation_tolerance` test for the
    /// accuracy impact.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not in `[0, 1)`.
    pub fn inject_variation(&mut self, sigma: f64, seed: u64) {
        assert!((0.0..1.0).contains(&sigma), "sigma must be in [0, 1)");
        // Small deterministic LCG so the crate stays rand-free here.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next_factor = |sigma: f64| -> f64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let unit = (state >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
            1.0 + sigma * (2.0 * unit - 1.0)
        };
        for cell in self.pos.iter_mut().chain(self.neg.iter_mut()) {
            if *cell != 0 {
                let perturbed = f64::from(*cell) * next_factor(sigma);
                *cell = perturbed.round().clamp(0.0, f64::from(u16::MAX)) as u16;
            }
        }
    }

    /// Forces bitline columns into a stuck state: for each
    /// `(column, stuck_one)` entry, every cell of that column is
    /// pinned to zero conductance (`stuck_one = false`) or to the
    /// full-scale code on the positive path (`stuck_one = true`).
    /// Models hard stuck-at faults the fault campaign injects;
    /// out-of-range columns are ignored.
    pub fn inject_stuck_cells(&mut self, columns: &[(usize, bool)]) {
        let full_scale = ((1i32 << (self.value_bits - 1)) - 1) as u16;
        for &(col, stuck_one) in columns {
            if col >= self.cols {
                continue;
            }
            for row in 0..self.rows {
                let idx = row * self.cols + col;
                if stuck_one {
                    self.pos[idx] = full_scale;
                    self.neg[idx] = 0;
                } else {
                    self.pos[idx] = 0;
                    self.neg[idx] = 0;
                }
            }
        }
    }

    /// Performs the bit-streamed analog MVM `y = xᵀ W`.
    ///
    /// The input is quantized to `value_bits` against `input_range`,
    /// split into `value_bits / dac_bits` slices fed LSB-first; each
    /// slice's bitline current is digitized by the ADC (saturating at
    /// `2^adc_bits − 1` on a per-64-row subarray basis) and recombined
    /// with shift-and-add.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` or `input_range <= 0`.
    #[allow(clippy::needless_range_loop)] // parallel pos/neg arrays are indexed
    pub fn mvm(&self, input: &[f64], input_range: f64) -> Vec<f64> {
        assert_eq!(input.len(), self.rows, "input length mismatch");
        assert!(input_range > 0.0, "input range must be positive");
        let in_scale = (1i64 << (self.value_bits - 1)) - 1;
        let quantized: Vec<i64> = input
            .iter()
            .map(|&x| ((x / input_range).clamp(-1.0, 1.0) * in_scale as f64).round() as i64)
            .collect();
        // Split signed inputs into sign and magnitude; stream the
        // magnitude dac_bits at a time.
        let num_slices = self.value_bits.div_ceil(self.dac_bits);
        let slice_mask = (1i64 << self.dac_bits) - 1;
        let adc_max = (1i64 << self.adc_bits) - 1;

        let mut out = vec![0.0; self.cols];
        for c in 0..self.cols {
            let mut acc: i64 = 0;
            for s in 0..num_slices {
                // One input slice against the positive and negative
                // arrays. The ADC digitizes each 64-row subarray's sum.
                let mut sub_pos: i64 = 0;
                let mut sub_neg: i64 = 0;
                let mut pos_col: i64 = 0;
                let mut neg_col: i64 = 0;
                for r in 0..self.rows {
                    let xin = quantized[r];
                    let mag = xin.unsigned_abs() as i64;
                    let slice = (mag >> (s * self.dac_bits)) & slice_mask;
                    if slice != 0 {
                        let signed_slice = if xin < 0 { -slice } else { slice };
                        let idx = r * self.cols + c;
                        pos_col += signed_slice * i64::from(self.pos[idx]);
                        neg_col += signed_slice * i64::from(self.neg[idx]);
                    }
                    if (r + 1) % 64 == 0 || r + 1 == self.rows {
                        // ADC step: saturate the subarray partial sum.
                        // Currents are scaled so full-scale maps to the
                        // top ADC code; here saturation only triggers on
                        // pathological inputs.
                        sub_pos += pos_col.clamp(-adc_max << 18, adc_max << 18);
                        sub_neg += neg_col.clamp(-adc_max << 18, adc_max << 18);
                        pos_col = 0;
                        neg_col = 0;
                    }
                }
                acc += (sub_pos - sub_neg) << (s * self.dac_bits);
            }
            // Dequantize: weights were scaled by 2^15/weight_scale and
            // inputs by 2^15/input_range.
            out[c] =
                acc as f64 * self.weight_scale * input_range / (in_scale as f64 * in_scale as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn float_mvm(w: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        let cols = w[0].len();
        let mut y = vec![0.0; cols];
        for (r, row) in w.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                y[c] += x[r] * v;
            }
        }
        y
    }

    #[test]
    fn matches_float_mvm_within_quantization_error() {
        let spec = AcceleratorSpec::paper();
        let w: Vec<Vec<f64>> = (0..16)
            .map(|r| (0..8).map(|c| ((r * 8 + c) as f64).sin() * 0.7).collect())
            .collect();
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).cos() * 0.9).collect();
        let xbar = FunctionalCrossbar::program(&spec, &w, 1.0);
        let y = xbar.mvm(&x, 1.0);
        let y_ref = float_mvm(&w, &x);
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 5e-3, "analog {a} vs float {b}");
        }
    }

    #[test]
    fn stuck_at_zero_column_reads_zero_and_stuck_at_one_reads_full_scale() {
        let spec = AcceleratorSpec::paper();
        let w: Vec<Vec<f64>> = (0..8)
            .map(|r| (0..4).map(|c| ((r + c) as f64 * 0.3).sin() * 0.8).collect())
            .collect();
        let x = vec![0.5; 8];
        let clean = FunctionalCrossbar::program(&spec, &w, 1.0);
        let mut faulty = clean.clone();
        faulty.inject_stuck_cells(&[(1, false), (2, true), (99, true)]);
        let y_clean = clean.mvm(&x, 1.0);
        let y_faulty = faulty.mvm(&x, 1.0);
        // Column 1 stuck at zero conductance: output exactly 0.
        assert_eq!(y_faulty[1], 0.0);
        // Column 2 stuck at full scale: at least the clean magnitude,
        // and clearly positive (every cell conducts fully).
        assert!(y_faulty[2] > y_clean[2].abs());
        // Untouched columns are unaffected.
        assert_eq!(y_faulty[0], y_clean[0]);
        assert_eq!(y_faulty[3], y_clean[3]);
    }

    #[test]
    fn negative_weights_use_differential_path() {
        let spec = AcceleratorSpec::paper();
        let w = vec![vec![-1.0], vec![1.0]];
        let xbar = FunctionalCrossbar::program(&spec, &w, 1.0);
        let y = xbar.mvm(&[1.0, 0.5], 1.0);
        assert!((y[0] - (-0.5)).abs() < 1e-3);
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let spec = AcceleratorSpec::paper();
        let w = vec![vec![0.3, -0.4]];
        let xbar = FunctionalCrossbar::program(&spec, &w, 1.0);
        assert_eq!(xbar.mvm(&[0.0], 1.0), vec![0.0, 0.0]);
    }

    #[test]
    fn weights_clamp_to_range() {
        let spec = AcceleratorSpec::paper();
        let w = vec![vec![5.0]];
        let xbar = FunctionalCrossbar::program(&spec, &w, 1.0);
        let y = xbar.mvm(&[1.0], 1.0);
        assert!(
            (y[0] - 1.0).abs() < 1e-3,
            "clamped to full scale, got {}",
            y[0]
        );
    }

    #[test]
    fn large_array_spanning_many_subarrays() {
        let spec = AcceleratorSpec::paper();
        let rows = 200;
        let w: Vec<Vec<f64>> = (0..rows).map(|r| vec![0.005 * (r % 3) as f64]).collect();
        let x = vec![0.5; rows];
        let xbar = FunctionalCrossbar::program(&spec, &w, 1.0);
        let y = xbar.mvm(&x, 1.0);
        let y_ref = float_mvm(&w, &x);
        assert!((y[0] - y_ref[0]).abs() < 2e-2, "{} vs {}", y[0], y_ref[0]);
    }

    #[test]
    fn variation_tolerance_is_graceful() {
        // 5 % conductance variation perturbs the MVM result by a few
        // percent, not catastrophically — the property analog GCN
        // inference relies on.
        let spec = AcceleratorSpec::paper();
        let w: Vec<Vec<f64>> = (0..32)
            .map(|r| {
                (0..8)
                    .map(|c| ((r * 8 + c) as f64 * 0.21).sin() * 0.7)
                    .collect()
            })
            .collect();
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.17).cos() * 0.8).collect();
        let clean = FunctionalCrossbar::program(&spec, &w, 1.0);
        let mut noisy = clean.clone();
        noisy.inject_variation(0.05, 42);
        let y_clean = clean.mvm(&x, 1.0);
        let y_noisy = noisy.mvm(&x, 1.0);
        let scale = y_clean
            .iter()
            .map(|v| v.abs())
            .fold(0.0, f64::max)
            .max(1e-9);
        for (a, b) in y_clean.iter().zip(&y_noisy) {
            assert!(
                (a - b).abs() < 0.15 * scale,
                "clean {a} vs noisy {b} (scale {scale})"
            );
        }
        // But the perturbation is real: outputs differ.
        assert!(y_clean
            .iter()
            .zip(&y_noisy)
            .any(|(a, b)| (a - b).abs() > 1e-6));
    }

    #[test]
    fn variation_is_deterministic_per_seed() {
        let spec = AcceleratorSpec::paper();
        let w = vec![vec![0.5, -0.3], vec![0.2, 0.9]];
        let mut a = FunctionalCrossbar::program(&spec, &w, 1.0);
        let mut b = FunctionalCrossbar::program(&spec, &w, 1.0);
        a.inject_variation(0.1, 7);
        b.inject_variation(0.1, 7);
        assert_eq!(a.mvm(&[1.0, 0.5], 1.0), b.mvm(&[1.0, 0.5], 1.0));
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn mvm_rejects_wrong_input_len() {
        let spec = AcceleratorSpec::paper();
        let xbar = FunctionalCrossbar::program(&spec, &[vec![1.0]], 1.0);
        let _ = xbar.mvm(&[1.0, 2.0], 1.0);
    }
}
