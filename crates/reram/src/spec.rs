//! Accelerator specification (the paper's Table II).
//!
//! All power values are milliwatts, areas mm², latencies nanoseconds,
//! exactly as published. One modeling convention carried through the
//! whole workspace: matrices are stored with a differential crossbar
//! pair for signed values, and 16-bit precision is realized *in time*
//! (8 write cycles per row, 8 input cycles per MVM with the 2-bit DACs)
//! rather than by duplicating columns. This convention makes the
//! crossbar counts reproduce the paper's Table VI exactly (ddi 256×256
//! weights ⇒ 32 crossbars).

/// Power and area of one hardware component (a Table II row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentSpec {
    /// Dynamic + leakage power, mW.
    pub power_mw: f64,
    /// Area, mm².
    pub area_mm2: f64,
}

/// Full accelerator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorSpec {
    /// Wordlines per crossbar (64).
    pub crossbar_rows: usize,
    /// Bitlines per crossbar (64).
    pub crossbar_cols: usize,
    /// Storage bits per ReRAM cell (2).
    pub bits_per_cell: u32,
    /// Value precision in bits (16).
    pub value_bits: u32,
    /// DAC resolution in bits (2): a 16-bit input is streamed over
    /// `value_bits / dac_bits = 8` cycles.
    pub dac_bits: u32,
    /// ADC resolution in bits (8).
    pub adc_bits: u32,
    /// Crossbars per differential pair for signed values (2).
    pub differential_pairs: usize,
    /// Crossbars per PE (32).
    pub crossbars_per_pe: usize,
    /// PEs per tile (8).
    pub pes_per_tile: usize,
    /// Tiles per chip (65,536).
    pub tiles_per_chip: usize,
    /// Crossbar read latency, ns (29.31).
    pub read_latency_ns: f64,
    /// Crossbar write latency, ns (50.88).
    pub write_latency_ns: f64,
    /// Number of crossbar rows that the chip's write drivers and power
    /// budget allow to be programmed concurrently, chip-wide. ReRAM
    /// writes within one crossbar are serial (§III-A); across crossbars
    /// they are parallel up to this budget.
    pub concurrent_write_rows: usize,
    /// ADC spec (per PE: 32 units).
    pub adc: ComponentSpec,
    /// DAC spec (per PE: 32×64 units).
    pub dac: ComponentSpec,
    /// Sample-and-hold spec (per PE: 32×64 units).
    pub sample_hold: ComponentSpec,
    /// Crossbar array spec (per crossbar).
    pub crossbar: ComponentSpec,
    /// Input register (4 KB per PE).
    pub input_register: ComponentSpec,
    /// Output register (512 B per PE).
    pub output_register: ComponentSpec,
    /// Shift-and-add units (16 per PE).
    pub shift_add: ComponentSpec,
    /// Tile input buffer (32 KB).
    pub input_buffer: ComponentSpec,
    /// Tile crossbar buffer (256 KB).
    pub crossbar_buffer: ComponentSpec,
    /// Tile output buffer (4 KB).
    pub output_buffer: ComponentSpec,
    /// Tile NFU (8 per tile).
    pub nfu: ComponentSpec,
    /// Tile PFU (8 per tile).
    pub pfu: ComponentSpec,
    /// Chip-level SRAM Weight Computer / Weight Manager (16-bit).
    pub weight_computer: ComponentSpec,
    /// Chip-level activation module (ReLU, 16-bit).
    pub activation_module: ComponentSpec,
    /// Chip-level central controller.
    pub central_controller: ComponentSpec,
}

impl AcceleratorSpec {
    /// The configuration of the paper's Table II.
    pub fn paper() -> Self {
        AcceleratorSpec {
            crossbar_rows: 64,
            crossbar_cols: 64,
            bits_per_cell: 2,
            value_bits: 16,
            dac_bits: 2,
            adc_bits: 8,
            differential_pairs: 2,
            crossbars_per_pe: 32,
            pes_per_tile: 8,
            tiles_per_chip: 65_536,
            read_latency_ns: 29.31,
            write_latency_ns: 50.88,
            concurrent_write_rows: 4_096,
            adc: ComponentSpec {
                power_mw: 64.0,
                area_mm2: 0.0384,
            },
            dac: ComponentSpec {
                power_mw: 0.5,
                area_mm2: 0.00034,
            },
            sample_hold: ComponentSpec {
                power_mw: 0.02,
                area_mm2: 0.00008,
            },
            crossbar: ComponentSpec {
                power_mw: 6.2,
                area_mm2: 0.00051,
            },
            input_register: ComponentSpec {
                power_mw: 2.32,
                area_mm2: 0.0038,
            },
            output_register: ComponentSpec {
                power_mw: 0.42,
                area_mm2: 0.0014,
            },
            shift_add: ComponentSpec {
                power_mw: 0.8,
                area_mm2: 0.00096,
            },
            input_buffer: ComponentSpec {
                power_mw: 7.95,
                area_mm2: 0.034,
            },
            crossbar_buffer: ComponentSpec {
                power_mw: 59.42,
                area_mm2: 0.208,
            },
            output_buffer: ComponentSpec {
                power_mw: 1.28,
                area_mm2: 0.0041,
            },
            nfu: ComponentSpec {
                power_mw: 2.04,
                area_mm2: 0.0024,
            },
            pfu: ComponentSpec {
                power_mw: 3.2,
                area_mm2: 0.00192,
            },
            weight_computer: ComponentSpec {
                power_mw: 99.6,
                area_mm2: 3.21,
            },
            activation_module: ComponentSpec {
                power_mw: 0.0266,
                area_mm2: 0.0030,
            },
            central_controller: ComponentSpec {
                power_mw: 580.41,
                area_mm2: 2.65,
            },
        }
    }

    /// Cells per crossbar (`rows × cols`).
    pub fn cells_per_crossbar(&self) -> usize {
        self.crossbar_rows * self.crossbar_cols
    }

    /// Total crossbars on the chip (16,777,216 for the paper config).
    pub fn total_crossbars(&self) -> usize {
        self.tiles_per_chip * self.pes_per_tile * self.crossbars_per_pe
    }

    /// Total ReRAM capacity in bytes (16 GiB for the paper config).
    pub fn total_bytes(&self) -> u64 {
        self.total_crossbars() as u64
            * self.cells_per_crossbar() as u64
            * u64::from(self.bits_per_cell)
            / 8
    }

    /// Input cycles needed to stream one `value_bits`-bit input through
    /// the `dac_bits` DACs (8 for the paper config).
    pub fn input_cycles(&self) -> u32 {
        self.value_bits.div_ceil(self.dac_bits)
    }

    /// Write cycles needed to program one `value_bits`-bit value into
    /// `bits_per_cell` cells (8 for the paper config).
    pub fn write_cycles(&self) -> u32 {
        self.value_bits.div_ceil(self.bits_per_cell)
    }

    /// Latency of one complete MVM issue (streaming one input vector
    /// through a crossbar), ns.
    pub fn mvm_latency_ns(&self) -> f64 {
        f64::from(self.input_cycles()) * self.read_latency_ns
    }

    /// Latency of programming one crossbar row (one mapped vertex /
    /// matrix row within a crossbar), ns.
    pub fn row_write_latency_ns(&self) -> f64 {
        f64::from(self.write_cycles()) * self.write_latency_ns
    }
}

impl Default for AcceleratorSpec {
    fn default() -> Self {
        AcceleratorSpec::paper()
    }
}

impl gopim_cache::CanonicalHash for ComponentSpec {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_f64(self.power_mw);
        h.write_f64(self.area_mm2);
    }
}

impl gopim_cache::CanonicalHash for AcceleratorSpec {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("reram.spec/v1");
        h.write_usize(self.crossbar_rows);
        h.write_usize(self.crossbar_cols);
        h.write_u32(self.bits_per_cell);
        h.write_u32(self.value_bits);
        h.write_u32(self.dac_bits);
        h.write_u32(self.adc_bits);
        h.write_usize(self.differential_pairs);
        h.write_usize(self.crossbars_per_pe);
        h.write_usize(self.pes_per_tile);
        h.write_usize(self.tiles_per_chip);
        h.write_f64(self.read_latency_ns);
        h.write_f64(self.write_latency_ns);
        h.write_usize(self.concurrent_write_rows);
        for c in [
            &self.adc,
            &self.dac,
            &self.sample_hold,
            &self.crossbar,
            &self.input_register,
            &self.output_register,
            &self.shift_add,
            &self.input_buffer,
            &self.crossbar_buffer,
            &self.output_buffer,
            &self.nfu,
            &self.pfu,
            &self.weight_computer,
            &self.activation_module,
            &self.central_controller,
        ] {
            c.canonical_hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_chip_has_16gb() {
        let s = AcceleratorSpec::paper();
        assert_eq!(s.total_crossbars(), 16_777_216);
        assert_eq!(s.total_bytes(), 16 * 1024 * 1024 * 1024);
    }

    #[test]
    fn derived_cycle_counts() {
        let s = AcceleratorSpec::paper();
        assert_eq!(s.input_cycles(), 8);
        assert_eq!(s.write_cycles(), 8);
        assert!((s.mvm_latency_ns() - 8.0 * 29.31).abs() < 1e-9);
        assert!((s.row_write_latency_ns() - 8.0 * 50.88).abs() < 1e-9);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(AcceleratorSpec::default(), AcceleratorSpec::paper());
    }
}
