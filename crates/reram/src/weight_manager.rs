//! The SRAM Weight Manager (paper §IV-A(3)).
//!
//! Gradient compute runs in SRAM, not ReRAM, for two published reasons:
//! update *speed* (weights change every batch) and *endurance* (SRAM
//! 10^16 writes vs ReRAM 10^8). This module models the unit: a bank of
//! 16-bit MAC lanes doing the element-wise multiply-accumulate of the
//! GC dataflow (step ⑬ of Fig. 8).

use crate::endurance::{sram_lifetime_epochs, RERAM_ENDURANCE_WRITES};
use crate::spec::AcceleratorSpec;

/// The SRAM gradient-compute unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightManager {
    /// Parallel 16-bit MAC lanes.
    pub lanes: usize,
    /// Cycle time, ns.
    pub cycle_ns: f64,
    /// Dynamic power while active, mW (Table II's Weight Computer row).
    pub power_mw: f64,
}

impl WeightManager {
    /// The configuration implied by Table II (99.6 mW, 16-bit) with a
    /// 128-lane, 1 GHz MAC array.
    pub fn paper(spec: &AcceleratorSpec) -> Self {
        WeightManager {
            lanes: 128,
            cycle_ns: 1.0,
            power_mw: spec.weight_computer.power_mw,
        }
    }

    /// Latency of an element-wise MAC pass over `elements` values, ns.
    pub fn elementwise_ns(&self, elements: u64) -> f64 {
        elements.div_ceil(self.lanes as u64) as f64 * self.cycle_ns
    }

    /// Latency of one layer's weight-gradient computation:
    /// `∇W = Xᵀδ` accumulated over a micro-batch of `b` vertices for an
    /// `in × out` weight, ns.
    pub fn weight_gradient_ns(&self, in_dim: usize, out_dim: usize, micro_batch: usize) -> f64 {
        // One MAC per (i, o, b) triple.
        self.elementwise_ns((in_dim * out_dim) as u64 * micro_batch as u64)
    }

    /// Energy of an element-wise pass, nJ.
    pub fn elementwise_energy_nj(&self, elements: u64) -> f64 {
        self.power_mw * self.elementwise_ns(elements) / 1e3
    }

    /// How many times longer the manager outlives a ReRAM-based
    /// equivalent under `updates_per_epoch` weight rewrites — the
    /// paper's §IV-A(3) justification, quantified.
    pub fn endurance_advantage(&self, updates_per_epoch: f64) -> f64 {
        if updates_per_epoch <= 0.0 {
            return 1.0;
        }
        sram_lifetime_epochs(updates_per_epoch) / (RERAM_ENDURANCE_WRITES / updates_per_epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wm() -> WeightManager {
        WeightManager::paper(&AcceleratorSpec::paper())
    }

    #[test]
    fn elementwise_rounds_up_to_lane_granularity() {
        let w = wm();
        assert_eq!(w.elementwise_ns(1), 1.0);
        assert_eq!(w.elementwise_ns(128), 1.0);
        assert_eq!(w.elementwise_ns(129), 2.0);
    }

    #[test]
    fn gradient_latency_scales_with_all_three_dims() {
        let w = wm();
        let base = w.weight_gradient_ns(64, 64, 8);
        assert!(w.weight_gradient_ns(128, 64, 8) > base);
        assert!(w.weight_gradient_ns(64, 128, 8) > base);
        assert!(w.weight_gradient_ns(64, 64, 16) > base);
    }

    #[test]
    fn sram_outlives_reram_by_the_published_eight_orders() {
        let adv = wm().endurance_advantage(1.0);
        assert!((adv - 1e8).abs() / 1e8 < 1e-9, "advantage {adv}");
    }

    #[test]
    fn energy_is_power_times_time() {
        let w = wm();
        let nj = w.elementwise_energy_nj(1280); // 10 cycles
        assert!((nj - w.power_mw * 10.0 / 1e3).abs() < 1e-12);
    }

    #[test]
    fn weight_gradient_is_fast_relative_to_reram_writes() {
        // The paper's reason for SRAM: a 256×256 weight gradient over a
        // 64-vertex micro-batch completes in tens of µs, while
        // *rewriting* that weight in ReRAM serially would need 256 row
        // writes (~104 µs at 8 slices) every batch, forever eating
        // endurance.
        let spec = AcceleratorSpec::paper();
        let w = WeightManager::paper(&spec);
        let sram_ns = w.weight_gradient_ns(256, 256, 64);
        assert!(sram_ns < 4e4 * 1e3, "sram {sram_ns}");
        let reram_rewrite_ns = 256.0 * spec.row_write_latency_ns();
        assert!(reram_rewrite_ns > 1e5);
    }
}
