//! Operation-level latency formulas.
//!
//! Built on the two published device latencies (29.31 ns read,
//! 50.88 ns write) and the bit-streaming conventions of
//! [`AcceleratorSpec`]. ReRAM writes are serial *within* a crossbar
//! (§III-A of the paper) and parallel across crossbars up to the
//! chip-wide `concurrent_write_rows` budget.

use crate::spec::AcceleratorSpec;

/// Latency of streaming `num_inputs` input vectors through a mapped
/// matrix (inputs are serial on a crossbar group; horizontal/vertical
/// tiles operate in parallel), ns.
pub fn mvm_batch_ns(spec: &AcceleratorSpec, num_inputs: u64) -> f64 {
    num_inputs as f64 * spec.mvm_latency_ns()
}

/// Latency of rewriting rows across the chip, ns.
///
/// `total_rows` counts every crossbar row to program (replicas
/// included); `max_rows_one_crossbar` is the largest number of rows
/// that land on a single crossbar, which writes serially. The chip can
/// program at most `concurrent_write_rows` rows at once, so the bulk
/// write time is whichever constraint binds:
///
/// ```text
/// t = max(⌈total / budget⌉, max_per_crossbar) × row_write_latency
/// ```
pub fn bulk_write_ns(spec: &AcceleratorSpec, total_rows: u64, max_rows_one_crossbar: u64) -> f64 {
    let bandwidth_bound = total_rows.div_ceil(spec.concurrent_write_rows as u64);
    let serial_bound = max_rows_one_crossbar;
    bandwidth_bound.max(serial_bound) as f64 * spec.row_write_latency_ns()
}

/// Latency of an element-wise pass in the SRAM Weight Manager
/// (gradient compute, §IV-B GC stage), ns. The manager processes
/// `sram_lanes` 16-bit MACs per cycle at `sram_cycle_ns`.
pub fn sram_elementwise_ns(num_elements: u64) -> f64 {
    // 128 MAC lanes at 1 GHz: conservative for an SRAM near-memory unit.
    const SRAM_LANES: u64 = 128;
    const SRAM_CYCLE_NS: f64 = 1.0;
    num_elements.div_ceil(SRAM_LANES) as f64 * SRAM_CYCLE_NS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mvm_batch_is_linear_in_inputs() {
        let s = AcceleratorSpec::paper();
        assert!((mvm_batch_ns(&s, 10) - 10.0 * s.mvm_latency_ns()).abs() < 1e-9);
        assert_eq!(mvm_batch_ns(&s, 0), 0.0);
    }

    #[test]
    fn bulk_write_serial_bound_dominates_small_jobs() {
        let s = AcceleratorSpec::paper();
        // 100 total rows, 64 on one crossbar: serial bound (64) wins
        // over bandwidth bound (⌈100/4096⌉ = 1).
        let t = bulk_write_ns(&s, 100, 64);
        assert!((t - 64.0 * s.row_write_latency_ns()).abs() < 1e-9);
    }

    #[test]
    fn bulk_write_bandwidth_bound_dominates_large_jobs() {
        let s = AcceleratorSpec::paper();
        // 10M rows spread evenly (max 64 per crossbar): bandwidth bound
        // ⌈10M/4096⌉ = 2442 wins.
        let t = bulk_write_ns(&s, 10_000_000, 64);
        assert!((t - 2442.0 * s.row_write_latency_ns()).abs() < 1e-6);
    }

    #[test]
    fn sram_pass_rounds_up() {
        assert_eq!(sram_elementwise_ns(1), 1.0);
        assert_eq!(sram_elementwise_ns(128), 1.0);
        assert_eq!(sram_elementwise_ns(129), 2.0);
    }
}
