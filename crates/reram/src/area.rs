//! Chip area accounting (the paper's Table II area column).
//!
//! The evaluation never trades area explicitly, but the Table II
//! numbers pin the design down; accounting them (a) validates that the
//! published per-component areas compose into a plausible chip and
//! (b) lets the allocator's occupancy be expressed in mm² as well as
//! crossbars.

use crate::spec::AcceleratorSpec;

/// Area breakdown of one chip, mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// One processing engine: 32 crossbars + converters + registers.
    pub pe_mm2: f64,
    /// One tile: 8 PEs + buffers + NFU/PFU.
    pub tile_mm2: f64,
    /// Whole chip: 65,536 tiles + chip-level units.
    pub chip_mm2: f64,
}

/// Computes the Table II area composition.
pub fn area_breakdown(spec: &AcceleratorSpec) -> AreaBreakdown {
    let xbars = spec.crossbars_per_pe as f64;
    let converters_per_pe = xbars * 64.0; // DACs and S&Hs: 32×64 each
    let pe_mm2 = xbars * spec.crossbar.area_mm2
        + xbars * spec.adc.area_mm2
        + converters_per_pe * spec.dac.area_mm2
        + converters_per_pe * spec.sample_hold.area_mm2
        + spec.input_register.area_mm2
        + spec.output_register.area_mm2
        + 16.0 * spec.shift_add.area_mm2;
    let tile_mm2 = spec.pes_per_tile as f64 * pe_mm2
        + spec.input_buffer.area_mm2
        + spec.crossbar_buffer.area_mm2
        + spec.output_buffer.area_mm2
        + 8.0 * spec.nfu.area_mm2
        + 8.0 * spec.pfu.area_mm2;
    let chip_mm2 = spec.tiles_per_chip as f64 * tile_mm2
        + spec.weight_computer.area_mm2
        + spec.activation_module.area_mm2
        + spec.central_controller.area_mm2;
    AreaBreakdown {
        pe_mm2,
        tile_mm2,
        chip_mm2,
    }
}

/// Area occupied by `crossbars` mapped crossbars, charging each its
/// pro-rata share of PE and tile periphery, mm².
pub fn occupied_area_mm2(spec: &AcceleratorSpec, crossbars: usize) -> f64 {
    let per_crossbar =
        area_breakdown(spec).tile_mm2 / (spec.pes_per_tile * spec.crossbars_per_pe) as f64;
    crossbars as f64 * per_crossbar
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_is_hierarchical() {
        let spec = AcceleratorSpec::paper();
        let a = area_breakdown(&spec);
        assert!(a.pe_mm2 > 0.0);
        assert!(a.tile_mm2 > 8.0 * a.pe_mm2);
        assert!(a.chip_mm2 > 65_536.0 * a.tile_mm2);
    }

    #[test]
    fn crossbar_array_is_a_minor_share_of_pe_area() {
        // A 64×64 ReRAM array is tiny (0.00051 mm²); the converters
        // dominate — the standard analog-PIM area story.
        let spec = AcceleratorSpec::paper();
        let a = area_breakdown(&spec);
        let array_only = spec.crossbars_per_pe as f64 * spec.crossbar.area_mm2;
        assert!(
            array_only < 0.2 * a.pe_mm2,
            "array {array_only} of PE {}",
            a.pe_mm2
        );
    }

    #[test]
    fn occupied_area_is_linear() {
        let spec = AcceleratorSpec::paper();
        let one = occupied_area_mm2(&spec, 1);
        let thousand = occupied_area_mm2(&spec, 1000);
        assert!((thousand - 1000.0 * one).abs() < 1e-9);
        // The whole chip's crossbars occupy roughly the tile area total.
        let all = occupied_area_mm2(&spec, spec.total_crossbars());
        let a = area_breakdown(&spec);
        assert!((all - spec.tiles_per_chip as f64 * a.tile_mm2).abs() / all < 1e-9);
    }
}
