//! ReRAM write-endurance accounting.
//!
//! The paper justifies its SRAM Weight Manager by endurance: "SRAM can
//! write 10^16 times while ReRAM can write 10^8 times during their
//! lifetime" (§IV-A(3)). The same arithmetic makes ISU's write
//! reduction a *lifetime* feature, not just a latency one: the array
//! wears out at its most-rewritten cell, and both selective updating
//! (fewer writes) and interleaved mapping (no hot crossbar) push the
//! first-failure horizon out. This module quantifies that.

/// ReRAM cell write endurance (10^8 writes, §IV-A(3)).
pub const RERAM_ENDURANCE_WRITES: f64 = 1e8;

/// SRAM cell write endurance (10^16 writes).
pub const SRAM_ENDURANCE_WRITES: f64 = 1e16;

/// Write-wear profile of a training configuration, under the standard
/// intra-crossbar wear-leveling assumption: a crossbar's controller
/// rotates logical rows over physical wordlines, so each physical row
/// of a group wears at the group's *average* rewrite rate. The array
/// then fails at its most-rewritten *group* — which is exactly what
/// interleaved mapping balances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearProfile {
    /// Per-row write rate of the most-rewritten crossbar group,
    /// writes per epoch.
    pub max_row_writes_per_epoch: f64,
    /// Mean per-row write rate across groups, writes per epoch.
    pub mean_row_writes_per_epoch: f64,
}

impl WearProfile {
    /// Builds a profile from per-group rewrite counts per epoch.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_group_per_epoch` is empty.
    pub fn from_group_rows(rows_per_group_per_epoch: &[f64], rows_per_group: usize) -> Self {
        assert!(
            !rows_per_group_per_epoch.is_empty(),
            "need at least one crossbar group"
        );
        let denom = rows_per_group.max(1) as f64;
        let max = rows_per_group_per_epoch.iter().cloned().fold(0.0, f64::max);
        let mean =
            rows_per_group_per_epoch.iter().sum::<f64>() / rows_per_group_per_epoch.len() as f64;
        WearProfile {
            max_row_writes_per_epoch: max / denom,
            mean_row_writes_per_epoch: mean / denom,
        }
    }

    /// Epochs until the most-rewritten row exhausts ReRAM endurance.
    pub fn lifetime_epochs(&self) -> f64 {
        if self.max_row_writes_per_epoch <= 0.0 {
            return f64::INFINITY;
        }
        RERAM_ENDURANCE_WRITES / self.max_row_writes_per_epoch
    }

    /// Lifetime-extension factor relative to a baseline profile.
    pub fn extension_over(&self, baseline: &WearProfile) -> f64 {
        self.lifetime_epochs() / baseline.lifetime_epochs()
    }
}

/// Per-group integer write counters for long fault campaigns.
///
/// The analytic [`WearProfile`] projects lifetimes from per-epoch
/// rates; campaigns instead *accumulate* concrete write counts over
/// simulated epochs and kill a group the moment its counter crosses
/// the budget. Counters use `u32::saturating_add` — a long campaign
/// against a small budget must pin at `u32::MAX`, not wrap around to
/// a small value and resurrect a worn-out group (see the boundary
/// regression test).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WearCounters {
    writes: Vec<u32>,
    budget: u32,
}

impl WearCounters {
    /// Counters for `groups` crossbar groups that each tolerate
    /// `budget` row writes before wearing out.
    pub fn new(groups: usize, budget: u32) -> Self {
        WearCounters {
            writes: vec![0; groups],
            budget,
        }
    }

    /// Records `rows` row writes against `group`, saturating at
    /// `u32::MAX` rather than wrapping.
    pub fn record(&mut self, group: usize, rows: u32) {
        if let Some(w) = self.writes.get_mut(group) {
            *w = w.saturating_add(rows);
        }
    }

    /// Accumulated writes of `group`.
    pub fn writes(&self, group: usize) -> u32 {
        self.writes.get(group).copied().unwrap_or(0)
    }

    /// The per-group write budget.
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// Whether `group` has exhausted its budget.
    pub fn exhausted(&self, group: usize) -> bool {
        self.writes(group) >= self.budget
    }

    /// Groups whose budget is exhausted, ascending.
    pub fn exhausted_groups(&self) -> Vec<u32> {
        self.writes
            .iter()
            .enumerate()
            .filter(|(_, &w)| w >= self.budget)
            .map(|(g, _)| g as u32)
            .collect()
    }
}

/// Lifetime of an SRAM structure rewritten `writes_per_epoch` times per
/// epoch, in epochs — the Weight Manager justification.
pub fn sram_lifetime_epochs(writes_per_epoch: f64) -> f64 {
    if writes_per_epoch <= 0.0 {
        return f64::INFINITY;
    }
    SRAM_ENDURANCE_WRITES / writes_per_epoch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_updating_wears_out_in_endurance_epochs() {
        // Every row rewritten once per epoch.
        let full = WearProfile::from_group_rows(&[64.0, 64.0], 64);
        assert!((full.max_row_writes_per_epoch - 1.0).abs() < 1e-12);
        assert!((full.lifetime_epochs() - RERAM_ENDURANCE_WRITES).abs() < 1.0);
    }

    #[test]
    fn selective_updating_extends_lifetime() {
        let full = WearProfile::from_group_rows(&[64.0, 64.0], 64);
        // θ = 0.5, stale period 20 ⇒ amortized 0.525 writes per row.
        let isu = WearProfile::from_group_rows(&[33.6, 33.6], 64);
        let ext = isu.extension_over(&full);
        assert!((ext - 64.0 / 33.6).abs() < 1e-9, "extension {ext}");
    }

    #[test]
    fn unbalanced_mapping_wears_at_the_hottest_group() {
        let osu = WearProfile::from_group_rows(&[64.0, 3.2], 64);
        let isu = WearProfile::from_group_rows(&[33.6, 33.6], 64);
        assert!(isu.lifetime_epochs() > osu.lifetime_epochs());
    }

    #[test]
    fn sram_outlives_reram_by_eight_orders() {
        // One weight rewrite per epoch.
        let sram = sram_lifetime_epochs(1.0);
        let reram = WearProfile::from_group_rows(&[64.0], 64).lifetime_epochs();
        assert!((sram / reram - 1e8).abs() / 1e8 < 1e-9);
    }

    #[test]
    fn wear_counters_saturate_at_the_u32_boundary() {
        // Regression: a wrapping counter would roll over to 99 here,
        // drop below the budget, and resurrect a worn-out group.
        let mut w = WearCounters::new(2, 1000);
        w.record(0, u32::MAX - 100);
        assert!(w.exhausted(0));
        w.record(0, 200); // would wrap; must pin at MAX
        assert_eq!(w.writes(0), u32::MAX);
        assert!(w.exhausted(0), "saturation must not resurrect a group");
        w.record(0, u32::MAX);
        assert_eq!(w.writes(0), u32::MAX);
        assert_eq!(w.exhausted_groups(), vec![0]);
        assert!(!w.exhausted(1));
    }

    #[test]
    fn wear_counters_cross_the_budget_exactly_once() {
        let mut w = WearCounters::new(1, 64);
        w.record(0, 63);
        assert!(!w.exhausted(0));
        w.record(0, 1);
        assert!(w.exhausted(0));
        assert_eq!(w.writes(0), 64);
        // Out-of-range groups are ignored, not panics.
        w.record(9, 5);
        assert_eq!(w.writes(9), 0);
    }

    #[test]
    fn zero_writes_mean_infinite_lifetime() {
        let idle = WearProfile::from_group_rows(&[0.0], 64);
        assert!(idle.lifetime_epochs().is_infinite());
        assert!(sram_lifetime_epochs(0.0).is_infinite());
    }
}
