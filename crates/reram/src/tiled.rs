//! A large matrix programmed across many functional crossbars.
//!
//! [`TiledMatrix`] realizes the §II-B horizontal/vertical tiling
//! extension at the *numeric* level: a `rows × cols` matrix is split
//! into 64×64 tiles, each programmed into a [`FunctionalCrossbar`]
//! pair; an MVM feeds each row-band of the input to its tile row and
//! accumulates partial sums across bands (the S+A / adder-tree path).
//! This is the component that demonstrates the modeled accelerator
//! actually computes GCN kernels correctly (see the
//! `integration_hardware_numerics` test).

use crate::crossbar::FunctionalCrossbar;
use crate::spec::AcceleratorSpec;

/// A matrix mapped onto a grid of crossbar tiles.
#[derive(Debug, Clone)]
pub struct TiledMatrix {
    tiles: Vec<Vec<FunctionalCrossbar>>, // [row_band][col_band]
    rows: usize,
    cols: usize,
    tile_rows: usize,
    tile_cols: usize,
}

impl TiledMatrix {
    /// Programs `matrix` (row-major `rows × cols`) onto crossbar tiles.
    ///
    /// `range` is the full-scale magnitude for quantization.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty, ragged, or `range <= 0`.
    pub fn program(spec: &AcceleratorSpec, matrix: &[Vec<f64>], range: f64) -> Self {
        assert!(!matrix.is_empty(), "matrix must be non-empty");
        let rows = matrix.len();
        let cols = matrix[0].len();
        assert!(matrix.iter().all(|r| r.len() == cols), "ragged matrix");
        let tr = spec.crossbar_rows;
        let tc = spec.crossbar_cols;
        let mut tiles = Vec::new();
        for band in 0..rows.div_ceil(tr) {
            let mut row_tiles = Vec::new();
            for col_band in 0..cols.div_ceil(tc) {
                let r0 = band * tr;
                let c0 = col_band * tc;
                let sub: Vec<Vec<f64>> = (r0..(r0 + tr).min(rows))
                    .map(|r| matrix[r][c0..(c0 + tc).min(cols)].to_vec())
                    .collect();
                row_tiles.push(FunctionalCrossbar::program(spec, &sub, range));
            }
            tiles.push(row_tiles);
        }
        TiledMatrix {
            tiles,
            rows,
            cols,
            tile_rows: tr,
            tile_cols: tc,
        }
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of physical crossbars occupied (counting differential
    /// pairs).
    pub fn num_crossbars(&self) -> usize {
        2 * self.tiles.iter().map(Vec::len).sum::<usize>()
    }

    /// Computes `y = xᵀ W` by feeding each row-band's input slice to
    /// its tiles and shift-adding the partial sums across bands.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` or `input_range <= 0`.
    pub fn mvm(&self, input: &[f64], input_range: f64) -> Vec<f64> {
        assert_eq!(input.len(), self.rows, "input length mismatch");
        let mut out = vec![0.0; self.cols];
        for (band, row_tiles) in self.tiles.iter().enumerate() {
            let r0 = band * self.tile_rows;
            let slice = &input[r0..(r0 + self.tile_rows).min(self.rows)];
            for (col_band, tile) in row_tiles.iter().enumerate() {
                let partial = tile.mvm(slice, input_range);
                let c0 = col_band * self.tile_cols;
                for (k, &p) in partial.iter().enumerate() {
                    out[c0 + k] += p;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: usize, cols: usize) -> Vec<Vec<f64>> {
        (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| ((r * cols + c) as f64 * 0.37).sin() * 0.6)
                    .collect()
            })
            .collect()
    }

    fn float_mvm(w: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        let cols = w[0].len();
        let mut y = vec![0.0; cols];
        for (r, row) in w.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                y[c] += x[r] * v;
            }
        }
        y
    }

    #[test]
    fn tiled_mvm_matches_float_on_multi_tile_matrices() {
        let spec = AcceleratorSpec::paper();
        let w = matrix(130, 70); // 3 × 2 tile grid with ragged edges
        let x: Vec<f64> = (0..130).map(|i| (i as f64 * 0.11).cos() * 0.8).collect();
        let tiled = TiledMatrix::program(&spec, &w, 1.0);
        assert_eq!(tiled.shape(), (130, 70));
        let y = tiled.mvm(&x, 1.0);
        let y_ref = float_mvm(&w, &x);
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
    }

    #[test]
    fn crossbar_count_matches_tiling_formula() {
        let spec = AcceleratorSpec::paper();
        let w = matrix(130, 70);
        let tiled = TiledMatrix::program(&spec, &w, 1.0);
        assert_eq!(
            tiled.num_crossbars(),
            crate::tiling::crossbars_for_matrix(&spec, 130, 70)
        );
    }

    #[test]
    fn single_tile_case_degenerates_to_one_pair() {
        let spec = AcceleratorSpec::paper();
        let w = matrix(10, 10);
        let tiled = TiledMatrix::program(&spec, &w, 1.0);
        assert_eq!(tiled.num_crossbars(), 2);
    }
}
