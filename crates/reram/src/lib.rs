//! ReRAM processing-in-memory hardware model for the GoPIM reproduction.
//!
//! The paper evaluates GoPIM on a NeuroSim-derived simulator configured
//! per its Table II: 64×64 crossbars with 2 bits/cell, 32 crossbars per
//! PE, 8 PEs per tile, 65,536 tiles per chip (a 16 GB ReRAM array),
//! 8-bit ADCs, 2-bit DACs, and read/write latencies of 29.31 ns /
//! 50.88 ns. This crate is the from-scratch equivalent (see DESIGN.md
//! §2 for the substitution rationale):
//!
//! - [`spec`]: the Table II component catalog (power, area, counts) and
//!   derived quantities.
//! - [`tiling`]: how matrices map onto crossbars (horizontal/vertical
//!   tiling extension, §II-B), crossbar counting used by the allocator.
//! - [`timing`]: latencies of MVM, row writes and buffer traffic.
//! - [`energy`]: per-operation energy and leakage accounting.
//! - [`crossbar`]: a *functional* crossbar that performs bit-sliced,
//!   ADC-quantized MVM — used to validate that the analog dataflow
//!   computes correct numerics.
//! - [`chip`]: whole-chip resource accounting (16,777,216 crossbars).
//!
//! # Example
//!
//! ```
//! use gopim_reram::spec::AcceleratorSpec;
//! use gopim_reram::tiling;
//!
//! let spec = AcceleratorSpec::paper();
//! assert_eq!(spec.total_crossbars(), 16_777_216);
//! // The ddi weight matrix (256×256) occupies 32 crossbars (Table VI).
//! assert_eq!(tiling::crossbars_for_matrix(&spec, 256, 256), 32);
//! ```

#![warn(missing_docs)]

pub mod area;
pub mod chip;
pub mod crossbar;
pub mod endurance;
pub mod energy;
pub mod health;
pub mod noc;
pub mod spec;
pub mod tiled;
pub mod tiling;
pub mod timing;
pub mod weight_manager;

pub use chip::ChipResources;
pub use spec::AcceleratorSpec;
