//! Inter-tile network-on-chip model.
//!
//! The paper's architecture connects ReRAM tiles "through adders and
//! pipeline bus to support the inter-tile data Aggregation and
//! transmission" (§IV-A(1)), and its closest baseline (ReGraphX) is an
//! explicitly NoC-enabled 3D architecture. This module provides a 2D
//! mesh model with XY routing used to *derive* (rather than assume)
//! the aggregation collection costs of the latency model: gathering
//! partial sums from `k` tiles into a reduction point costs a
//! tree-depth latency plus a sink-serialization term, which is exactly
//! the `group_issue` constant of
//! [`LatencyParams`](../../gopim_pipeline/latency/struct.LatencyParams.html).

use crate::spec::AcceleratorSpec;

/// A square 2D mesh of tiles with XY dimension-ordered routing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshNoc {
    /// Mesh side (the chip's 65,536 tiles form a 256×256 mesh).
    pub side: usize,
    /// Per-hop router + link latency, ns.
    pub hop_latency_ns: f64,
    /// Flit payload, bytes.
    pub flit_bytes: usize,
    /// Link bandwidth, bytes per ns (GB/s).
    pub link_bytes_per_ns: f64,
}

impl MeshNoc {
    /// The mesh implied by the paper's Table II chip (65,536 tiles ⇒
    /// 256 × 256) with typical 1 GHz router clocking.
    pub fn paper(spec: &AcceleratorSpec) -> Self {
        let side = (spec.tiles_per_chip as f64).sqrt().round() as usize;
        MeshNoc {
            side,
            hop_latency_ns: 1.0,
            flit_bytes: 32,
            link_bytes_per_ns: 16.0,
        }
    }

    /// Manhattan hop count between tiles `a` and `b` (linear ids).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let n = self.side * self.side;
        assert!(a < n && b < n, "tile id out of range");
        let (ax, ay) = (a % self.side, a / self.side);
        let (bx, by) = (b % self.side, b / self.side);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Latency of one flit over `hops` hops, ns.
    pub fn flit_latency_ns(&self, hops: usize) -> f64 {
        hops as f64 * self.hop_latency_ns + self.flit_bytes as f64 / self.link_bytes_per_ns
    }

    /// Expected hop count between two uniformly-random mesh tiles
    /// (`≈ 2/3 · side` per dimension).
    pub fn expected_hops(&self) -> f64 {
        // E|x1 − x2| for uniform ints in [0, s) is (s² − 1) / (3s).
        let s = self.side as f64;
        2.0 * (s * s - 1.0) / (3.0 * s)
    }

    /// Latency of reducing partial sums from `k` tiles clustered in a
    /// compact region (the replica's tile footprint) into one sink:
    /// a binary adder tree of depth `⌈log2 k⌉` over neighbor links,
    /// plus sink serialization of the final accumulations.
    ///
    /// Returns 0 for `k ≤ 1`.
    pub fn reduction_latency_ns(&self, k: usize) -> f64 {
        if k <= 1 {
            return 0.0;
        }
        let depth = (k as f64).log2().ceil();
        // Each tree level is a 1-hop flit exchange within the cluster.
        depth * self.flit_latency_ns(1)
    }

    /// Per-group serialization at the reduction sink: each participating
    /// group's partial sum occupies the sink port for one flit time.
    /// This is the physically-derived counterpart of the latency
    /// model's `group_issue_ns`.
    pub fn sink_service_ns(&self) -> f64 {
        self.flit_bytes as f64 / self.link_bytes_per_ns + self.hop_latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> MeshNoc {
        MeshNoc::paper(&AcceleratorSpec::paper())
    }

    #[test]
    fn paper_mesh_is_256_square() {
        assert_eq!(mesh().side, 256);
    }

    #[test]
    fn hops_are_manhattan() {
        let m = mesh();
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 255), 255); // across one row
        assert_eq!(m.hops(0, 256), 1); // one row down
        assert_eq!(m.hops(0, 257), 2);
        // Symmetric.
        assert_eq!(m.hops(1000, 2000), m.hops(2000, 1000));
    }

    #[test]
    fn expected_hops_matches_uniform_sampling() {
        let m = MeshNoc { side: 16, ..mesh() };
        // Exhaustive average over all pairs.
        let n = 16 * 16;
        let mut total = 0usize;
        for a in 0..n {
            for b in 0..n {
                total += m.hops(a, b);
            }
        }
        let empirical = total as f64 / (n * n) as f64;
        assert!(
            (empirical - m.expected_hops()).abs() < 0.01,
            "empirical {empirical} vs analytic {}",
            m.expected_hops()
        );
    }

    #[test]
    fn reduction_latency_grows_logarithmically() {
        let m = mesh();
        assert_eq!(m.reduction_latency_ns(1), 0.0);
        let l2 = m.reduction_latency_ns(2);
        let l64 = m.reduction_latency_ns(64);
        let l128 = m.reduction_latency_ns(128);
        assert!((l64 - 6.0 * l2).abs() < 1e-9);
        assert!(l128 > l64);
    }

    #[test]
    fn sink_service_is_in_the_group_issue_ballpark() {
        // The derived sink serialization should be the same order of
        // magnitude as the latency model's read-latency-based constant
        // (29.31 ns) — the calibration sanity check.
        let s = mesh().sink_service_ns();
        assert!(s > 1.0 && s < 100.0, "sink service {s}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hops_rejects_out_of_range() {
        let _ = mesh().hops(0, 256 * 256);
    }
}
