//! Mapping matrices onto crossbars (the paper's §II-B data mapping
//! strategy with horizontal/vertical tiling extension).
//!
//! A matrix row longer than one crossbar's 64 columns is tiled
//! horizontally across several crossbars; rows beyond 64 are tiled
//! vertically onto further crossbars. Signed values occupy a
//! differential crossbar pair. With these rules the ddi example
//! reproduces the paper's Table VI: the 256×256 *Combination* weight
//! matrix needs 32 crossbars and the 4267×256 *Aggregation* feature
//! matrix needs ≈534.

use crate::spec::AcceleratorSpec;

/// How a `rows × cols` matrix tiles onto crossbars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilePlan {
    /// Vertical tile count: `⌈rows / crossbar_rows⌉`.
    pub row_tiles: usize,
    /// Horizontal tile count: `⌈cols / crossbar_cols⌉`.
    pub col_tiles: usize,
    /// Crossbars per differential set (`differential_pairs`).
    pub pairs: usize,
}

impl TilePlan {
    /// Total crossbars this plan occupies.
    pub fn crossbars(&self) -> usize {
        self.row_tiles * self.col_tiles * self.pairs
    }
}

/// Plans the tiling of a `rows × cols` matrix.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn plan(spec: &AcceleratorSpec, rows: usize, cols: usize) -> TilePlan {
    assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
    TilePlan {
        row_tiles: rows.div_ceil(spec.crossbar_rows),
        col_tiles: cols.div_ceil(spec.crossbar_cols),
        pairs: spec.differential_pairs,
    }
}

/// Crossbars needed to map one replica of a `rows × cols` matrix.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn crossbars_for_matrix(spec: &AcceleratorSpec, rows: usize, cols: usize) -> usize {
    plan(spec, rows, cols).crossbars()
}

/// For a vertex-feature matrix (`num_vertices × feature_dim`) mapped for
/// *Aggregation*: vertices per crossbar row-group (one vertex per
/// wordline, so `crossbar_rows` vertices per group).
pub fn vertices_per_group(spec: &AcceleratorSpec) -> usize {
    spec.crossbar_rows
}

/// Number of crossbar row-groups holding a feature matrix over
/// `num_vertices` vertices (`⌈N / 64⌉`). Each group spans
/// `⌈feature_dim / 64⌉ × pairs` physical crossbars.
pub fn feature_groups(spec: &AcceleratorSpec, num_vertices: usize) -> usize {
    num_vertices.div_ceil(vertices_per_group(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddi_combination_matches_table_vi() {
        let s = AcceleratorSpec::paper();
        assert_eq!(crossbars_for_matrix(&s, 256, 256), 32);
    }

    #[test]
    fn ddi_aggregation_close_to_table_vi() {
        let s = AcceleratorSpec::paper();
        // Paper reports 534 (dense tail packing); tiled mapping gives
        // 2 × ⌈4267/64⌉ × ⌈256/64⌉ = 536.
        let n = crossbars_for_matrix(&s, 4267, 256);
        assert_eq!(n, 536);
        assert!((n as i64 - 534).abs() <= 2);
    }

    #[test]
    fn small_matrix_still_needs_one_pair() {
        let s = AcceleratorSpec::paper();
        assert_eq!(crossbars_for_matrix(&s, 1, 1), 2);
    }

    #[test]
    fn plan_components() {
        let s = AcceleratorSpec::paper();
        let p = plan(&s, 130, 65);
        assert_eq!(p.row_tiles, 3);
        assert_eq!(p.col_tiles, 2);
        assert_eq!(p.crossbars(), 12);
    }

    #[test]
    fn feature_groups_round_up() {
        let s = AcceleratorSpec::paper();
        assert_eq!(feature_groups(&s, 4267), 67);
        assert_eq!(feature_groups(&s, 64), 1);
        assert_eq!(feature_groups(&s, 65), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let s = AcceleratorSpec::paper();
        let _ = crossbars_for_matrix(&s, 0, 4);
    }
}
