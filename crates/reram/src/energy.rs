//! Energy accounting.
//!
//! Built from the Table II power figures. Only *relative* energy
//! matters for reproducing the paper's Fig. 13(b)/Fig. 14(b): the same
//! model is applied to GoPIM and to every baseline.

use crate::spec::AcceleratorSpec;

/// Energy model with per-operation and leakage components.
///
/// # Example
///
/// ```
/// use gopim_reram::spec::AcceleratorSpec;
/// use gopim_reram::energy::EnergyModel;
///
/// let spec = AcceleratorSpec::paper();
/// let e = EnergyModel::new(&spec);
/// // A write consumes more energy than a read (ReRAM programming is
/// // the expensive operation the paper's ISU avoids).
/// assert!(e.row_write_energy_nj() > e.mvm_energy_nj(1, 1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Active power of one crossbar + its periphery share during an MVM
    /// issue, mW.
    read_power_per_crossbar_mw: f64,
    /// Power drawn while programming one crossbar row, mW. ReRAM SET /
    /// RESET currents make writes several times costlier than reads.
    write_power_per_row_mw: f64,
    /// Leakage power per *occupied* crossbar (mapped but idle), mW.
    leakage_per_crossbar_mw: f64,
    /// Constant chip overhead (controller + weight computer +
    /// activation module), mW.
    chip_overhead_mw: f64,
    mvm_latency_ns: f64,
    row_write_latency_ns: f64,
}

impl EnergyModel {
    /// Derives an energy model from a hardware spec.
    pub fn new(spec: &AcceleratorSpec) -> Self {
        // Periphery attribution per crossbar: each PE's 32 ADCs (64 mW)
        // serve its 32 crossbars (1 ADC-share each), plus the DAC,
        // sample-and-hold and shift-add shares.
        let adc_share = spec.adc.power_mw / spec.crossbars_per_pe as f64;
        let periphery = adc_share
            + spec.dac.power_mw
            + spec.sample_hold.power_mw
            + spec.shift_add.power_mw / 2.0;
        let read_power = spec.crossbar.power_mw + periphery;
        EnergyModel {
            read_power_per_crossbar_mw: read_power,
            // SET/RESET programming draws more current than reads but
            // touches one row at a time (NVSim-class assumption;
            // affects only absolute joules, not system orderings).
            write_power_per_row_mw: 1.5 * spec.crossbar.power_mw,
            // Non-volatile array leakage is small; buffers and drivers
            // attached to occupied crossbars dominate standby power.
            // 0.5 µW per 1 KB crossbar ⇒ ~8 W for a fully-occupied
            // 16 GB chip, consistent with NVSim-class standby numbers.
            leakage_per_crossbar_mw: 0.0005,
            chip_overhead_mw: spec.central_controller.power_mw
                + spec.weight_computer.power_mw
                + spec.activation_module.power_mw,
            mvm_latency_ns: spec.mvm_latency_ns(),
            row_write_latency_ns: spec.row_write_latency_ns(),
        }
    }

    /// Energy of `num_inputs` MVM issues across `active_crossbars`
    /// simultaneously-active crossbars, nJ.
    pub fn mvm_energy_nj(&self, active_crossbars: u64, num_inputs: u64) -> f64 {
        // mW × ns = pJ; /1e3 → nJ.
        self.read_power_per_crossbar_mw
            * active_crossbars as f64
            * num_inputs as f64
            * self.mvm_latency_ns
            / 1e3
    }

    /// Energy of programming a single crossbar row, nJ.
    pub fn row_write_energy_nj(&self) -> f64 {
        self.write_power_per_row_mw * self.row_write_latency_ns / 1e3
    }

    /// Energy of programming `rows` crossbar rows, nJ.
    pub fn write_energy_nj(&self, rows: u64) -> f64 {
        rows as f64 * self.row_write_energy_nj()
    }

    /// Leakage energy of `occupied_crossbars` crossbars held mapped for
    /// `duration_ns`, nJ.
    pub fn leakage_energy_nj(&self, occupied_crossbars: u64, duration_ns: f64) -> f64 {
        self.leakage_per_crossbar_mw * occupied_crossbars as f64 * duration_ns / 1e3
    }

    /// Constant chip-overhead energy over `duration_ns`, nJ.
    pub fn overhead_energy_nj(&self, duration_ns: f64) -> f64 {
        self.chip_overhead_mw * duration_ns / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::new(&AcceleratorSpec::paper())
    }

    #[test]
    fn energies_are_positive_and_monotone() {
        let e = model();
        assert!(e.mvm_energy_nj(1, 1) > 0.0);
        assert!(e.mvm_energy_nj(2, 1) > e.mvm_energy_nj(1, 1));
        assert!(e.write_energy_nj(10) > e.write_energy_nj(9));
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let e = model();
        assert!(e.row_write_energy_nj() > e.mvm_energy_nj(1, 1));
    }

    #[test]
    fn leakage_scales_with_occupancy_and_time() {
        let e = model();
        let a = e.leakage_energy_nj(100, 1000.0);
        assert!((e.leakage_energy_nj(200, 1000.0) - 2.0 * a).abs() < 1e-12);
        assert!((e.leakage_energy_nj(100, 2000.0) - 2.0 * a).abs() < 1e-12);
    }

    #[test]
    fn overhead_dominated_by_controller() {
        let e = model();
        // 580.41 + 99.6 + 0.0266 mW over 1 µs ≈ 680 nJ.
        let nj = e.overhead_energy_nj(1000.0);
        assert!((nj - 680.0366).abs() < 0.01);
    }
}
