//! Crossbar-group health tracking under fault injection.
//!
//! Real ReRAM macros ship a few spare bitline columns per crossbar;
//! column-level stuck-at faults are absorbed by steering around the
//! bad column until the spares run out, at which point the whole
//! group must be treated as dead (its rows can no longer be written
//! correctly). [`CrossbarHealth`] keeps that per-group ledger:
//! stuck-column counts accumulate across events, wear-out kills a
//! group outright, and the resulting dead mask is what the mapping
//! layer remaps around.

/// Per-group fault ledger for one stage's crossbar groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossbarHealth {
    stuck_cols: Vec<u32>,
    dead: Vec<bool>,
    spare_cols: u32,
}

impl CrossbarHealth {
    /// A fully healthy ledger over `groups` crossbar groups, each with
    /// `spare_cols` spare bitline columns.
    pub fn new(groups: usize, spare_cols: u32) -> Self {
        CrossbarHealth {
            stuck_cols: vec![0; groups],
            dead: vec![false; groups],
            spare_cols,
        }
    }

    /// Number of groups tracked.
    pub fn groups(&self) -> usize {
        self.dead.len()
    }

    /// Records `cols` newly stuck columns in `group`. Stuck columns
    /// accumulate (saturating); once they exceed the spare budget the
    /// group dies. Returns `true` if this event killed the group.
    pub fn record_stuck(&mut self, group: usize, cols: u32) -> bool {
        if group >= self.dead.len() || self.dead[group] {
            return false;
        }
        self.stuck_cols[group] = self.stuck_cols[group].saturating_add(cols);
        if self.stuck_cols[group] > self.spare_cols {
            self.dead[group] = true;
            return true;
        }
        false
    }

    /// Records endurance exhaustion of `group` — always fatal, spare
    /// columns cannot help a worn-out array. Returns `true` if the
    /// group was alive before.
    pub fn record_wearout(&mut self, group: usize) -> bool {
        if group >= self.dead.len() || self.dead[group] {
            return false;
        }
        self.dead[group] = true;
        true
    }

    /// Whether `group` is dead.
    pub fn is_dead(&self, group: usize) -> bool {
        self.dead.get(group).copied().unwrap_or(false)
    }

    /// Stuck columns accumulated so far in `group`.
    pub fn stuck_cols(&self, group: usize) -> u32 {
        self.stuck_cols.get(group).copied().unwrap_or(0)
    }

    /// The per-group dead mask, indexable by group id.
    pub fn dead_mask(&self) -> &[bool] {
        &self.dead
    }

    /// Dead group ids, ascending.
    pub fn dead_groups(&self) -> Vec<u32> {
        self.dead
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(g, _)| g as u32)
            .collect()
    }

    /// Number of dead groups.
    pub fn dead_count(&self) -> usize {
        self.dead.iter().filter(|&&d| d).count()
    }

    /// Number of live groups.
    pub fn live_count(&self) -> usize {
        self.dead.len() - self.dead_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spare_columns_absorb_small_events() {
        let mut h = CrossbarHealth::new(4, 2);
        assert!(!h.record_stuck(0, 1));
        assert!(!h.record_stuck(0, 1)); // 2 ≤ 2 spares: still alive
        assert!(!h.is_dead(0));
        assert!(h.record_stuck(0, 1)); // 3 > 2: dead
        assert!(h.is_dead(0));
        assert_eq!(h.dead_groups(), vec![0]);
        assert_eq!(h.live_count(), 3);
    }

    #[test]
    fn wearout_is_always_fatal_and_idempotent() {
        let mut h = CrossbarHealth::new(3, 8);
        assert!(h.record_wearout(1));
        assert!(!h.record_wearout(1));
        assert!(!h.record_stuck(1, 1)); // already dead: no double kill
        assert_eq!(h.dead_count(), 1);
        assert_eq!(h.dead_mask(), &[false, true, false]);
    }

    #[test]
    fn stuck_column_counts_saturate() {
        let mut h = CrossbarHealth::new(1, u32::MAX);
        h.record_stuck(0, u32::MAX - 1);
        h.record_stuck(0, 5);
        assert_eq!(h.stuck_cols(0), u32::MAX);
        assert!(!h.is_dead(0)); // saturated at the (absurd) spare budget
    }

    #[test]
    fn out_of_range_groups_are_ignored() {
        let mut h = CrossbarHealth::new(2, 0);
        assert!(!h.record_stuck(7, 3));
        assert!(!h.record_wearout(7));
        assert!(!h.is_dead(7));
        assert_eq!(h.dead_count(), 0);
    }
}
