//! Property-based tests for the ReRAM hardware model (gopim-testkit).

use gopim_reram::crossbar::FunctionalCrossbar;
use gopim_reram::energy::EnergyModel;
use gopim_reram::spec::AcceleratorSpec;
use gopim_reram::{tiling, timing, ChipResources};
use gopim_testkit::prop::{check_with, Config};

#[test]
fn functional_crossbar_tracks_float_mvm() {
    check_with(
        "functional_crossbar_tracks_float_mvm",
        Config::cases(48),
        |d| {
            let rows = d.draw("rows", 1usize..48);
            let cols = d.draw("cols", 1usize..8);
            let seed = d.draw("seed", 0u64..1000);
            // Deterministic pseudo-random weights/inputs in [-1, 1].
            let val =
                |i: usize| (((i as u64).wrapping_mul(seed + 17) % 2000) as f64 / 1000.0) - 1.0;
            let w: Vec<Vec<f64>> = (0..rows)
                .map(|r| (0..cols).map(|c| val(r * cols + c) * 0.9).collect())
                .collect();
            let x: Vec<f64> = (0..rows).map(|r| val(r + 7919) * 0.9).collect();
            let spec = AcceleratorSpec::paper();
            let xbar = FunctionalCrossbar::program(&spec, &w, 1.0);
            let y = xbar.mvm(&x, 1.0);
            for c in 0..cols {
                let expected: f64 = (0..rows).map(|r| w[r][c] * x[r]).sum();
                // 16-bit quantization error accumulates with row count.
                let tol = 1e-4 * (rows as f64) + 1e-4;
                assert!(
                    (y[c] - expected).abs() < tol,
                    "col {c}: {} vs {expected}",
                    y[c]
                );
            }
        },
    );
}

#[test]
fn mvm_is_linear_in_the_input() {
    check_with("mvm_is_linear_in_the_input", Config::cases(48), |d| {
        let rows = d.draw("rows", 1usize..32);
        let scale_num = d.draw("scale_num", 1u32..4);
        let spec = AcceleratorSpec::paper();
        let w: Vec<Vec<f64>> = (0..rows).map(|r| vec![0.01 * (r % 7) as f64]).collect();
        let xbar = FunctionalCrossbar::program(&spec, &w, 1.0);
        let x1: Vec<f64> = (0..rows).map(|r| 0.1 + 0.001 * r as f64).collect();
        let scale = f64::from(scale_num) * 0.25;
        let x2: Vec<f64> = x1.iter().map(|v| v * scale).collect();
        let y1 = xbar.mvm(&x1, 1.0)[0];
        let y2 = xbar.mvm(&x2, 1.0)[0];
        assert!((y2 - scale * y1).abs() < 1e-3, "{y2} vs {}", scale * y1);
    });
}

#[test]
fn tiling_is_monotone_in_matrix_size() {
    check_with(
        "tiling_is_monotone_in_matrix_size",
        Config::cases(48),
        |d| {
            let r1 = d.draw("r1", 1usize..5000);
            let c1 = d.draw("c1", 1usize..5000);
            let dr = d.draw("dr", 0usize..500);
            let dc = d.draw("dc", 0usize..500);
            let spec = AcceleratorSpec::paper();
            let small = tiling::crossbars_for_matrix(&spec, r1, c1);
            let large = tiling::crossbars_for_matrix(&spec, r1 + dr, c1 + dc);
            assert!(large >= small);
            // Exact formula check.
            assert_eq!(small, 2 * r1.div_ceil(64) * c1.div_ceil(64));
        },
    );
}

#[test]
fn bulk_write_is_monotone() {
    check_with("bulk_write_is_monotone", Config::cases(48), |d| {
        let rows = d.draw("rows", 0u64..1_000_000);
        let extra = d.draw("extra", 0u64..100_000);
        let max1 = d.draw("max1", 0u64..64);
        let spec = AcceleratorSpec::paper();
        let a = timing::bulk_write_ns(&spec, rows, max1);
        let b = timing::bulk_write_ns(&spec, rows + extra, max1);
        assert!(b >= a);
        let c = timing::bulk_write_ns(&spec, rows, max1 + 1);
        assert!(c >= a);
    });
}

#[test]
fn chip_ledger_is_consistent() {
    check_with("chip_ledger_is_consistent", Config::cases(48), |d| {
        let ops = d.vec("ops", 1usize..50, |d| {
            (d.any_bool("is_reserve"), d.draw("n", 1usize..100))
        });
        let mut chip = ChipResources::with_budget(1000);
        let mut model = 0usize;
        for (is_reserve, n) in ops {
            if is_reserve {
                if chip.reserve(n).is_ok() {
                    model += n;
                }
            } else {
                let release = n.min(model);
                chip.release(release);
                model -= release;
            }
            assert_eq!(chip.used(), model);
            assert_eq!(chip.unused(), 1000 - model);
        }
    });
}

#[test]
fn energy_model_is_additive() {
    check_with("energy_model_is_additive", Config::cases(48), |d| {
        let rows_a = d.draw("rows_a", 0u64..10_000);
        let rows_b = d.draw("rows_b", 0u64..10_000);
        let e = EnergyModel::new(&AcceleratorSpec::paper());
        let sum = e.write_energy_nj(rows_a) + e.write_energy_nj(rows_b);
        assert!((e.write_energy_nj(rows_a + rows_b) - sum).abs() < 1e-6);
    });
}
