//! Property-based tests for the graph substrate (gopim-testkit).

use gopim_graph::generate::{chung_lu, erdos_renyi, planted_partition, power_law_profile};
use gopim_graph::partition::MicroBatchPlan;
use gopim_graph::{CsrGraph, DegreeProfile};
use gopim_testkit::gen;
use gopim_testkit::prop::{check_with, Config};

#[test]
fn csr_from_arbitrary_edges_is_always_valid() {
    check_with(
        "csr_from_arbitrary_edges_is_always_valid",
        Config::cases(64),
        |d| {
            let (n, edges) = gen::edge_list(d, 64, 200);
            let g = CsrGraph::from_edges(n, &edges);
            assert!(g.validate().is_ok());
            // Handshake lemma.
            let total: usize = (0..n).map(|v| g.degree(v)).sum();
            assert_eq!(total, 2 * g.num_edges());
        },
    );
}

#[test]
fn induced_subgraph_preserves_validity_and_bounds() {
    check_with(
        "induced_subgraph_preserves_validity_and_bounds",
        Config::cases(64),
        |d| {
            let n = d.draw("n", 2usize..48);
            let edges = d.vec("edges", 0usize..120, |d| {
                (d.draw("u", 0..n as u32), d.draw("v", 0..n as u32))
            });
            let g = CsrGraph::from_edges(n, &edges);
            let keep_bits = d.vec("keep_bits", n..n + 1, |d| d.any_bool("bit"));
            let keep: Vec<u32> = (0..n as u32).filter(|&v| keep_bits[v as usize]).collect();
            let sub = g.induced_subgraph(&keep);
            assert!(sub.validate().is_ok());
            assert_eq!(sub.num_vertices(), keep.len());
            assert!(sub.num_edges() <= g.num_edges());
        },
    );
}

#[test]
fn power_law_profile_respects_bounds() {
    check_with(
        "power_law_profile_respects_bounds",
        Config::cases(64),
        |d| {
            let n = d.draw("n", 2usize..5000);
            let avg = d.draw("avg", 1.0f64..100.0).min((n - 1) as f64);
            let exponent = d.draw("exponent", 0.3f64..1.2);
            let locality = d.draw("locality", 0.0f64..1.0);
            let p = power_law_profile(n, avg, exponent, locality, 11);
            assert_eq!(p.num_vertices(), n);
            let s = p.stats();
            assert!(s.min >= 1);
            assert!(u64::from(s.max) <= (n as u64 - 1).min((60.0 * avg) as u64 + 2));
            // Calibration: mean within 15 % (jitter + clamping slack). At
            // tiny n a single rounding flip exceeds any fixed tolerance, so
            // only check once averaging has something to average over.
            if n >= 64 {
                assert!(
                    (s.mean - avg).abs() / avg < 0.15,
                    "mean {} vs {}",
                    s.mean,
                    avg
                );
            }
        },
    );
}

#[test]
fn degree_ranking_is_a_permutation_sorted_by_degree() {
    check_with(
        "degree_ranking_is_a_permutation_sorted_by_degree",
        Config::cases(64),
        |d| {
            let degrees = d.vec("degrees", 1usize..300, |d| d.draw("deg", 0u32..1000));
            let p = DegreeProfile::from_degrees(degrees.clone());
            let ranked = p.vertices_by_degree_desc();
            assert_eq!(ranked.len(), degrees.len());
            let mut seen = vec![false; degrees.len()];
            for w in ranked.windows(2) {
                assert!(degrees[w[0] as usize] >= degrees[w[1] as usize]);
            }
            for &v in &ranked {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        },
    );
}

#[test]
fn micro_batch_plan_partitions_exactly() {
    check_with(
        "micro_batch_plan_partitions_exactly",
        Config::cases(64),
        |d| {
            let n = d.draw("n", 0usize..10_000);
            let b = d.draw("b", 1usize..512);
            let plan = MicroBatchPlan::contiguous(n, b);
            let covered: usize = plan.iter().map(|r| r.len()).sum();
            assert_eq!(covered, n);
            for r in plan.iter() {
                assert!(r.len() <= b);
                assert!(!r.is_empty());
            }
        },
    );
}

#[test]
fn generators_produce_valid_graphs() {
    check_with("generators_produce_valid_graphs", Config::cases(64), |d| {
        let n = d.draw("n", 8usize..200);
        let avg = d.draw("avg", 1.0f64..12.0);
        let seed = d.draw("seed", 0u64..50);
        let er = erdos_renyi(n, avg, seed);
        assert!(er.validate().is_ok());
        let (sbm, labels) = planted_partition(n, 2 + (seed as usize % 3), avg, 4.0, seed);
        assert!(sbm.validate().is_ok());
        assert_eq!(labels.len(), n);
        let profile = power_law_profile(n, avg.max(1.0), 0.8, 0.5, seed);
        let cl = chung_lu(&profile, seed);
        assert!(cl.validate().is_ok());
    });
}
