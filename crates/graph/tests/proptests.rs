//! Property-based tests for the graph substrate.

use gopim_graph::generate::{chung_lu, erdos_renyi, planted_partition, power_law_profile};
use gopim_graph::partition::MicroBatchPlan;
use gopim_graph::{CsrGraph, DegreeProfile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_from_arbitrary_edges_is_always_valid(
        n in 1usize..64,
        edges in prop::collection::vec((0u32..64, 0u32..64), 0..200),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        prop_assert!(g.validate().is_ok());
        // Handshake lemma.
        let total: usize = (0..n).map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn induced_subgraph_preserves_validity_and_bounds(
        n in 2usize..48,
        edges in prop::collection::vec((0u32..48, 0u32..48), 0..120),
        keep_bits in prop::collection::vec(any::<bool>(), 48),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as u32, v % n as u32))
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        let keep: Vec<u32> = (0..n as u32).filter(|&v| keep_bits[v as usize]).collect();
        let sub = g.induced_subgraph(&keep);
        prop_assert!(sub.validate().is_ok());
        prop_assert_eq!(sub.num_vertices(), keep.len());
        prop_assert!(sub.num_edges() <= g.num_edges());
    }

    #[test]
    fn power_law_profile_respects_bounds(
        n in 2usize..5000,
        avg in 1.0f64..100.0,
        exponent in 0.3f64..1.2,
        locality in 0.0f64..1.0,
    ) {
        let avg = avg.min((n - 1) as f64);
        let p = power_law_profile(n, avg, exponent, locality, 11);
        prop_assert_eq!(p.num_vertices(), n);
        let s = p.stats();
        prop_assert!(s.min >= 1);
        prop_assert!(u64::from(s.max) <= (n as u64 - 1).min((60.0 * avg) as u64 + 2));
        // Calibration: mean within 15 % (jitter + clamping slack). At
        // tiny n a single rounding flip exceeds any fixed tolerance, so
        // only check once averaging has something to average over.
        if n >= 64 {
            prop_assert!((s.mean - avg).abs() / avg < 0.15, "mean {} vs {}", s.mean, avg);
        }
    }

    #[test]
    fn degree_ranking_is_a_permutation_sorted_by_degree(
        degrees in prop::collection::vec(0u32..1000, 1..300),
    ) {
        let p = DegreeProfile::from_degrees(degrees.clone());
        let ranked = p.vertices_by_degree_desc();
        prop_assert_eq!(ranked.len(), degrees.len());
        let mut seen = vec![false; degrees.len()];
        for w in ranked.windows(2) {
            prop_assert!(degrees[w[0] as usize] >= degrees[w[1] as usize]);
        }
        for &v in &ranked {
            prop_assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn micro_batch_plan_partitions_exactly(
        n in 0usize..10_000,
        b in 1usize..512,
    ) {
        let plan = MicroBatchPlan::contiguous(n, b);
        let covered: usize = plan.iter().map(|r| r.len()).sum();
        prop_assert_eq!(covered, n);
        for r in plan.iter() {
            prop_assert!(r.len() <= b);
            prop_assert!(!r.is_empty());
        }
    }

    #[test]
    fn generators_produce_valid_graphs(
        n in 8usize..200,
        avg in 1.0f64..12.0,
        seed in 0u64..50,
    ) {
        let er = erdos_renyi(n, avg, seed);
        prop_assert!(er.validate().is_ok());
        let (sbm, labels) = planted_partition(n, 2 + (seed as usize % 3), avg, 4.0, seed);
        prop_assert!(sbm.validate().is_ok());
        prop_assert_eq!(labels.len(), n);
        let profile = power_law_profile(n, avg.max(1.0), 0.8, 0.5, seed);
        let cl = chung_lu(&profile, seed);
        prop_assert!(cl.validate().is_ok());
    }
}
