//! Synthetic graph generators.
//!
//! These stand in for the OGB datasets the paper evaluates on (see
//! DESIGN.md §2). The generators are deterministic given a seed.
//!
//! Two families:
//!
//! - [`power_law_profile`]: a degree *sequence* with power-law shape,
//!   calibrated to a target average degree — input to the analytic
//!   performance model.
//! - [`chung_lu`], [`erdos_renyi`], [`planted_partition`]: concrete
//!   [`CsrGraph`]s for the numeric GCN training and mapping experiments.

use gopim_rng::rngs::SmallRng;
use gopim_rng::seq::SliceRandom;
use gopim_rng::{Rng, SeedableRng};

use crate::csr::CsrGraph;
use crate::degree::DegreeProfile;

/// Generates a power-law degree sequence over `n` vertices whose mean is
/// calibrated to `avg_degree` (within a few percent), with index
/// locality as found in real OGB orderings.
///
/// `exponent` controls skew (larger ⇒ flatter; typical 0.5–1.2).
/// `locality ∈ [0, 1]` controls how strongly the degree correlates with
/// the vertex index: `1.0` keeps the sequence fully sorted (maximum
/// per-crossbar skew under index-based mapping, as in the paper's
/// Fig. 6), `0.0` shuffles uniformly.
///
/// # Panics
///
/// Panics if `n == 0`, `avg_degree < 1.0`, or `locality` is outside
/// `[0, 1]`.
pub fn power_law_profile(
    n: usize,
    avg_degree: f64,
    exponent: f64,
    locality: f64,
    seed: u64,
) -> DegreeProfile {
    assert!(n > 0, "need at least one vertex");
    assert!(avg_degree >= 1.0, "average degree must be at least 1");
    assert!(
        (0.0..=1.0).contains(&locality),
        "locality must be within [0, 1]"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    // Real OGB graphs cap their hubs at a few tens of times the average
    // degree (e.g. ppa: avg 73.7, max ≈ 3.2k); an uncapped power law
    // would put ~N-degree monsters at the head.
    let max_degree = ((n - 1) as f64).min(60.0 * avg_degree);

    // Raw power-law weights w_i = (i + 1)^(-exponent).
    let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-exponent)).collect();

    // Calibrate scale c so that mean(clamp(round(c * w_i), 1, n-1))
    // equals avg_degree. The clamp makes this nonlinear; bisection on c
    // converges quickly because the mean is monotone in c.
    let mean_for = |c: f64, weights: &[f64]| -> f64 {
        weights
            .iter()
            .map(|&w| (c * w).round().clamp(1.0, max_degree))
            .sum::<f64>()
            / n as f64
    };
    let mut lo = 0.0_f64;
    // Upper bound: the scale at which even the lightest-weight vertex
    // saturates at max_degree (w_min = n^-exponent).
    let mut hi = max_degree * (n as f64).powf(exponent) + 1.0;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if mean_for(mid, &weights) < avg_degree {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let c = 0.5 * (lo + hi);

    let mut degrees: Vec<u32> = weights
        .iter()
        .map(|&w| {
            let jitter = rng.gen_range(0.9..1.1);
            (c * w * jitter).round().clamp(1.0, max_degree) as u32
        })
        .collect();

    // Degrees are currently descending in index. Break locality for a
    // (1 - locality) fraction of positions via random swaps.
    let swaps = ((1.0 - locality) * n as f64) as usize;
    for _ in 0..swaps {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        degrees.swap(i, j);
    }
    DegreeProfile::from_degrees(degrees)
}

/// Chung–Lu random graph: samples `target_edges` endpoint pairs with
/// probability proportional to the degree profile, dropping duplicates
/// and self-loops. The realized degree sequence approximates `profile`.
///
/// Intended for the *numeric* experiments where `n` is at most a few
/// thousand; cost is `O(E log E)`.
///
/// # Panics
///
/// Panics if the profile is empty or has zero total degree.
pub fn chung_lu(profile: &DegreeProfile, seed: u64) -> CsrGraph {
    let n = profile.num_vertices();
    assert!(n > 0, "need at least one vertex");
    let total = profile.total_degree();
    assert!(total > 0, "profile must have positive total degree");
    let mut rng = SmallRng::seed_from_u64(seed);

    // Cumulative distribution over vertices, weighted by degree.
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0u64;
    for v in 0..n {
        acc += u64::from(profile.degree(v));
        cdf.push(acc);
    }
    let sample_vertex = |rng: &mut SmallRng| -> u32 {
        let t = rng.gen_range(0..acc);
        cdf.partition_point(|&c| c <= t) as u32
    };

    let target_edges = (total / 2) as usize;
    let mut edges = Vec::with_capacity(target_edges);
    // Oversample modestly; duplicates get deduped by the CSR builder.
    for _ in 0..target_edges + target_edges / 8 {
        let u = sample_vertex(&mut rng);
        let v = sample_vertex(&mut rng);
        if u != v {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Erdős–Rényi `G(n, p)` chosen so the expected average degree is
/// `avg_degree`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn erdos_renyi(n: usize, avg_degree: f64, seed: u64) -> CsrGraph {
    assert!(n >= 2, "need at least two vertices");
    let p = (avg_degree / (n - 1) as f64).clamp(0.0, 1.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Planted-partition (stochastic block model) graph with `communities`
/// equal-size blocks: intra-community edges are `assortativity` times
/// more likely than inter-community ones, with the overall expected
/// average degree equal to `avg_degree`.
///
/// Returns the graph and the community label of each vertex. Used by the
/// accuracy experiments (Table V, Fig. 16), which need a learnable
/// structure.
///
/// # Panics
///
/// Panics if `n < communities` or `communities == 0`.
pub fn planted_partition(
    n: usize,
    communities: usize,
    avg_degree: f64,
    assortativity: f64,
    seed: u64,
) -> (CsrGraph, Vec<u32>) {
    assert!(communities > 0, "need at least one community");
    assert!(n >= communities, "need at least one vertex per community");
    let labels: Vec<u32> = (0..n).map(|v| (v % communities) as u32).collect();

    // Expected degree = p_out * (n - n/k) + p_in * (n/k - 1), with
    // p_in = assortativity * p_out.
    let per_block = n as f64 / communities as f64;
    let same = per_block - 1.0;
    let diff = n as f64 - per_block;
    let p_out = (avg_degree / (diff + assortativity * same)).clamp(0.0, 1.0);
    let p_in = (assortativity * p_out).clamp(0.0, 1.0);

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            let p = if labels[u as usize] == labels[v as usize] {
                p_in
            } else {
                p_out
            };
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    (CsrGraph::from_edges(n, &edges), labels)
}

/// Degree-corrected planted partition: like [`planted_partition`] but
/// with power-law vertex propensities, so the graph has both community
/// structure *and* the skewed degrees real datasets show. This is the
/// stand-in used by the accuracy experiments: ISU's premise — that
/// low-degree vertices matter less — only holds on graphs where degree
/// actually varies.
///
/// Returns the graph and the community label of each vertex.
///
/// # Panics
///
/// Panics if `n < communities` or `communities == 0`.
pub fn degree_corrected_partition(
    n: usize,
    communities: usize,
    avg_degree: f64,
    assortativity: f64,
    exponent: f64,
    seed: u64,
) -> (CsrGraph, Vec<u32>) {
    assert!(communities > 0, "need at least one community");
    assert!(n >= communities, "need at least one vertex per community");
    let labels: Vec<u32> = (0..n).map(|v| (v % communities) as u32).collect();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xdc_5b);

    // Power-law propensities, shuffled so degree is independent of the
    // community layout, normalized to mean 1.
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-exponent)).collect();
    use gopim_rng::seq::SliceRandom;
    w.shuffle(&mut rng);
    let mean_w: f64 = w.iter().sum::<f64>() / n as f64;
    for v in w.iter_mut() {
        *v /= mean_w;
    }

    // Base rate calibrated like planted_partition, then modulated by
    // w_u · w_v (clamped into a valid probability).
    let per_block = n as f64 / communities as f64;
    let same = per_block - 1.0;
    let diff = n as f64 - per_block;
    let p_out = (avg_degree / (diff + assortativity * same)).clamp(0.0, 1.0);
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            let base = if labels[u as usize] == labels[v as usize] {
                assortativity * p_out
            } else {
                p_out
            };
            let p = (base * w[u as usize] * w[v as usize]).clamp(0.0, 1.0);
            if p > 0.0 && rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    (CsrGraph::from_edges(n, &edges), labels)
}

/// Density-preserving subsample: keeps `keep_n` random vertices and
/// rescales nothing else — on power-law graphs the induced subgraph's
/// average degree shrinks, so this picks vertices with probability
/// proportional to degree to keep the density character of the original.
///
/// Used to shrink large datasets for numeric training while preserving
/// the dense/sparse classification that drives ISU's adaptive θ.
pub fn degree_weighted_sample(graph: &CsrGraph, keep_n: usize, seed: u64) -> CsrGraph {
    let n = graph.num_vertices();
    if keep_n >= n {
        return graph.clone();
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    // Weighted sampling without replacement (Efraimidis–Spirakis): each
    // vertex gets key u^(1/w); the keep_n largest keys win.
    let mut keyed: Vec<(f64, u32)> = (0..n as u32)
        .map(|v| {
            let w = graph.degree(v as usize) as f64 + 1.0;
            (rng.gen::<f64>().powf(1.0 / w), v)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut keep: Vec<u32> = keyed[..keep_n].iter().map(|&(_, v)| v).collect();
    keep.shuffle(&mut rng);
    graph.induced_subgraph(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_profile_hits_target_mean() {
        let p = power_law_profile(4000, 60.0, 0.8, 0.9, 1);
        assert_eq!(p.num_vertices(), 4000);
        let err = (p.avg_degree() - 60.0).abs() / 60.0;
        assert!(err < 0.05, "mean {} too far from 60", p.avg_degree());
    }

    #[test]
    fn power_law_profile_is_skewed() {
        let p = power_law_profile(2000, 20.0, 0.9, 1.0, 2);
        let s = p.stats();
        assert!(s.max > 10 * s.min.max(1), "expected heavy skew, got {s:?}");
    }

    #[test]
    fn power_law_locality_one_is_sorted_descending_modulo_jitter() {
        let p = power_law_profile(1000, 30.0, 0.8, 1.0, 3);
        // First decile should be far denser than last decile.
        let first: u64 = p.degrees()[..100].iter().map(|&d| u64::from(d)).sum();
        let last: u64 = p.degrees()[900..].iter().map(|&d| u64::from(d)).sum();
        assert!(first > 3 * last);
    }

    #[test]
    fn power_law_is_deterministic_per_seed() {
        let a = power_law_profile(500, 10.0, 0.8, 0.5, 42);
        let b = power_law_profile(500, 10.0, 0.8, 0.5, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn chung_lu_approximates_profile() {
        let p = power_law_profile(800, 16.0, 0.7, 0.5, 4);
        let g = chung_lu(&p, 5);
        g.validate().unwrap();
        let realized = g.avg_degree();
        assert!(
            (realized - 16.0).abs() / 16.0 < 0.3,
            "avg degree {realized} too far from 16"
        );
    }

    #[test]
    fn erdos_renyi_mean_degree_close() {
        let g = erdos_renyi(1000, 8.0, 6);
        g.validate().unwrap();
        assert!((g.avg_degree() - 8.0).abs() < 1.5);
    }

    #[test]
    fn planted_partition_is_assortative() {
        let (g, labels) = planted_partition(600, 3, 20.0, 8.0, 7);
        g.validate().unwrap();
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if labels[u as usize] == labels[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // Communities are 1/3 of vertices, so random would give
        // intra/inter ≈ 0.5; assortativity 8 pushes it well above 1.
        assert!(
            intra as f64 > 1.5 * inter as f64,
            "intra={intra} inter={inter}"
        );
    }

    #[test]
    fn degree_corrected_partition_is_skewed_and_assortative() {
        let (g, labels) = degree_corrected_partition(600, 3, 16.0, 6.0, 0.7, 11);
        g.validate().unwrap();
        let s = g.degree_stats();
        assert!(s.max as f64 > 4.0 * s.mean, "skew: {s:?}");
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if labels[u as usize] == labels[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(
            intra as f64 > 1.2 * inter as f64,
            "intra={intra} inter={inter}"
        );
    }

    #[test]
    fn degree_corrected_partition_hits_target_density() {
        let (g, _) = degree_corrected_partition(800, 4, 12.0, 4.0, 0.6, 13);
        let rel = (g.avg_degree() - 12.0).abs() / 12.0;
        assert!(rel < 0.35, "avg degree {}", g.avg_degree());
    }

    #[test]
    fn degree_weighted_sample_preserves_density_character() {
        let p = power_law_profile(1500, 30.0, 0.8, 0.3, 8);
        let g = chung_lu(&p, 9);
        let sub = degree_weighted_sample(&g, 500, 10);
        sub.validate().unwrap();
        assert_eq!(sub.num_vertices(), 500);
        // Degree-weighted sampling should retain a dense core.
        assert!(sub.avg_degree() > 8.0, "avg {}", sub.avg_degree());
    }
}
