//! Micro-batch partitioning.
//!
//! GoPIM divides each training batch into micro-batches processed in a
//! pipeline (§II-A "Micro-batch Processing"). A [`MicroBatchPlan`]
//! assigns every vertex to exactly one micro-batch.

use std::ops::Range;

/// A partition of `0..num_vertices` into contiguous micro-batches of
/// (at most) `batch_size` vertices.
///
/// # Example
///
/// ```
/// use gopim_graph::partition::MicroBatchPlan;
///
/// let plan = MicroBatchPlan::contiguous(10, 4);
/// assert_eq!(plan.num_batches(), 3);
/// assert_eq!(plan.batch(2), 8..10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicroBatchPlan {
    num_vertices: usize,
    batch_size: usize,
}

impl MicroBatchPlan {
    /// Splits `num_vertices` vertices into contiguous micro-batches of
    /// `batch_size` (the last one may be smaller).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn contiguous(num_vertices: usize, batch_size: usize) -> Self {
        assert!(batch_size > 0, "micro-batch size must be positive");
        MicroBatchPlan {
            num_vertices,
            batch_size,
        }
    }

    /// Total number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Micro-batch size (all batches except possibly the last).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of micro-batches (`⌈N / B⌉`; 0 when there are no vertices).
    pub fn num_batches(&self) -> usize {
        self.num_vertices.div_ceil(self.batch_size)
    }

    /// The vertex range of micro-batch `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_batches()`.
    pub fn batch(&self, i: usize) -> Range<usize> {
        assert!(i < self.num_batches(), "micro-batch {i} out of range");
        let start = i * self.batch_size;
        start..(start + self.batch_size).min(self.num_vertices)
    }

    /// Iterates over all micro-batch ranges in order.
    pub fn iter(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.num_batches()).map(move |i| self.batch(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let plan = MicroBatchPlan::contiguous(128, 64);
        assert_eq!(plan.num_batches(), 2);
        assert_eq!(plan.batch(0), 0..64);
        assert_eq!(plan.batch(1), 64..128);
    }

    #[test]
    fn ragged_tail() {
        let plan = MicroBatchPlan::contiguous(130, 64);
        assert_eq!(plan.num_batches(), 3);
        assert_eq!(plan.batch(2), 128..130);
    }

    #[test]
    fn batches_cover_all_vertices_exactly_once() {
        let plan = MicroBatchPlan::contiguous(1000, 77);
        let mut covered = 0;
        let mut prev_end = 0;
        for r in plan.iter() {
            assert_eq!(r.start, prev_end);
            covered += r.len();
            prev_end = r.end;
        }
        assert_eq!(covered, 1000);
    }

    #[test]
    fn zero_vertices_means_zero_batches() {
        let plan = MicroBatchPlan::contiguous(0, 64);
        assert_eq!(plan.num_batches(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_size_rejected() {
        MicroBatchPlan::contiguous(10, 0);
    }
}
