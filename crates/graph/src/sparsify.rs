//! Graph sparsification (the paper's §II-C background).
//!
//! GoPIM's ISU is a member of the sparsification family: rather than
//! removing edges, it thins vertex *updates*. For completeness — and
//! for the SlimGNN-like baseline, whose input-subgraph pruning is a
//! heuristic edge sparsifier — this module implements the heuristic
//! family the paper cites:
//!
//! - [`drop_edge`]: uniform random edge removal (DropEdge);
//! - [`effective_resistance_like`]: keep edges with probability
//!   inversely proportional to `√(deg(u)·deg(v))` — the cheap surrogate
//!   for effective-resistance sampling used by fast GAT sparsifiers;
//! - [`top_k_neighbors`]: per-vertex degree-based neighbor selection.

use gopim_rng::rngs::SmallRng;
use gopim_rng::{Rng, SeedableRng};

use crate::csr::CsrGraph;

/// DropEdge: keeps each edge independently with probability `retain`.
///
/// # Panics
///
/// Panics if `retain ∉ [0, 1]`.
pub fn drop_edge(graph: &CsrGraph, retain: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&retain), "retain must be in [0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xd20b);
    let edges: Vec<(u32, u32)> = graph.edges().filter(|_| rng.gen_bool(retain)).collect();
    CsrGraph::from_edges(graph.num_vertices(), &edges)
}

/// Degree-weighted sparsification: edge `(u, v)` survives with
/// probability `min(1, c / √(deg(u)·deg(v)))`, with `c` calibrated so
/// the expected retained fraction is `retain`. Low-degree edges (the
/// structurally critical ones, by the effective-resistance argument)
/// are preferentially kept.
///
/// # Panics
///
/// Panics if `retain ∉ (0, 1]` or the graph has no edges.
pub fn effective_resistance_like(graph: &CsrGraph, retain: f64, seed: u64) -> CsrGraph {
    assert!(retain > 0.0 && retain <= 1.0, "retain must be in (0, 1]");
    let edges: Vec<(u32, u32)> = graph.edges().collect();
    assert!(!edges.is_empty(), "graph has no edges");
    let weight = |&(u, v): &(u32, u32)| -> f64 {
        1.0 / ((graph.degree(u as usize) as f64 * graph.degree(v as usize) as f64).sqrt())
    };
    // Calibrate c by bisection on the expected retained count.
    let expected = |c: f64| -> f64 {
        edges.iter().map(|e| (c * weight(e)).min(1.0)).sum::<f64>() / edges.len() as f64
    };
    let mut lo = 0.0;
    let mut hi = edges.iter().map(|e| 1.0 / weight(e)).fold(0.0f64, f64::max);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if expected(mid) < retain {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let c = 0.5 * (lo + hi);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xe44e);
    let kept: Vec<(u32, u32)> = edges
        .into_iter()
        .filter(|e| rng.gen_bool((c * weight(e)).min(1.0)))
        .collect();
    CsrGraph::from_edges(graph.num_vertices(), &kept)
}

/// Keeps at most `k` neighbors per vertex, preferring high-degree
/// neighbors (the importance heuristic of §VI-A applied to edges). An
/// edge survives if *either* endpoint selects it.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn top_k_neighbors(graph: &CsrGraph, k: usize) -> CsrGraph {
    assert!(k > 0, "k must be positive");
    let n = graph.num_vertices();
    let mut kept = Vec::new();
    for u in 0..n {
        let mut ranked: Vec<u32> = graph.neighbors(u).to_vec();
        ranked.sort_by(|&a, &b| {
            graph
                .degree(b as usize)
                .cmp(&graph.degree(a as usize))
                .then(a.cmp(&b))
        });
        for &v in ranked.iter().take(k) {
            kept.push((u as u32, v));
        }
    }
    CsrGraph::from_edges(n, &kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{erdos_renyi, power_law_profile};

    fn test_graph() -> CsrGraph {
        erdos_renyi(400, 12.0, 3)
    }

    #[test]
    fn drop_edge_hits_the_retain_fraction() {
        let g = test_graph();
        let s = drop_edge(&g, 0.6, 1);
        s.validate().unwrap();
        let fraction = s.num_edges() as f64 / g.num_edges() as f64;
        assert!((fraction - 0.6).abs() < 0.07, "fraction {fraction}");
    }

    #[test]
    fn drop_edge_extremes() {
        let g = test_graph();
        assert_eq!(drop_edge(&g, 1.0, 2).num_edges(), g.num_edges());
        assert_eq!(drop_edge(&g, 0.0, 2).num_edges(), 0);
    }

    #[test]
    fn resistance_like_prefers_low_degree_edges() {
        // Power-law graph: hub-hub edges should be dropped first.
        let profile = power_law_profile(600, 16.0, 0.9, 0.3, 5);
        let g = crate::generate::chung_lu(&profile, 6);
        let s = effective_resistance_like(&g, 0.5, 7);
        s.validate().unwrap();
        let fraction = s.num_edges() as f64 / g.num_edges() as f64;
        assert!((fraction - 0.5).abs() < 0.08, "fraction {fraction}");
        // Mean endpoint-degree product of surviving edges is lower.
        let mean_product = |graph: &CsrGraph, base: &CsrGraph| -> f64 {
            let mut total = 0.0;
            let mut count = 0.0;
            for (u, v) in graph.edges() {
                total += base.degree(u as usize) as f64 * base.degree(v as usize) as f64;
                count += 1.0;
            }
            total / count
        };
        assert!(mean_product(&s, &g) < mean_product(&g, &g));
    }

    #[test]
    fn top_k_bounds_the_degree_from_one_side() {
        let g = test_graph();
        let s = top_k_neighbors(&g, 4);
        s.validate().unwrap();
        // Each vertex selected ≤ 4 neighbors; its final degree can
        // exceed 4 only through *being selected* by others.
        assert!(s.num_edges() <= 4 * g.num_vertices());
        assert!(s.num_edges() < g.num_edges());
    }

    #[test]
    fn sparsifiers_never_invent_edges() {
        let g = test_graph();
        for s in [
            drop_edge(&g, 0.7, 9),
            effective_resistance_like(&g, 0.7, 9),
            top_k_neighbors(&g, 6),
        ] {
            for (u, v) in s.edges() {
                assert!(g.has_edge(u as usize, v as usize));
            }
        }
    }
}
