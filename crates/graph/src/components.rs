//! Connected components and reachability utilities.
//!
//! Used to sanity-check generators (a planted partition that shatters
//! into many components has no community signal to learn) and by the
//! sparsifier analyses (aggressive edge dropping must not disconnect
//! the graph the GCN trains on).

use crate::csr::CsrGraph;

/// The connected components of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component id of each vertex (`0..num_components`).
    pub component_of: Vec<u32>,
    /// Size of each component.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of vertices inside the largest component.
    pub fn largest_fraction(&self) -> f64 {
        if self.component_of.is_empty() {
            return 0.0;
        }
        self.largest() as f64 / self.component_of.len() as f64
    }
}

/// Computes connected components with an iterative BFS.
pub fn connected_components(graph: &CsrGraph) -> Components {
    let n = graph.num_vertices();
    let mut component_of = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = Vec::new();
    for start in 0..n {
        if component_of[start] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        queue.clear();
        queue.push(start as u32);
        component_of[start] = id;
        while let Some(v) = queue.pop() {
            size += 1;
            for &u in graph.neighbors(v as usize) {
                if component_of[u as usize] == u32::MAX {
                    component_of[u as usize] = id;
                    queue.push(u);
                }
            }
        }
        sizes.push(size);
    }
    Components {
        component_of,
        sizes,
    }
}

/// Whether the graph is connected (vacuously true for ≤ 1 vertex).
pub fn is_connected(graph: &CsrGraph) -> bool {
    graph.num_vertices() <= 1 || connected_components(graph).count() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{erdos_renyi, planted_partition};

    #[test]
    fn path_is_one_component() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.largest(), 4);
        assert!(is_connected(&g));
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = CsrGraph::from_edges(5, &[(0, 1)]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 4); // {0,1}, {2}, {3}, {4}
        assert_eq!(c.largest(), 2);
        assert!(!is_connected(&g));
    }

    #[test]
    fn component_ids_partition_the_vertices() {
        let g = erdos_renyi(200, 1.5, 3);
        let c = connected_components(&g);
        let total: usize = c.sizes.iter().sum();
        assert_eq!(total, 200);
        for (v, &id) in c.component_of.iter().enumerate() {
            assert!((id as usize) < c.count(), "vertex {v}");
        }
        // Every edge stays within one component.
        for (u, v) in g.edges() {
            assert_eq!(c.component_of[u as usize], c.component_of[v as usize]);
        }
    }

    #[test]
    fn dense_planted_partitions_are_essentially_connected() {
        let (g, _) = planted_partition(400, 4, 12.0, 4.0, 5);
        let c = connected_components(&g);
        assert!(c.largest_fraction() > 0.95, "{:.3}", c.largest_fraction());
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = CsrGraph::empty(0);
        let c = connected_components(&g);
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest_fraction(), 0.0);
        assert!(is_connected(&g));
    }
}
