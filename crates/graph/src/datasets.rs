//! The paper's dataset catalog (Table III) and GCN model parameters
//! (Table IV), plus synthetic generators reproducing each dataset's
//! published statistics.
//!
//! Real OGB data is not available offline; every performance experiment
//! in the paper depends on the datasets only through `(N, degree
//! distribution, feature dimension)` so [`Dataset::profile`] reproduces
//! exactly those statistics. The accuracy experiments additionally need
//! learnable structure; [`Dataset::numeric_graph`] provides a
//! density-preserving planted-partition graph of bounded size.

use crate::degree::DegreeProfile;
use crate::generate::{degree_corrected_partition, power_law_profile};
use crate::CsrGraph;

/// Prediction task category of a dataset (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Link prediction (ddi, collab, ppa).
    Link,
    /// Node classification (proteins, arxiv, products, Cora).
    Node,
}

/// The seven evaluation datasets of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// ogbl-ddi: 4,267 vertices, avg degree 500.5, 256-dim features.
    Ddi,
    /// ogbl-collab: 235,868 vertices, avg degree 8.2, 128-dim features.
    Collab,
    /// ogbl-ppa: 576,289 vertices, avg degree 73.7, 58-dim features.
    Ppa,
    /// ogbn-proteins: 132,534 vertices, avg degree 597.0, 8-dim features.
    Proteins,
    /// ogbn-arxiv: 169,343 vertices, avg degree 13.7, 128-dim features.
    Arxiv,
    /// ogbn-products: 2,449,029 vertices, avg degree 50.5, 100-dim features.
    Products,
    /// Cora: 2,708 vertices, avg degree 3.9, 1,433-dim features.
    Cora,
}

/// Static statistics of a dataset, mirroring Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Canonical lowercase name used in the paper's figures.
    pub name: &'static str,
    /// Prediction task type.
    pub task: Task,
    /// Vertex count.
    pub num_vertices: usize,
    /// Undirected edge count.
    pub num_edges: u64,
    /// Average vertex degree.
    pub avg_degree: f64,
    /// Input vertex feature dimension.
    pub feature_dim: usize,
}

/// GCN model architecture and training hyper-parameters (Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelConfig {
    /// Number of GCN layers.
    pub num_layers: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Dropout probability.
    pub dropout: f64,
    /// Input channel count.
    pub input_channels: usize,
    /// Hidden channel count.
    pub hidden_channels: usize,
    /// Output channel count.
    pub output_channels: usize,
}

impl ModelConfig {
    /// The `(in, out)` dimensions of the weight matrix of layer `l`
    /// (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `l >= num_layers`.
    pub fn layer_dims(&self, l: usize) -> (usize, usize) {
        assert!(l < self.num_layers, "layer {l} out of range");
        let input = if l == 0 {
            self.input_channels
        } else {
            self.hidden_channels
        };
        let output = if l + 1 == self.num_layers {
            self.output_channels
        } else {
            self.hidden_channels
        };
        (input, output)
    }
}

impl Dataset {
    /// All seven datasets in Table III order.
    pub const ALL: [Dataset; 7] = [
        Dataset::Ddi,
        Dataset::Collab,
        Dataset::Ppa,
        Dataset::Proteins,
        Dataset::Arxiv,
        Dataset::Products,
        Dataset::Cora,
    ];

    /// The five datasets used in the paper's headline comparison
    /// (Fig. 13, Fig. 14, Table V, Table VII).
    pub const HEADLINE: [Dataset; 5] = [
        Dataset::Ddi,
        Dataset::Collab,
        Dataset::Ppa,
        Dataset::Proteins,
        Dataset::Arxiv,
    ];

    /// The six datasets profiled in the motivation figures
    /// (Fig. 4, Fig. 6).
    pub const MOTIVATION: [Dataset; 6] = [
        Dataset::Ddi,
        Dataset::Collab,
        Dataset::Ppa,
        Dataset::Proteins,
        Dataset::Arxiv,
        Dataset::Products,
    ];

    /// Table III statistics for this dataset.
    pub fn stats(self) -> DatasetStats {
        match self {
            Dataset::Ddi => DatasetStats {
                name: "ddi",
                task: Task::Link,
                num_vertices: 4_267,
                num_edges: 1_334_889,
                avg_degree: 500.5,
                feature_dim: 256,
            },
            Dataset::Collab => DatasetStats {
                name: "collab",
                task: Task::Link,
                num_vertices: 235_868,
                num_edges: 1_285_465,
                avg_degree: 8.2,
                feature_dim: 128,
            },
            Dataset::Ppa => DatasetStats {
                name: "ppa",
                task: Task::Link,
                num_vertices: 576_289,
                num_edges: 30_326_273,
                avg_degree: 73.7,
                feature_dim: 58,
            },
            Dataset::Proteins => DatasetStats {
                name: "proteins",
                task: Task::Node,
                num_vertices: 132_534,
                num_edges: 39_561_252,
                avg_degree: 597.0,
                feature_dim: 8,
            },
            Dataset::Arxiv => DatasetStats {
                name: "arxiv",
                task: Task::Node,
                num_vertices: 169_343,
                num_edges: 1_166_243,
                avg_degree: 13.7,
                feature_dim: 128,
            },
            Dataset::Products => DatasetStats {
                name: "products",
                task: Task::Node,
                num_vertices: 2_449_029,
                num_edges: 61_859_140,
                avg_degree: 50.5,
                feature_dim: 100,
            },
            Dataset::Cora => DatasetStats {
                name: "Cora",
                task: Task::Node,
                num_vertices: 2_708,
                num_edges: 10_556,
                avg_degree: 3.9,
                feature_dim: 1_433,
            },
        }
    }

    /// Table IV model architecture and training parameters for this
    /// dataset.
    pub fn model(self) -> ModelConfig {
        match self {
            Dataset::Ddi => ModelConfig {
                num_layers: 2,
                learning_rate: 0.005,
                dropout: 0.5,
                input_channels: 256,
                hidden_channels: 256,
                output_channels: 256,
            },
            Dataset::Collab => ModelConfig {
                num_layers: 3,
                learning_rate: 0.001,
                dropout: 0.0,
                input_channels: 128,
                hidden_channels: 256,
                output_channels: 256,
            },
            Dataset::Ppa => ModelConfig {
                num_layers: 3,
                learning_rate: 0.01,
                dropout: 0.0,
                input_channels: 58,
                hidden_channels: 256,
                output_channels: 256,
            },
            Dataset::Proteins => ModelConfig {
                num_layers: 3,
                learning_rate: 0.01,
                dropout: 0.0,
                input_channels: 8,
                hidden_channels: 256,
                output_channels: 112,
            },
            Dataset::Arxiv => ModelConfig {
                num_layers: 3,
                learning_rate: 0.01,
                dropout: 0.5,
                input_channels: 128,
                hidden_channels: 256,
                output_channels: 40,
            },
            Dataset::Products => ModelConfig {
                num_layers: 3,
                learning_rate: 0.01,
                dropout: 0.5,
                input_channels: 100,
                hidden_channels: 256,
                output_channels: 47,
            },
            Dataset::Cora => ModelConfig {
                num_layers: 3,
                learning_rate: 0.005,
                dropout: 0.5,
                input_channels: 256,
                hidden_channels: 256,
                output_channels: 256,
            },
        }
    }

    /// Whether the paper's adaptive-θ rule classifies this dataset as
    /// sparse (average degree ≤ 8, §VI-C).
    pub fn is_sparse(self) -> bool {
        self.stats().avg_degree <= 8.0
    }

    /// A full-size synthetic degree profile matching this dataset's
    /// Table III statistics (vertex count exactly; average degree within
    /// a few percent; power-law skew with index locality as in real OGB
    /// orderings).
    pub fn profile(self, seed: u64) -> DegreeProfile {
        let s = self.stats();
        // Skew exponents tuned per dataset family: link graphs like ddi
        // are closer to uniform-dense; proteins/ppa show the extreme
        // per-crossbar ranges of the paper's Fig. 6.
        let exponent = match self {
            Dataset::Ddi => 0.35,
            Dataset::Collab => 0.6,
            Dataset::Ppa => 1.0,
            Dataset::Proteins => 1.1,
            Dataset::Arxiv => 0.6,
            Dataset::Products => 0.9,
            Dataset::Cora => 0.5,
        };
        power_law_profile(
            s.num_vertices,
            s.avg_degree,
            exponent,
            0.92,
            seed ^ 0x60_71_6d,
        )
    }

    /// A numeric-training graph: planted-partition with this dataset's
    /// density character, capped at `max_vertices` (the paper's accuracy
    /// claims concern the dense/sparse split, which survives scaling;
    /// see DESIGN.md §2).
    ///
    /// Returns the graph and per-vertex community labels.
    pub fn numeric_graph(self, max_vertices: usize, seed: u64) -> (CsrGraph, Vec<u32>) {
        let s = self.stats();
        let n = s.num_vertices.min(max_vertices);
        // Preserve the dense/sparse classification (threshold 8) while
        // keeping the scaled graph's neighborhoods realistic: a 1k-
        // vertex stand-in with avg degree 500 would be near-complete
        // and trivially classifiable. Degree-corrected so that ISU's
        // degree-based importance ranking is meaningful.
        let avg = s.avg_degree.min(32.0).min(n as f64 / 8.0);
        let classes = self.num_classes();
        degree_corrected_partition(n, classes, avg, 4.0, 0.65, seed ^ 0x6e_75_6d)
    }

    /// Number of label classes used for the numeric experiments.
    pub fn num_classes(self) -> usize {
        match self.stats().task {
            Task::Link => 2,
            Task::Node => match self {
                Dataset::Arxiv => 8,
                Dataset::Products => 8,
                Dataset::Proteins => 4,
                _ => 7,
            },
        }
    }

    /// Canonical lowercase name (paper spelling).
    pub fn name(self) -> &'static str {
        self.stats().name
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl gopim_cache::CanonicalHash for Dataset {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("graph.dataset/v1");
        h.write_str(self.name());
    }
}

impl gopim_cache::CanonicalHash for ModelConfig {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("graph.model/v1");
        h.write_usize(self.num_layers);
        h.write_f64(self.learning_rate);
        h.write_f64(self.dropout);
        h.write_usize(self.input_channels);
        h.write_usize(self.hidden_channels);
        h.write_usize(self.output_channels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_statistics_are_recorded() {
        let s = Dataset::Products.stats();
        assert_eq!(s.num_vertices, 2_449_029);
        assert_eq!(s.num_edges, 61_859_140);
        assert_eq!(s.feature_dim, 100);
        assert_eq!(s.task, Task::Node);
    }

    #[test]
    fn table_iv_layer_dims() {
        let m = Dataset::Proteins.model();
        assert_eq!(m.num_layers, 3);
        assert_eq!(m.layer_dims(0), (8, 256));
        assert_eq!(m.layer_dims(1), (256, 256));
        assert_eq!(m.layer_dims(2), (256, 112));
    }

    #[test]
    fn ddi_is_two_layer() {
        let m = Dataset::Ddi.model();
        assert_eq!(m.num_layers, 2);
        assert_eq!(m.layer_dims(0), (256, 256));
        assert_eq!(m.layer_dims(1), (256, 256));
    }

    #[test]
    fn sparse_classification_matches_paper() {
        assert!(Dataset::Cora.is_sparse());
        assert!(!Dataset::Ddi.is_sparse());
        assert!(!Dataset::Collab.is_sparse()); // 8.2 > 8
    }

    #[test]
    fn profiles_match_table_iii_statistics() {
        for d in [Dataset::Ddi, Dataset::Cora, Dataset::Arxiv] {
            let p = d.profile(11);
            let s = d.stats();
            assert_eq!(p.num_vertices(), s.num_vertices, "{d}");
            let rel = (p.avg_degree() - s.avg_degree).abs() / s.avg_degree;
            assert!(
                rel < 0.08,
                "{d}: avg {} vs {}",
                p.avg_degree(),
                s.avg_degree
            );
        }
    }

    #[test]
    fn numeric_graph_is_capped_and_valid() {
        let (g, labels) = Dataset::Ppa.numeric_graph(1200, 3);
        assert_eq!(g.num_vertices(), 1200);
        assert_eq!(labels.len(), 1200);
        g.validate().unwrap();
        assert!(
            g.avg_degree() > 30.0,
            "dense character kept: {}",
            g.avg_degree()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn layer_dims_rejects_out_of_range() {
        Dataset::Ddi.model().layer_dims(5);
    }
}
