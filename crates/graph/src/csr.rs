//! Compressed-sparse-row graph storage.
//!
//! The numeric GCN training engine and the vertex-mapping strategies both
//! operate on concrete adjacency; [`CsrGraph`] stores an undirected graph
//! as sorted CSR with validated invariants.

use std::fmt;

use crate::degree::{DegreeProfile, DegreeStats};

/// An undirected graph in compressed-sparse-row form.
///
/// Invariants (checked by [`CsrGraph::from_edges`] and testable via
/// [`CsrGraph::validate`]):
///
/// - `offsets.len() == num_vertices + 1`, `offsets[0] == 0`, offsets are
///   non-decreasing and `offsets[n] == neighbors.len()`.
/// - Each adjacency list is sorted and free of duplicates and self-loops.
/// - The adjacency relation is symmetric (`u ∈ adj(v)` ⇔ `v ∈ adj(u)`).
///
/// # Example
///
/// ```
/// use gopim_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl CsrGraph {
    /// Builds a graph from an edge list.
    ///
    /// Edges are undirected; duplicates and self-loops are silently
    /// dropped. Endpoints must be `< num_vertices`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(num_vertices: usize, edges: &[(u32, u32)]) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); num_vertices];
        for &(u, v) in edges {
            assert!(
                (u as usize) < num_vertices && (v as usize) < num_vertices,
                "edge ({u}, {v}) out of range for {num_vertices} vertices"
            );
            if u == v {
                continue;
            }
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        CsrGraph { offsets, neighbors }
    }

    /// Constructs an empty graph (no edges) over `num_vertices` vertices.
    pub fn empty(num_vertices: usize) -> Self {
        CsrGraph {
            offsets: vec![0; num_vertices + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted adjacency list of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `(u, v)` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Average vertex degree (`2E / N`), 0.0 for the empty vertex set.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.neighbors.len() as f64 / self.num_vertices() as f64
    }

    /// Graph density: ratio of edges to the maximum possible
    /// `N (N − 1) / 2` (the paper's §VII-A definition).
    pub fn density(&self) -> f64 {
        let n = self.num_vertices() as f64;
        if n < 2.0 {
            return 0.0;
        }
        self.num_edges() as f64 / (n * (n - 1.0) / 2.0)
    }

    /// The degree sequence of this graph as a [`DegreeProfile`].
    pub fn to_degree_profile(&self) -> DegreeProfile {
        DegreeProfile::from_degrees(
            (0..self.num_vertices())
                .map(|v| self.degree(v) as u32)
                .collect(),
        )
    }

    /// Summary statistics over the degree sequence.
    pub fn degree_stats(&self) -> DegreeStats {
        self.to_degree_profile().stats()
    }

    /// Iterates over each undirected edge exactly once, as `(u, v)`
    /// with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| (u as u32) < v)
                .map(move |&v| (u as u32, v))
        })
    }

    /// Checks every structural invariant, returning a description of the
    /// first violation found.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a human-readable message if the CSR arrays are
    /// malformed, adjacency lists are unsorted/duplicated, a self-loop is
    /// present, or symmetry is broken.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() || self.offsets[0] != 0 {
            return Err("offsets must start at 0".into());
        }
        if self.offsets.last().copied() != Some(self.neighbors.len()) {
            return Err("last offset must equal neighbor count".into());
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must be non-decreasing".into());
        }
        for v in 0..self.num_vertices() {
            let adj = self.neighbors(v);
            if adj.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("adjacency of {v} not strictly sorted"));
            }
            if adj.binary_search(&(v as u32)).is_ok() {
                return Err(format!("self-loop at {v}"));
            }
            for &u in adj {
                if u as usize >= self.num_vertices() {
                    return Err(format!("neighbor {u} of {v} out of range"));
                }
                if !self.has_edge(u as usize, v) {
                    return Err(format!("edge ({v}, {u}) not symmetric"));
                }
            }
        }
        Ok(())
    }

    /// Extracts the induced subgraph on `keep` (vertex ids into `self`),
    /// relabelling vertices as `0..keep.len()` in the order given.
    ///
    /// # Panics
    ///
    /// Panics if `keep` contains an out-of-range or duplicate vertex.
    pub fn induced_subgraph(&self, keep: &[u32]) -> CsrGraph {
        let mut relabel = vec![u32::MAX; self.num_vertices()];
        for (new, &old) in keep.iter().enumerate() {
            assert!(
                relabel[old as usize] == u32::MAX,
                "duplicate vertex {old} in keep set"
            );
            relabel[old as usize] = new as u32;
        }
        let mut edges = Vec::new();
        for (new_u, &old_u) in keep.iter().enumerate() {
            for &old_v in self.neighbors(old_u as usize) {
                let new_v = relabel[old_v as usize];
                if new_v != u32::MAX && (new_u as u32) < new_v {
                    edges.push((new_u as u32, new_v));
                }
            }
        }
        CsrGraph::from_edges(keep.len(), &edges)
    }
}

impl fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsrGraph")
            .field("num_vertices", &self.num_vertices())
            .field("num_edges", &self.num_edges())
            .field("avg_degree", &self.avg_degree())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    }

    #[test]
    fn from_edges_builds_sorted_symmetric_csr() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        g.validate().unwrap();
    }

    #[test]
    fn self_loops_and_duplicates_are_dropped() {
        let g = CsrGraph::from_edges(3, &[(0, 0), (0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 0);
        g.validate().unwrap();
    }

    #[test]
    fn degree_and_has_edge_agree() {
        let g = diamond();
        assert_eq!(g.degree(1), 2);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.num_edges());
        assert!(edges.contains(&(0, 2)));
        assert!(edges.iter().all(|&(u, v)| u < v));
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!((g.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        g.validate().unwrap();
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = diamond();
        let sub = g.induced_subgraph(&[0, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3); // 0-1, 1-2, 0-2
        sub.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_out_of_range() {
        CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn degree_profile_matches_graph() {
        let g = diamond();
        let p = g.to_degree_profile();
        assert_eq!(p.num_vertices(), 4);
        assert_eq!(p.total_degree(), 10);
    }
}
