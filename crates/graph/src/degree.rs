//! Degree sequences and statistics.
//!
//! GoPIM's performance model depends on graphs only through their degree
//! distribution, vertex count and feature dimension (§III, §V-A of the
//! paper). [`DegreeProfile`] captures exactly that, letting the analytic
//! simulator handle the full-size `products` dataset (2.45 M vertices,
//! 61.9 M edges) without materializing any edges.

/// A degree sequence: one entry per vertex.
///
/// # Example
///
/// ```
/// use gopim_graph::DegreeProfile;
///
/// let p = DegreeProfile::from_degrees(vec![3, 1, 2]);
/// assert_eq!(p.num_vertices(), 3);
/// assert_eq!(p.total_degree(), 6);
/// assert!((p.avg_degree() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeProfile {
    degrees: Vec<u32>,
}

/// Summary statistics over a degree sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: u32,
    /// Largest degree.
    pub max: u32,
    /// Mean degree.
    pub mean: f64,
    /// Population standard deviation of degrees.
    pub std_dev: f64,
}

impl DegreeProfile {
    /// Wraps an explicit degree sequence.
    pub fn from_degrees(degrees: Vec<u32>) -> Self {
        DegreeProfile { degrees }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    /// Sum of all degrees (`2E` for an undirected graph).
    pub fn total_degree(&self) -> u64 {
        self.degrees.iter().map(|&d| u64::from(d)).sum()
    }

    /// Implied undirected edge count (`total_degree / 2`).
    pub fn num_edges(&self) -> u64 {
        self.total_degree() / 2
    }

    /// Mean degree; 0.0 for an empty profile.
    pub fn avg_degree(&self) -> f64 {
        if self.degrees.is_empty() {
            return 0.0;
        }
        self.total_degree() as f64 / self.degrees.len() as f64
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> u32 {
        self.degrees[v]
    }

    /// The raw degree slice.
    pub fn degrees(&self) -> &[u32] {
        &self.degrees
    }

    /// Whether the paper classifies this graph as *sparse*
    /// (average degree ≤ 8, §VI-C).
    pub fn is_sparse(&self) -> bool {
        self.avg_degree() <= 8.0
    }

    /// Vertex ids sorted by descending degree (ties broken by ascending
    /// id, so the order is deterministic).
    pub fn vertices_by_degree_desc(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.degrees.len() as u32).collect();
        ids.sort_by(|&a, &b| {
            self.degrees[b as usize]
                .cmp(&self.degrees[a as usize])
                .then(a.cmp(&b))
        });
        ids
    }

    /// Summary statistics.
    pub fn stats(&self) -> DegreeStats {
        if self.degrees.is_empty() {
            return DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                std_dev: 0.0,
            };
        }
        let min = self.degrees.iter().min().copied().unwrap_or(0);
        let max = self.degrees.iter().max().copied().unwrap_or(0);
        let mean = self.avg_degree();
        let var = self
            .degrees
            .iter()
            .map(|&d| {
                let diff = f64::from(d) - mean;
                diff * diff
            })
            .sum::<f64>()
            / self.degrees.len() as f64;
        DegreeStats {
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        }
    }
}

impl gopim_cache::CanonicalHash for DegreeProfile {
    fn canonical_hash(&self, h: &mut gopim_cache::CanonicalHasher) {
        h.write_tag("graph.degree_profile/v1");
        let degrees = self.degrees();
        h.write_u64(degrees.len() as u64);
        for &d in degrees {
            h.write_u32(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_simple_sequence() {
        let p = DegreeProfile::from_degrees(vec![1, 2, 3, 4]);
        let s = p.stats();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_has_zero_stats() {
        let p = DegreeProfile::from_degrees(vec![]);
        assert_eq!(p.avg_degree(), 0.0);
        assert_eq!(p.stats().max, 0);
    }

    #[test]
    fn sparse_classification_uses_threshold_eight() {
        assert!(DegreeProfile::from_degrees(vec![8, 8]).is_sparse());
        assert!(!DegreeProfile::from_degrees(vec![8, 9]).is_sparse());
    }

    #[test]
    fn degree_ranking_is_descending_and_deterministic() {
        let p = DegreeProfile::from_degrees(vec![5, 9, 9, 1]);
        assert_eq!(p.vertices_by_degree_desc(), vec![1, 2, 0, 3]);
    }

    #[test]
    fn edge_count_is_half_total_degree() {
        let p = DegreeProfile::from_degrees(vec![3, 3, 2]);
        assert_eq!(p.num_edges(), 4);
    }
}
