//! Plain-text edge-list I/O.
//!
//! Lets users bring their own graphs to the simulator: one edge per
//! line, two whitespace-separated vertex ids, `#`-prefixed comments and
//! blank lines ignored. Vertex ids need not be contiguous — the reader
//! compacts them and `num_vertices` becomes `max id + 1` after
//! compaction.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};

use crate::csr::CsrGraph;

/// Error from parsing an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEdgeListError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseEdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseEdgeListError {}

/// Reads an edge list, compacting vertex ids in first-seen order.
///
/// # Errors
///
/// Returns [`ParseEdgeListError`] on malformed lines; I/O errors are
/// folded into the same type with the failing line number.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph, ParseEdgeListError> {
    let mut ids: BTreeMap<u64, u32> = BTreeMap::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| ParseEdgeListError {
            line: line_no,
            message: format!("read error: {e}"),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let mut parse = |what: &str| -> Result<u32, ParseEdgeListError> {
            let token = parts.next().ok_or_else(|| ParseEdgeListError {
                line: line_no,
                message: format!("missing {what} vertex"),
            })?;
            let raw: u64 = token.parse().map_err(|_| ParseEdgeListError {
                line: line_no,
                message: format!("invalid vertex id '{token}'"),
            })?;
            let next = ids.len() as u32;
            Ok(*ids.entry(raw).or_insert(next))
        };
        let u = parse("source")?;
        let v = parse("target")?;
        edges.push((u, v));
    }
    Ok(CsrGraph::from_edges(ids.len(), &edges))
}

/// Writes a graph as an edge list (one `u v` line per undirected edge,
/// with a header comment).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_edge_list() {
        let text = "# a square\n0 1\n1 2\n2 3\n3 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        g.validate().unwrap();
    }

    #[test]
    fn compacts_sparse_ids() {
        let text = "1000 2000\n2000 500\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "\n# header\n0 1\n\n  # indented comment\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn reports_malformed_lines_with_numbers() {
        let err = read_edge_list("0 1\nbogus\n".as_bytes()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("invalid vertex id"));

        let err = read_edge_list("0\n".as_bytes()).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("missing target"));
    }

    #[test]
    fn round_trips_through_text() {
        let g = crate::generate::erdos_renyi(50, 6.0, 9);
        let mut buffer = Vec::new();
        write_edge_list(&g, &mut buffer).unwrap();
        let back = read_edge_list(buffer.as_slice()).unwrap();
        // Vertex ids may be renumbered by first-seen order, so compare
        // invariants rather than exact structure.
        assert_eq!(back.num_edges(), g.num_edges());
        assert!(back.num_vertices() <= g.num_vertices());
        back.validate().unwrap();
    }
}
