//! Graph substrate for the GoPIM reproduction.
//!
//! GoPIM (HPCA 2025) evaluates GCN training on seven graph datasets
//! (six from the Open Graph Benchmark plus Cora). This crate provides
//! everything the rest of the workspace needs to stand in for those
//! datasets and for graph handling in general:
//!
//! - [`CsrGraph`]: a compact, validated compressed-sparse-row graph used
//!   by the numeric GCN training engine and the mapping strategies.
//! - [`DegreeProfile`]: a degree sequence *without* materialized edges,
//!   sufficient for the analytic performance model (whose inputs are
//!   `(N, degree distribution, feature dim)`), so the full-size
//!   `products` graph (2.45 M vertices) is represented exactly without
//!   hundreds of MB of edge storage.
//! - [`datasets`]: the catalog of Table III / Table IV statistics and
//!   generators that reproduce them synthetically (see DESIGN.md §2 for
//!   the substitution rationale).
//! - [`generate`]: power-law (Chung–Lu), Erdős–Rényi and planted-partition
//!   (SBM) generators.
//! - [`partition`]: micro-batch partitioning used by the pipeline model.
//!
//! # Example
//!
//! ```
//! use gopim_graph::datasets::Dataset;
//!
//! let ddi = Dataset::Ddi.profile(7);
//! assert_eq!(ddi.num_vertices(), 4267);
//! // Average degree tracks Table III (500.5) closely.
//! assert!((ddi.avg_degree() - 500.5).abs() < 25.0);
//! ```

#![warn(missing_docs)]

pub mod components;
pub mod csr;
pub mod datasets;
pub mod degree;
pub mod generate;
pub mod io;
pub mod partition;
pub mod sparsify;

pub use csr::CsrGraph;
pub use degree::{DegreeProfile, DegreeStats};
